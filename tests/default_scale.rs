//! Integration checks at the *default* corpus scale — the scale
//! EXPERIMENTS.md documents. Slower than the smoke tests (tens of seconds),
//! but they pin the properties the smoke corpus can only approximate.

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::recommender::ScoringOptions;
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::sim::usertype::{partition_users, UserGroup};
use pmr::sim::{generate_corpus, ScalePreset, SimConfig, Table2};

#[test]
fn default_scale_corpus_is_fully_evaluable() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Default, 42));
    assert!(corpus.len() > 20_000, "default corpus too small: {}", corpus.len());
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    // Every one of the 60 users must have a valid test set at this scale.
    assert_eq!(prepared.split.len(), 60);
    // And the 1:4 class ratio must hold for essentially every user (a
    // single tiny-feed user may come up a negative or two short).
    let mut skewed = 0;
    for u in prepared.split.users() {
        let s = prepared.split.user(u).unwrap();
        assert!(!s.positives.is_empty());
        assert!(s.negatives.len() <= s.positives.len() * 4);
        if s.negatives.len() < s.positives.len() * 4 {
            skewed += 1;
        }
    }
    assert!(skewed <= 2, "too many skewed test sets: {skewed}/60");
}

#[test]
fn default_scale_partition_mirrors_the_paper() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Default, 42));
    let partition = partition_users(&corpus);
    assert_eq!(partition.is.len(), 20);
    assert_eq!(partition.bu.len(), 20);
    // The paper found exactly 9 users above posting ratio 2 (after manual
    // intervention at the BU/IP boundary, §4); our measured partition lands
    // within one boundary user of that.
    assert!((8..=10).contains(&partition.ip.len()), "IP group size off: {}", partition.ip.len());
    assert_eq!(partition.ip.len() + partition.rest.len(), 20);
    // Threshold structure of §4: a clear gap between IS and BU.
    let max_is = partition.is.iter().map(|&u| partition.ratio_of(u)).fold(0.0f64, f64::max);
    let min_bu = partition.bu.iter().map(|&u| partition.ratio_of(u)).fold(f64::INFINITY, f64::min);
    assert!(max_is < 0.5, "IS ratios stay low: {max_is:.3}");
    assert!(min_bu > max_is, "IS and BU separate: {min_bu:.3} vs {max_is:.3}");
}

/// The paper's source and user-type orderings, asserted strictly at the
/// scale EXPERIMENTS.md documents: R beats T and E as a representation
/// source, and information producers are easier to model than seekers.
#[test]
fn default_scale_source_and_user_type_orderings() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Default, 42));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let runner = ExperimentRunner::new(&prepared);
    let opts = RunnerOptions {
        scoring: ScoringOptions {
            iteration_scale: 0.02,
            infer_iterations: 8,
            seed: 13,
            ..ScoringOptions::default()
        },
        ran_iterations: 200,
    };
    let tn = ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TFIDF,
        aggregation: AggKind::Centroid,
        similarity: BagSimilarity::Cosine,
    };
    let map = |s, g| runner.run(&tn, s, g, &opts).map;
    let r = map(RepresentationSource::R, UserGroup::All);
    let t = map(RepresentationSource::T, UserGroup::All);
    let e = map(RepresentationSource::E, UserGroup::All);
    assert!(r > t, "R must beat T at default scale: {r:.3} vs {t:.3}");
    assert!(r > e, "R must beat E at default scale: {r:.3} vs {e:.3}");
    let ip = map(RepresentationSource::R, UserGroup::IP);
    let is = map(RepresentationSource::R, UserGroup::IS);
    assert!(ip > is, "IP must beat IS at default scale: {ip:.3} vs {is:.3}");
}

#[test]
fn default_scale_table2_shapes_hold() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Default, 42));
    let partition = partition_users(&corpus);
    let t2 = Table2::compute(&corpus, &partition);
    use pmr::sim::usertype::UserGroup;
    let is = t2.group(UserGroup::IS);
    let ip = t2.group(UserGroup::IP);
    // The paper's qualitative structure: IS users receive far more than
    // they post; IP users post far more than they receive; followers'
    // volumes exceed feed volumes for producers.
    assert!(is.incoming.total > is.outgoing.total * 5);
    assert!(ip.outgoing.total > ip.incoming.total * 2);
    assert!(ip.followers_tweets.total > ip.incoming.total);
}
