//! End-to-end integration: corpus generation → preprocessing → split →
//! model building → ranking → evaluation, across crate boundaries.

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::recommender::ScoringOptions;
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::graph::GraphSimilarity;
use pmr::sim::usertype::UserGroup;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};
use pmr::topics::PoolingScheme;

fn prepared(seed: u64) -> PreparedCorpus {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, seed));
    PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed")
}

fn quick_opts() -> RunnerOptions {
    RunnerOptions {
        scoring: ScoringOptions {
            iteration_scale: 0.015,
            infer_iterations: 6,
            seed: 5,
            ..ScoringOptions::default()
        },
        ran_iterations: 200,
    }
}

#[test]
fn every_model_family_produces_valid_scores() {
    let p = prepared(1);
    let runner = ExperimentRunner::new(&p);
    let opts = quick_opts();
    let configs = vec![
        ModelConfiguration::Bag {
            char_grams: false,
            n: 2,
            weighting: WeightingScheme::TF,
            aggregation: AggKind::Sum,
            similarity: BagSimilarity::GeneralizedJaccard,
        },
        ModelConfiguration::Bag {
            char_grams: true,
            n: 3,
            weighting: WeightingScheme::BF,
            aggregation: AggKind::Sum,
            similarity: BagSimilarity::Jaccard,
        },
        ModelConfiguration::Graph {
            char_grams: false,
            n: 1,
            similarity: GraphSimilarity::Containment,
        },
        ModelConfiguration::Graph {
            char_grams: true,
            n: 2,
            similarity: GraphSimilarity::NormalizedValue,
        },
        ModelConfiguration::Lda {
            topics: 20,
            iterations: 1_000,
            pooling: PoolingScheme::NP,
            aggregation: AggKind::Centroid,
        },
        ModelConfiguration::Llda {
            topics: 20,
            iterations: 1_000,
            pooling: PoolingScheme::HP,
            aggregation: AggKind::Centroid,
        },
        ModelConfiguration::Btm {
            topics: 20,
            pooling: PoolingScheme::NP,
            aggregation: AggKind::Centroid,
        },
        ModelConfiguration::Hdp {
            beta: 0.1,
            pooling: PoolingScheme::UP,
            aggregation: AggKind::Centroid,
        },
        ModelConfiguration::Hlda {
            alpha: 10.0,
            beta: 0.1,
            gamma: 0.5,
            aggregation: AggKind::Centroid,
        },
        ModelConfiguration::Plsa {
            topics: 20,
            iterations: 200,
            pooling: PoolingScheme::UP,
            aggregation: AggKind::Centroid,
        },
    ];
    for config in configs {
        let r = runner.run(&config, RepresentationSource::TR, UserGroup::All, &opts);
        assert!((0.0..=1.0).contains(&r.map), "{}: MAP out of range: {}", config.describe(), r.map);
        assert!(!r.per_user_ap.is_empty(), "{}: no users scored", config.describe());
        for &(_, ap) in &r.per_user_ap {
            assert!((0.0..=1.0).contains(&ap));
        }
    }
}

#[test]
fn rocchio_runs_on_sources_with_negatives() {
    let p = prepared(2);
    let runner = ExperimentRunner::new(&p);
    let opts = quick_opts();
    let config = ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TFIDF,
        aggregation: AggKind::Rocchio,
        similarity: BagSimilarity::Cosine,
    };
    for source in [RepresentationSource::E, RepresentationSource::RC, RepresentationSource::EF] {
        assert!(config.valid_for_source(source));
        let r = runner.run(&config, source, UserGroup::BU, &opts);
        assert!((0.0..=1.0).contains(&r.map), "{source}: {}", r.map);
    }
    assert!(!config.valid_for_source(RepresentationSource::R));
}

#[test]
#[should_panic(expected = "invalid for source")]
fn rocchio_on_positive_only_source_panics() {
    let p = prepared(3);
    let runner = ExperimentRunner::new(&p);
    let config = ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TF,
        aggregation: AggKind::Rocchio,
        similarity: BagSimilarity::Cosine,
    };
    runner.run(&config, RepresentationSource::T, UserGroup::All, &quick_opts());
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let p = prepared(7);
        let runner = ExperimentRunner::new(&p);
        let config = ModelConfiguration::Lda {
            topics: 15,
            iterations: 1_000,
            pooling: PoolingScheme::UP,
            aggregation: AggKind::Centroid,
        };
        runner.run(&config, RepresentationSource::R, UserGroup::All, &quick_opts()).map
    };
    assert_eq!(run(), run());
}

#[test]
fn timing_measures_are_populated() {
    let p = prepared(4);
    let runner = ExperimentRunner::new(&p);
    let config =
        ModelConfiguration::Graph { char_grams: false, n: 3, similarity: GraphSimilarity::Value };
    let r = runner.run(&config, RepresentationSource::R, UserGroup::All, &quick_opts());
    assert!(r.train_time > std::time::Duration::ZERO);
    assert!(r.test_time > std::time::Duration::ZERO);
}
