//! Integration: the online user models track a simulated user's stream and
//! rank her future retweets above unretweeted feed content — the deployment
//! scenario behind the paper's motivation.

use pmr::bag::{BagSimilarity, BagVectorizer, WeightingScheme};
use pmr::core::{
    OnlineBagModel, OnlineGraphModel, PreparedCorpus, RepresentationSource, SplitConfig,
};
use pmr::graph::GraphSimilarity;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig, TweetId};
use pmr::text::token_ngrams;

fn setup() -> PreparedCorpus {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
    PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed")
}

/// Streaming the training retweets through the online bag model yields a
/// ranker that scores test positives above test negatives on average.
#[test]
fn online_bag_model_learns_from_the_stream() {
    let prepared = setup();
    let mut lifted = 0usize;
    let mut total = 0usize;
    for user in prepared.split.users().take(12) {
        let split = prepared.split.user(user).expect("users() yields split users");
        let train = prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::R);
        if train.len() < 5 {
            continue;
        }
        let grams = |id: TweetId| token_ngrams(prepared.content(id), 1);
        let train_grams: Vec<Vec<String>> = train.iter().map(|&id| grams(id)).collect();
        let vectorizer = BagVectorizer::fit(WeightingScheme::TFIDF, train_grams.iter());
        let mut model = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 1.0);
        for g in &train_grams {
            model.observe(g);
        }
        let mean = |ids: &[TweetId]| -> f64 {
            if ids.is_empty() {
                return 0.0;
            }
            ids.iter().map(|&id| model.score(&grams(id))).sum::<f64>() / ids.len() as f64
        };
        total += 1;
        if mean(&split.positives) > mean(&split.negatives) {
            lifted += 1;
        }
    }
    assert!(total >= 8, "not enough testable users: {total}");
    assert!(
        lifted * 4 >= total * 3,
        "online model should lift positives for most users: {lifted}/{total}"
    );
}

/// The online graph model does the same through the update operator.
#[test]
fn online_graph_model_learns_from_the_stream() {
    let prepared = setup();
    // Pick a user with a substantial retweet history.
    let user = prepared
        .split
        .users()
        .max_by_key(|&u| {
            prepared.split.train_ids(&prepared.corpus, u, RepresentationSource::R).len()
        })
        .expect("split users exist");
    let split = prepared.split.user(user).expect("selected above");
    let train = prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::R);
    // Unigram-node graphs: their edges encode word bigrams, the order
    // information the simulated collocations actually supply (higher-n
    // graph edges need verbatim 2n-token repetition — see
    // tests/paper_shapes.rs).
    let mut model = OnlineGraphModel::new(GraphSimilarity::Value, 1);
    for &id in &train {
        model.observe(&token_ngrams(prepared.content(id), 1));
    }
    assert_eq!(model.documents(), train.len());
    let mut mean = |ids: &[TweetId]| -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter().map(|&id| model.score(&token_ngrams(prepared.content(id), 1))).sum::<f64>()
            / ids.len() as f64
    };
    let pos = mean(&split.positives);
    let neg = mean(&split.negatives);
    assert!(pos > neg, "positives must outscore negatives: {pos:.4} vs {neg:.4}");
}
