//! Qualitative reproduction checks: the *shapes* of the paper's findings
//! must hold on the simulated corpus — who wins, in which order — even at
//! smoke scale with scaled-down samplers.
//!
//! Each test pins one conclusion of §5 / §7 of the paper.

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::recommender::ScoringOptions;
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::graph::GraphSimilarity;
use pmr::sim::usertype::UserGroup;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};

fn prepared() -> PreparedCorpus {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
    PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed")
}

fn opts() -> RunnerOptions {
    RunnerOptions {
        scoring: ScoringOptions {
            iteration_scale: 0.015,
            infer_iterations: 8,
            seed: 13,
            ..ScoringOptions::default()
        },
        ran_iterations: 300,
    }
}

fn tng() -> ModelConfiguration {
    // The strongest graph configuration on the synthetic corpus (see the
    // n-size test below for why n=1 rather than the paper's n=3).
    ModelConfiguration::Graph { char_grams: false, n: 1, similarity: GraphSimilarity::Value }
}

fn tn() -> ModelConfiguration {
    ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TFIDF,
        aggregation: AggKind::Centroid,
        similarity: BagSimilarity::Cosine,
    }
}

fn cn() -> ModelConfiguration {
    ModelConfiguration::Bag {
        char_grams: true,
        n: 4,
        weighting: WeightingScheme::TF,
        aggregation: AggKind::Centroid,
        similarity: BagSimilarity::Cosine,
    }
}

fn cng() -> ModelConfiguration {
    ModelConfiguration::Graph { char_grams: true, n: 4, similarity: GraphSimilarity::Containment }
}

/// §5: token-based models beat their character-based counterparts, for
/// both bags and graphs.
///
/// Note on the paper's conclusion (ii) — "TNG consistently outperforms all
/// other models": that finding does *not* reproduce on the synthetic
/// corpus, and the reason is informative. An n-gram-graph edge only
/// matches when a 2n-token sequence repeats verbatim between a user's
/// history and a candidate tweet; real tweets are saturated with such
/// repetition (quoted headlines, memes, syntactic boilerplate, campaign
/// hashtags), while a generative word-mixture corpus — even with injected
/// phrases, headlines and polysemy — cannot approach real language's
/// sequence-level redundancy. See EXPERIMENTS.md, "Known divergences".
#[test]
fn token_models_beat_character_models() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let source = RepresentationSource::R;
    let map = |c: &ModelConfiguration| runner.run(c, source, UserGroup::All, &o).map;
    let tng1 =
        ModelConfiguration::Graph { char_grams: false, n: 1, similarity: GraphSimilarity::Value };
    let tng_map = map(&tng1);
    let tn_map = map(&tn());
    let cn_map = map(&cn());
    let cng_map = map(&cng());
    let ran = runner.random_map(UserGroup::All, &o);
    assert!(tn_map > cn_map, "token must beat char bags: {tn_map:.3} vs {cn_map:.3}");
    // For the graph family the token-vs-character ordering is corpus-
    // dependent here: character 4-gram graph edges live inside single
    // words (5–8 character windows), so any shared *word* supplies
    // matching edges, whereas token-graph edges need shared word
    // *sequences*. Synthetic text under-supplies the latter (see the
    // divergence note above), so we assert both graph variants carry
    // signal rather than their relative order.
    assert!(tng_map > ran, "TNG must beat RAN: {tng_map:.3} vs {ran:.3}");
    assert!(cng_map > ran, "CNG must beat RAN: {cng_map:.3} vs {ran:.3}");
}

/// §5: the content-based models beat both baselines on R. At smoke scale
/// the tiny test sets inflate RAN (expected AP of a random permutation
/// rises as the test set shrinks), so the token models must clear RAN
/// outright while the character models — which the paper already places
/// close to the noise floor — must at least reach it.
#[test]
fn content_models_beat_baselines() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let ran = runner.random_map(UserGroup::All, &o);
    let chr = runner.chronological_map(UserGroup::All);
    for config in [tng(), tn()] {
        let m = runner.run(&config, RepresentationSource::R, UserGroup::All, &o).map;
        assert!(m > ran, "{} must beat RAN: {m:.3} vs {ran:.3}", config.describe());
        assert!(m > chr, "{} must beat CHR: {m:.3} vs {chr:.3}", config.describe());
    }
    for config in [cn(), cng()] {
        let m = runner.run(&config, RepresentationSource::R, UserGroup::All, &o).map;
        assert!(m > ran - 0.05, "{} must reach RAN: {m:.3} vs {ran:.3}", config.describe());
        assert!(m > chr, "{} must beat CHR: {m:.3} vs {chr:.3}", config.describe());
    }
}

/// §5 "Representation Sources": R is the strongest individual source, and
/// the followers' source F is the noisiest of the social ones.
#[test]
fn retweets_are_the_best_individual_source() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let map = |s| runner.run(&tn(), s, UserGroup::All, &o).map;
    let r = map(RepresentationSource::R);
    for other in [
        RepresentationSource::T,
        RepresentationSource::E,
        RepresentationSource::F,
        RepresentationSource::C,
    ] {
        assert!(r >= map(other) - 1e-9, "R must be the best individual source (vs {other})");
    }
    // The paper's C > E > F ordering is a small-gap effect (≈0.03 mean MAP
    // across its full sweep); at smoke scale with a single configuration we
    // only require C not to fall behind F — the sweep-level ordering is
    // checked on the cached sweep in EXPERIMENTS.md.
    assert!(
        map(RepresentationSource::C) > map(RepresentationSource::F) - 0.05,
        "reciprocal connections must not trail followers materially"
    );
}

/// §5 "User Types": IP users are the easiest to model, IS the hardest
/// (posting activity → reliable models).
#[test]
fn information_producers_are_easiest_to_model() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let map = |g| runner.run(&tn(), RepresentationSource::R, g, &o).map;
    let ip = map(UserGroup::IP);
    let is = map(UserGroup::IS);
    assert!(ip > is, "IP must beat IS: {ip:.3} vs {is:.3}");
}

/// §5: recency alone is an inadequate criterion — CHR is the weakest
/// ranker of all.
#[test]
fn chronological_ordering_is_inadequate() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let chr = runner.chronological_map(UserGroup::All);
    let tn_map = runner.run(&tn(), RepresentationSource::R, UserGroup::All, &o).map;
    assert!(tn_map > chr + 0.15, "content must dominate recency: {tn_map:.3} vs {chr:.3}");
}

/// The graph models' n-size behavior on the synthetic corpus inverts the
/// paper's Table 7 (where n=3 wins): matching higher-order graph edges
/// requires verbatim 2n-token repetition, which synthetic text
/// under-supplies (see `token_models_beat_character_models`). The family
/// ordering must still be sane: every n stays above the random baseline's
/// neighborhood, and n=1 — whose edges encode word bigrams, which the
/// generator's collocations do supply — is the strongest.
#[test]
fn graph_n_sizes_are_ordered_by_available_repetition() {
    let p = prepared();
    let runner = ExperimentRunner::new(&p);
    let o = opts();
    let map = |n| {
        runner
            .run(
                &ModelConfiguration::Graph {
                    char_grams: false,
                    n,
                    similarity: GraphSimilarity::Value,
                },
                RepresentationSource::R,
                UserGroup::All,
                &o,
            )
            .map
    };
    let ran = runner.random_map(UserGroup::All, &o);
    let m1 = map(1);
    assert!(m1 > map(3), "bigram-edge graphs dominate on synthetic text");
    assert!(m1 > ran + 0.1, "TNG n=1 must clearly beat random: {m1:.3} vs {ran:.3}");
}
