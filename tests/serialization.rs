//! Persistence round-trips: every trained artifact must survive a JSON
//! round-trip and keep scoring identically — the property a deployed system
//! relies on for model checkpointing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pmr::bag::{BagSimilarity, BagVectorizer, WeightingScheme};
use pmr::core::{OnlineBagModel, OnlineGraphModel};
use pmr::graph::GraphSimilarity;
use pmr::topics::{BtmConfig, BtmModel, LdaConfig, LdaModel, TopicCorpus, TopicModel};

fn docs() -> Vec<Vec<String>> {
    let d = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
    vec![d("cat dog pet cat"), d("rust code bug rust"), d("cat pet vet"), d("code test bug")]
}

#[test]
fn bag_vectorizer_roundtrips() {
    let v = BagVectorizer::fit(WeightingScheme::TFIDF, docs().iter());
    let json = serde_json::to_string(&v).expect("serializes");
    let back: BagVectorizer = serde_json::from_str(&json).expect("deserializes");
    let probe = vec!["cat".to_owned(), "bug".to_owned()];
    assert_eq!(v.transform(&probe), back.transform(&probe));
    assert_eq!(v.dimensionality(), back.dimensionality());
}

#[test]
fn lda_model_roundtrips_and_scores_identically() {
    let corpus = TopicCorpus::from_token_docs(docs());
    let model = LdaModel::train(&LdaConfig::paper(3, 30, 7), &corpus);
    let json = serde_json::to_string(&model).expect("serializes");
    let back: LdaModel = serde_json::from_str(&json).expect("deserializes");
    let query = corpus.encode(&["cat", "dog"]);
    let a = model.infer(&query, &mut StdRng::seed_from_u64(1));
    let b = back.infer(&query, &mut StdRng::seed_from_u64(1));
    assert_eq!(a, b);
}

#[test]
fn btm_model_roundtrips() {
    let corpus = TopicCorpus::from_token_docs(docs());
    let model = BtmModel::train(&BtmConfig::paper(3, 30, 7), &corpus);
    let json = serde_json::to_string(&model).expect("serializes");
    let back: BtmModel = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(model.theta(), back.theta());
    assert_eq!(model.phi(), back.phi());
}

#[test]
fn online_models_roundtrip_mid_stream() {
    let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs().iter());
    let mut bag = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 0.9);
    let mut graph = OnlineGraphModel::new(GraphSimilarity::Value, 2);
    for d in docs().iter().take(2) {
        bag.observe(d);
        graph.observe(d);
    }
    // Checkpoint, restore, continue the stream on both copies.
    let bag_json = serde_json::to_string(&bag).expect("serializes");
    let graph_json = serde_json::to_string(&graph).expect("serializes");
    let mut bag_restored: OnlineBagModel = serde_json::from_str(&bag_json).expect("ok");
    let mut graph_restored: OnlineGraphModel = serde_json::from_str(&graph_json).expect("ok");
    for d in docs().iter().skip(2) {
        bag.observe(d);
        bag_restored.observe(d);
        graph.observe(d);
        graph_restored.observe(d);
    }
    let probe = vec!["cat".to_owned(), "code".to_owned()];
    assert_eq!(bag.score(&probe), bag_restored.score(&probe));
    assert_eq!(graph.score(&probe), graph_restored.score(&probe));
}

#[test]
fn online_models_roundtrip_with_identical_scores_on_a_probe_set() {
    // The serving engine's snapshot/restore contract reduces to this
    // property: a deserialized model is *score-indistinguishable* from the
    // original on any probe, for every similarity — not just well-behaved
    // cosine. Exact equality on purpose: the JSON float encoding is
    // shortest-round-trip, so nothing may drift by even an ulp.
    let probes: Vec<Vec<String>> = ["cat dog", "rust bug code", "vet pet cat dog", "unseen words"]
        .iter()
        .map(|s| s.split_whitespace().map(str::to_owned).collect())
        .collect();
    for similarity in
        [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard]
    {
        let vectorizer = BagVectorizer::fit(WeightingScheme::TFIDF, docs().iter());
        let mut model = OnlineBagModel::new(vectorizer, similarity, 0.8);
        for d in docs() {
            model.observe(&d);
        }
        let json = serde_json::to_string(&model).expect("serializes");
        let back: OnlineBagModel = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.documents(), model.documents(), "document count must survive");
        assert_eq!(back.model(), model.model(), "profile vector must survive bit-exactly");
        for p in &probes {
            assert_eq!(model.score(p), back.score(p), "{similarity:?} score drifted on {p:?}");
        }
    }
    for similarity in
        [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
    {
        let mut model = OnlineGraphModel::new(similarity, 2);
        for d in docs() {
            model.observe(&d);
        }
        let json = serde_json::to_string(&model).expect("serializes");
        let mut back: OnlineGraphModel = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.documents(), model.documents(), "document count must survive");
        for p in &probes {
            assert_eq!(model.score(p), back.score(p), "{similarity:?} score drifted on {p:?}");
        }
    }
}

#[test]
fn serve_engine_snapshot_roundtrips_through_the_facade() {
    use pmr::core::{PreparedCorpus, SplitConfig};
    use pmr::serve::{EngineConfig, EngineSnapshot, Replay, ReplayOptions, ServeModel};
    use pmr::sim::{generate_corpus, ScalePreset, SimConfig};

    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 9));
    let prepared = PreparedCorpus::new(corpus, SplitConfig::default()).expect("well-formed");
    let options = ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Graph {
                similarity: GraphSimilarity::Value,
                char_grams: false,
                n: 1,
            },
            window: 16,
        },
        ..ReplayOptions::default()
    };
    let mut replay = Replay::new(&prepared, options);
    replay.run_to(replay.stream_len() / 2);
    let snapshot = replay.snapshot().expect("all shards alive");
    let _ = replay.finish();
    let wire = snapshot.to_jsonl().expect("serializes");
    let back = EngineSnapshot::from_jsonl(&wire).expect("parses");
    assert_eq!(back.to_jsonl().expect("re-serializes"), wire, "JSONL must be byte-stable");
    assert_eq!(back.header, snapshot.header);
    assert_eq!(back.users.len(), snapshot.users.len());
}

#[test]
fn simulated_corpus_roundtrips() {
    use pmr::sim::{generate_corpus, Corpus, ScalePreset, SimConfig};
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 5));
    let json = serde_json::to_string(&corpus).expect("serializes");
    let back: Corpus = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(corpus.len(), back.len());
    assert_eq!(corpus.tweets[10].text, back.tweets[10].text);
    let u = corpus.evaluated_user_ids().next().unwrap();
    assert_eq!(corpus.incoming_of(u), back.incoming_of(u));
}
