//! String strategies from a regex subset.
//!
//! A `&str` literal is itself a strategy. Supported syntax: literal
//! characters, `[a-z0-9_]`-style classes with ranges, `\PC` (any printable
//! character), and `{m}` / `{m,n}` quantifiers on the preceding atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Palette for `\PC`: printable ASCII plus a few multibyte characters so
/// generated text exercises non-ASCII handling.
const PRINTABLE: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1', '2',
    '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C', 'D', 'E',
    'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X',
    'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k',
    'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '{', '|', '}', '~',
    'é', 'ß', 'λ', 'ж', '中', '文', '№', '…',
];

enum Atom {
    Class(Vec<char>),
    Printable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                Atom::Printable
            }
            '[' => {
                i += 1;
                let mut class = Vec::new();
                while chars[i] != ']' {
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        class.extend(lo..=hi);
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1;
                Atom::Class(class)
            }
            c => {
                assert!(
                    !"(){}|*+?.^$".contains(c),
                    "unsupported metacharacter {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let count = rng.usize_in(piece.min, piece.max + 1);
            let palette: &[char] = match &piece.atom {
                Atom::Class(chars) => chars,
                Atom::Printable => PRINTABLE,
            };
            for _ in 0..count {
                out.push(palette[rng.usize_in(0, palette.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_ranges_and_quantifiers() {
        let mut rng = TestRng::deterministic("string");
        for _ in 0..200 {
            let s = "[a-c]x{2}[_0-9]".generate(&mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert_eq!(chars.len(), 4, "{s:?}");
            assert!(('a'..='c').contains(&chars[0]));
            assert_eq!(&chars[1..3], &['x', 'x']);
            assert!(chars[3] == '_' || chars[3].is_ascii_digit());
        }
    }

    #[test]
    fn printable_lengths_cover_range() {
        let mut rng = TestRng::deterministic("printable");
        let mut saw_empty = false;
        let mut saw_long = false;
        for _ in 0..300 {
            let s = "\\PC{0,10}".generate(&mut rng);
            let n = s.chars().count();
            assert!(n <= 10);
            saw_empty |= n == 0;
            saw_long |= n >= 8;
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
        assert!(saw_empty && saw_long);
    }
}
