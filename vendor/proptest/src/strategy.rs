//! The [`Strategy`] trait and the numeric / tuple / mapped strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of `value`.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.bounded(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.bounded(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
