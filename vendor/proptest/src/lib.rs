//! Offline stand-in for `proptest`.
//!
//! Runs each property as a fixed number of deterministic random cases (no
//! shrinking). Supports the strategy surface this workspace uses: numeric
//! ranges, a regex subset for strings (`[a-z]{1,8}`-style classes and
//! `\PC`), `collection::vec`, tuples, `bool::ANY`, and `prop_map`. The
//! `proptest!` macro accepts the usual `fn name(x in strategy, ...)` items;
//! `prop_assert!`/`prop_assert_eq!` report failures with the case number,
//! and `prop_assume!` skips the case.

pub mod strategy;
pub mod test_runner;

/// Regex-subset string strategies.
pub mod string;

/// `bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `collection::vec`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub use strategy::Strategy;

/// Run each `fn name(binding in strategy, ...) { body }` item as a test of
/// [`test_runner::cases`] deterministic random cases. An optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` overrides the count.
#[macro_export]
macro_rules! proptest {
    (@impl $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let cases: u32 = $cases;
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!("property {} failed on case {case}: {msg}", stringify!($name));
                }
            }
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @impl ($cfg).cases; $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @impl $crate::test_runner::cases(); $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
        crate::collection::vec((0u32..10, 0.0f64..1.0), 0..8)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn regex_classes_generate_in_alphabet(s in "[a-d]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s}");
        }

        #[test]
        fn mapped_and_tuple_strategies_compose(v in pairs(), b in crate::bool::ANY) {
            prop_assume!(v.len() < 100);
            for (n, f) in &v {
                prop_assert!(*n < 10);
                prop_assert!((0.0..1.0).contains(f));
            }
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn printable_strings_have_no_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
