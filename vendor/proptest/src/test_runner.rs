//! The deterministic RNG driving property tests.

/// How many cases each property runs. Small enough to keep `cargo test`
/// fast, large enough to exercise the strategies.
pub fn cases() -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(32),
        Err(_) => 32,
    }
}

/// Per-block configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A splitmix64 generator, seeded from the property name so every test is
/// reproducible run-to-run without global state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the property name).
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero and fit the
    /// spans produced by the integer range strategies.
    pub fn bounded(&mut self, bound: u128) -> u128 {
        assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            // 128-bit multiply-shift: maps a u64 uniformly onto [0, bound).
            (self.next_u64() as u128 * bound) >> 64
        } else {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Uniform `usize` in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.bounded((hi - lo) as u128) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("prop");
        let mut b = TestRng::deterministic("prop");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(rng.bounded(7) < 7);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
