//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free API, backed by `std::sync`.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poisoning is ignored).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
