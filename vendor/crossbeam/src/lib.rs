//! Offline stand-in for `crossbeam`, providing the piece this workspace
//! uses: [`channel`], a multi-producer multi-consumer channel in both
//! unbounded and bounded (backpressure-capable) flavors.
//! Both [`channel::Sender`] and [`channel::Receiver`] are cloneable;
//! receivers block until a message arrives or every sender is dropped, and
//! senders on a bounded channel block until the queue has room.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue drains below capacity.
        vacant: Condvar,
        /// `usize::MAX` marks an unbounded channel.
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half. Cloneable; the channel disconnects when the last
    /// sender is dropped and the queue drains.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. Cloneable — workers can share one receiver each
    /// and pull tasks as they free up.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: all receivers were dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: all senders were dropped and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// `try_send` outcomes on a bounded channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// All receivers were dropped; the message is handed back.
        Disconnected(T),
    }

    /// `try_recv` outcomes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue is currently empty but senders remain.
        Empty,
        /// Queue is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    fn new_chan<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            vacant: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(usize::MAX)
    }

    /// Create a bounded MPMC channel holding at most `capacity` messages
    /// (`capacity` ≥ 1). [`Sender::send`] blocks while the queue is full;
    /// [`Sender::try_send`] returns [`TrySendError::Full`] instead.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(capacity.max(1))
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver is gone. On a
        /// bounded channel this blocks until the queue has room.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            while queue.len() >= self.chan.capacity {
                if self.chan.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                queue = self.chan.vacant.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Non-blocking enqueue: hands the message back when the queue is
        /// at capacity or every receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.chan.capacity {
                return Err(TrySendError::Full(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake everyone so blocked receivers can bail.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.chan.vacant.notify_one();
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.chan.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.chan.vacant.notify_one();
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full queue so
                // they can observe the disconnect.
                self.chan.vacant.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_distributes_all_messages() {
            let (tx, rx) = unbounded::<usize>();
            let total = 1000;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..4 {
                    let rx = rx.clone();
                    handles.push(scope.spawn(move || rx.iter().count()));
                }
                drop(rx);
                for i in 0..total {
                    tx.send(i).unwrap();
                }
                drop(tx);
                let received: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                assert_eq!(received, total);
            });
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded::<u8>(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn bounded_send_blocks_until_room() {
            let (tx, rx) = bounded::<usize>(1);
            std::thread::scope(|scope| {
                let handle = scope.spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let mut got = Vec::new();
                for _ in 0..100 {
                    got.push(rx.recv().unwrap());
                }
                handle.join().unwrap();
                assert_eq!(got, (0..100).collect::<Vec<_>>());
            });
        }

        #[test]
        fn bounded_send_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|scope| {
                let handle = scope.spawn(move || tx.send(2));
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(rx);
                assert_eq!(handle.join().unwrap(), Err(SendError(2)));
            });
        }

        #[test]
        fn bounded_preserves_fifo_order() {
            let (tx, rx) = bounded::<usize>(4);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..50 {
                        tx.send(i).unwrap();
                    }
                });
                let got: Vec<usize> = rx.iter().collect();
                assert_eq!(got, (0..50).collect::<Vec<_>>());
            });
        }
    }
}
