//! Offline stand-in for `crossbeam`, providing the piece this workspace
//! uses: [`channel`], a multi-producer multi-consumer unbounded channel.
//! Both [`channel::Sender`] and [`channel::Receiver`] are cloneable;
//! receivers block until a message arrives or every sender is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half. Cloneable; the channel disconnects when the last
    /// sender is dropped and the queue drains.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. Cloneable — workers can share one receiver each
    /// and pull tasks as they free up.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: all receivers were dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: all senders were dropped and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// `try_recv` outcomes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue is currently empty but senders remain.
        Empty,
        /// Queue is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake everyone so blocked receivers can bail.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.chan.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_distributes_all_messages() {
            let (tx, rx) = unbounded::<usize>();
            let total = 1000;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..4 {
                    let rx = rx.clone();
                    handles.push(scope.spawn(move || rx.iter().count()));
                }
                drop(rx);
                for i in 0..total {
                    tx.send(i).unwrap();
                }
                drop(tx);
                let received: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                assert_eq!(received, total);
            });
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
