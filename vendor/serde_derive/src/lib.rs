//! `#[derive(Serialize, Deserialize)]` for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the registry crates
//! `syn`/`quote` are unavailable offline). Supports exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields → JSON objects (field order preserved);
//! * one-field tuple structs (newtypes) → transparent;
//! * multi-field tuple structs → arrays;
//! * unit structs → `null`;
//! * enums with unit / newtype / tuple / struct variants → externally
//!   tagged, exactly like serde's default representation.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let item_kind = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generics are not supported (type {name})");
        }
    }
    let kind = match item_kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum {name} has no body"),
        },
        other => panic!("derive target must be struct or enum, got {other}"),
    };
    Input { name, kind }
}

/// Skip any number of `#[...]` attributes (incl. doc comments).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => panic!("malformed attribute"),
        }
    }
}

/// Skip `pub` / `pub(...)` if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Field names of a named-fields body, in declaration order.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        names.push(expect_ident(&toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type(&toks, &mut i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    names
}

/// Skip one type, stopping at a top-level `,` (angle-bracket aware —
/// commas inside `<...>` belong to the type).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Arity of a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        fields += 1;
        skip_type(&toks, &mut i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            match p.as_char() {
                ',' => i += 1,
                '=' => panic!("explicit enum discriminants are not supported"),
                _ => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::value::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::value::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::value::Value::Null".to_owned(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::value::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::value::expect_field(obj, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = ::serde::value::expect_object(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::value::expect_tuple(v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let items = ::serde::value::expect_tuple(\
                                 inner, {n}, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         ::serde::value::expect_field(obj, \"{f}\", \
                                         \"{name}::{vn}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let obj = ::serde::value::expect_object(\
                                 inner, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::value::Value::String(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant {{other}} of {name}\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant {{other}} of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"expected {name} variant, got {{other}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
