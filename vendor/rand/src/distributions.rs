//! Uniform range sampling.

/// Uniform range support (`rng.gen_range(low..high)`).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draw one sample.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Integers that can be sampled via 128-bit widening multiply.
    pub trait SampleUniformInt: Copy {
        /// Offset from `low` as an unsigned span.
        fn span(low: Self, high: Self) -> u64;
        /// `low + offset`.
        fn offset(low: Self, offset: u64) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniformInt for $t {
                fn span(low: Self, high: Self) -> u64 {
                    (high as i128 - low as i128) as u64
                }
                fn offset(low: Self, offset: u64) -> Self {
                    (low as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Multiply-shift bounded draw (bias is negligible for spans ≪ 2^64).
    fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    impl<T: SampleUniformInt> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let span = T::span(self.start, self.end);
            assert!(span > 0, "cannot sample from empty range");
            T::offset(self.start, bounded(rng, span))
        }
    }

    impl<T: SampleUniformInt> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            let span = T::span(low, high)
                .checked_add(1)
                .expect("inclusive range spans the full integer domain");
            T::offset(low, bounded(rng, span))
        }
    }

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample from empty range");
            let u = crate::unit_f64(rng.next_u64());
            self.start + (self.end - self.start) * u
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample from empty range");
            low + (high - low) * crate::unit_f64(rng.next_u64())
        }
    }

    impl SampleRange<f32> for RangeInclusive<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample from empty range");
            low + (high - low) * crate::unit_f64(rng.next_u64()) as f32
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample from empty range");
            let u = crate::unit_f64(rng.next_u64()) as f32;
            self.start + (self.end - self.start) * u
        }
    }
}
