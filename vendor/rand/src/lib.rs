//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the API this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! with `gen_range`/`gen_bool`, and [`seq::SliceRandom`] with
//! `shuffle`/`choose`. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, `Send + Sync`, and statistically solid for
//! simulation work; streams differ from the real crate's ChaCha-based
//! `StdRng`, which only matters if results are compared against runs made
//! with the registry crate.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self.next_u64()) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to the unit interval [0, 1).
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let _ = (a.next_u32(), b.next_u32());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..13);
            assert!(x < 13);
            let y = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
