//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The standard generator: xoshiro256**. Plain data — `Send + Sync`, cheap
/// to construct per task, deterministic from its seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}
