//! The owned data-model tree shared by `serde` and `serde_json`.

use crate::Error;

/// A JSON-style number that keeps 64-bit integers exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

/// An owned JSON-like value. Objects preserve insertion order so that
/// serialization is deterministic and byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Expect an object, with a type name for the error message.
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_object().ok_or_else(|| Error::msg(format!("expected object for {ty}, got {v}")))
}

/// Expect an array, with a type name for the error message.
pub fn expect_array<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
    v.as_array().ok_or_else(|| Error::msg(format!("expected array for {ty}, got {v}")))
}

/// Expect a field of an object, with a type name for the error message.
pub fn expect_field<'a>(
    obj: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}` of {ty}")))
}

/// Expect an array of exactly `len` items.
pub fn expect_tuple<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], Error> {
    let items =
        v.as_array().ok_or_else(|| Error::msg(format!("expected array for {ty}, got {v}")))?;
    if items.len() != len {
        return Err(Error::msg(format!("expected {len} elements for {ty}, got {}", items.len())));
    }
    Ok(items)
}

/// Compact JSON rendering. Floats use Rust's shortest round-trip `Display`,
/// so serialize → parse → serialize is byte-stable.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::PosInt(n)) => write!(f, "{n}"),
            Value::Number(Number::NegInt(n)) => write!(f, "{n}"),
            Value::Number(Number::Float(x)) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write a JSON string literal with escapes.
fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}
