//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides a compatible-enough replacement: `Serialize` and
//! `Deserialize` traits built around an owned JSON-like [`value::Value`]
//! tree, plus `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the sibling `serde_derive` crate). The data model mirrors serde's JSON
//! conventions — structs become objects, newtype structs are transparent,
//! enums are externally tagged — so JSON produced by this crate looks like
//! what the real serde + serde_json pair would emit for the same types.
//!
//! Only the features this workspace actually uses are implemented: plain
//! derives without `#[serde(...)]` attributes, and the std impls listed in
//! this file. Unknown object fields are ignored on deserialization; missing
//! fields are an error (this strictness is what lets the sweep cache reject
//! files written by older layouts).

pub mod value;

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn serialize(&self) -> Value;
}

/// A value that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the data-model tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::PosInt(n)) => Ok(*n),
                    Value::Number(Number::NegInt(n)) => {
                        u64::try_from(*n).map_err(|_| Error::msg("negative integer"))
                    }
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {other}"
                    ))),
                }?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::NegInt(n))
                } else {
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::NegInt(n)) => Ok(*n),
                    Value::Number(Number::PosInt(n)) => {
                        i64::try_from(*n).map_err(|_| Error::msg("integer out of range"))
                    }
                    other => Err(Error::msg(format!(
                        "expected signed integer, got {other}"
                    ))),
                }?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    // JSON has no NaN/Infinity; mirror serde_json's `null`.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::Float(f)) => Ok(*f as $t),
                    Value::Number(Number::PosInt(n)) => Ok(*n as $t),
                    Value::Number(Number::NegInt(n)) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::msg(format!("expected number, got {other}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($n)),+].len();
                let items = value::expect_tuple(v, LEN, "tuple")?;
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Convert a serialized key to its JSON object-key string.
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Number(Number::PosInt(n)) => Ok(n.to_string()),
        Value::Number(Number::NegInt(n)) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!("map key must be string-like, got {other}"))),
    }
}

/// Rebuild a map key from its JSON object-key string: try the string form
/// first, then the integer forms (covers `String`, integer, and integer
/// newtype keys such as `UserId`).
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::PosInt(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::NegInt(n))) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot rebuild map key from {s:?}")))
}

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = key_to_string(&k.serialize()).expect("map key must be string-like");
            (key, v.serialize())
        })
        .collect();
    // Deterministic output independent of hash-map iteration order.
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(pairs)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = value::expect_object(v, "map")?;
        obj.iter().map(|(k, v)| Ok((key_from_str(k)?, V::deserialize(v)?))).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = value::expect_object(v, "map")?;
        obj.iter().map(|(k, v)| Ok((key_from_str(k)?, V::deserialize(v)?))).collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        // Deterministic output independent of hash-set iteration order.
        items.sort_by_key(|a| a.to_string());
        Value::Array(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = value::expect_array(v, "set")?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = value::expect_array(v, "set")?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::Number(Number::PosInt(self.as_secs()))),
            ("nanos".to_owned(), Value::Number(Number::PosInt(self.subsec_nanos() as u64))),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = value::expect_object(v, "Duration")?;
        let secs = u64::deserialize(value::expect_field(obj, "secs", "Duration")?)?;
        let nanos = u32::deserialize(value::expect_field(obj, "nanos", "Duration")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for PathBuf {
    fn serialize(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for PathBuf {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(PathBuf::from(String::deserialize(v)?))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_sort_keys_deterministically() {
        let mut m = HashMap::new();
        m.insert(10u32, "a".to_owned());
        m.insert(2u32, "b".to_owned());
        let v = m.serialize();
        let obj = value::expect_object(&v, "map").unwrap();
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["10", "2"]);
        let back: HashMap<u32, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn duration_roundtrips() {
        let d = Duration::new(3, 456);
        let back = Duration::deserialize(&d.serialize()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let x: Option<(u32, f64)> = Some((7, 0.5));
        let back: Option<(u32, f64)> = Deserialize::deserialize(&x.serialize()).unwrap();
        assert_eq!(back, x);
        let none: Option<u32> = Deserialize::deserialize(&Value::Null).unwrap();
        assert_eq!(none, None);
    }
}
