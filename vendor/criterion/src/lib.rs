//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::default().measurement_time(..)`,
//! benchmark groups) but measures with a simple calibrated wall-clock
//! loop: run the closure until the measurement window elapses, report
//! mean time per iteration to stdout. No statistics, plots, or baselines.
//!
//! Like real criterion, `cargo bench -- --test` switches to test mode:
//! every routine runs exactly once, unmeasured — CI uses this to verify
//! the benches still compile and execute without paying for measurement.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Benchmark driver. Collects settings; each `bench_function` runs and
/// prints immediately.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            sample_size: 100,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set how long each benchmark measures for.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set how long each benchmark warms up for.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target sample count (only bounds iteration batching here).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.warm_up_time, self.measurement_time, self.test_mode, f);
        self
    }

    /// Run a benchmark that takes an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.warm_up_time, self.measurement_time, self.test_mode, |b| f(b, input));
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named benchmark id, `"name/param"`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Run a benchmark with an input inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; `iter` records the routine to measure.
pub struct Bencher {
    routine_time: Duration,
    iterations: u64,
    test_mode: bool,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly for the configured window
    /// (or exactly once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.routine_time && iters >= 1 {
                self.iterations = iters;
                self.routine_time = elapsed;
                return;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    warm_up: Duration,
    measure: Duration,
    test_mode: bool,
    mut f: F,
) {
    if test_mode {
        let mut bench = Bencher { routine_time: Duration::ZERO, iterations: 0, test_mode };
        f(&mut bench);
        println!("Testing {id} ... ok");
        return;
    }
    let mut warm = Bencher { routine_time: warm_up, iterations: 0, test_mode: false };
    f(&mut warm);
    let mut bench = Bencher { routine_time: measure, iterations: 0, test_mode: false };
    f(&mut bench);
    let per_iter = bench.routine_time.as_nanos() / bench.iterations.max(1) as u128;
    println!("{id:<40} {:>12} ns/iter ({} iterations)", per_iter, bench.iterations);
}

/// Declare a benchmark group; supports both the simple form and the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(42)));
    }
}
