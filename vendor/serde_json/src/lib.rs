//! Offline stand-in for `serde_json`: compact JSON serialization and a
//! recursive-descent parser over the `serde` stand-in's [`Value`] tree.
//!
//! Output is deterministic and byte-stable: object fields keep declaration
//! order (hash maps are sorted by key), and floats use Rust's shortest
//! round-trip formatting.

pub use serde::value::{Number, Value};
pub use serde::Error;
use serde::{Deserialize, Serialize};

/// Serialize into the data-model tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).to_string())
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&to_value(value), 0, &mut out);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(&value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from a flat `{ "key": expr, ... }` literal or a single
/// serializable expression.
#[macro_export]
macro_rules! json {
    ({ $($k:tt : $v:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad_inner);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            n = n * 16 + digit;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|e| Error::msg(format!("invalid number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let v: Value = parse(r#"{"a":[1,-2,3.5,null,true],"b":"x\ny"}"#).unwrap();
        let s = v.to_string();
        let again: Value = parse(&s).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn float_display_is_stable() {
        for &f in &[0.1f64, 1.0, 1e-7, 123456.789, -0.25] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
            assert_eq!(to_string(&back).unwrap(), s);
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let id = 7u32;
        let v = json!({ "type": "user", "id": id, "opt": Option::<u32>::None });
        assert_eq!(v.to_string(), r#"{"type":"user","id":7,"opt":null}"#);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }
}
