//! # pmr — content-based personalized microblog recommendation
//!
//! A faithful, from-scratch Rust implementation of the system evaluated in
//! *"Comparative Analysis of Content-based Personalized Microblog
//! Recommendations"* (EDBT 2019): nine representation models, thirteen
//! representation sources, the ranking-based recommendation framework, its
//! evaluation protocol, and a synthetic Twitter substrate standing in for
//! the paper's gated 2009 dataset.
//!
//! This crate is a facade: it re-exports the workspace crates so that
//! applications can depend on a single name.
//!
//! ```
//! use pmr::sim::{generate_corpus, ScalePreset, SimConfig};
//! use pmr::core::{PreparedCorpus, SplitConfig};
//!
//! let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 1));
//! let prepared = PreparedCorpus::new(corpus, SplitConfig::default())?;
//! assert!(prepared.split.len() > 0);
//! # Ok::<(), pmr::core::PmrError>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and `pmr-bench`
//! for the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

/// Text substrate: tokenization, n-grams, vocabulary, language detection.
pub use pmr_text as text;

/// Synthetic Twitter substrate: corpus, social graph, retweet process.
pub use pmr_sim as sim;

/// Vector-space (bag) representation models.
pub use pmr_bag as bag;

/// N-gram graph representation models.
pub use pmr_graph as graph;

/// Topic models (PLSA, LDA, LLDA, HDP, HLDA, BTM) with pooling.
pub use pmr_topics as topics;

/// The recommendation framework: sources, splits, configurations,
/// scoring, evaluation, baselines, experiments.
pub use pmr_core as core;

/// Online serving: sharded engine, deterministic stream replay,
/// snapshot/restore.
pub use pmr_serve as serve;
