//! Topic browser: train LDA and BTM on the simulated corpus and print the
//! top words of each discovered topic next to the simulator's ground-truth
//! topic vocabularies — a direct view into what the context-agnostic models
//! of the paper's taxonomy can and cannot recover from short noisy text.
//!
//! ```text
//! cargo run --release --example topic_browser
//! ```

use pmr::core::{PreparedCorpus, SplitConfig};
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};
use pmr::topics::pooling::{pool, PoolInput};
use pmr::topics::{BtmConfig, BtmModel, LdaConfig, LdaModel, PoolingScheme, TopicCorpus};

fn main() {
    let sim_config = SimConfig::preset(ScalePreset::Smoke, 11);
    let corpus = generate_corpus(&sim_config);
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");

    // Training tweets of all users (everything before the splits), pooled
    // by user — the configuration the paper finds best for most topic
    // models.
    let train_ids: Vec<pmr::sim::TweetId> = (0..prepared.corpus.len() as u32)
        .map(pmr::sim::TweetId)
        .filter(|&id| {
            prepared
                .split
                .users()
                .next()
                .map(|u| {
                    let s = prepared.split.user(u).expect("users() yields split users");
                    prepared.corpus.tweet(id).timestamp < s.split_time
                })
                .unwrap_or(true)
        })
        .collect();
    let inputs: Vec<PoolInput<'_>> = train_ids
        .iter()
        .map(|&id| PoolInput {
            tokens: prepared.content(id),
            author: prepared.corpus.tweet(id).author.0,
            hashtags: prepared.hashtags(id),
        })
        .collect();
    let pooled = pool(PoolingScheme::UP, &inputs);
    let topic_corpus = TopicCorpus::from_token_docs(&pooled);
    println!(
        "training corpus: {} pseudo-documents, |V| = {}, {} tokens",
        topic_corpus.len(),
        topic_corpus.vocab_size(),
        topic_corpus.total_tokens()
    );

    let k = 12;
    println!("\n=== LDA (K = {k}) top words ===");
    let lda = LdaModel::train(&LdaConfig::paper(k, 60, 5), &topic_corpus);
    print_topics(lda.phi(), &topic_corpus);

    println!("\n=== BTM (K = {k}) top words ===");
    let btm =
        BtmModel::train(&BtmConfig { window: 30, ..BtmConfig::paper(k, 60, 5) }, &topic_corpus);
    print_topics(btm.phi(), &topic_corpus);

    println!("\n=== simulator ground truth (first 6 topics, English vocabulary) ===");
    // Regenerate the world's language models from the same seed to show
    // the reference vocabularies (the corpus itself never exposes them to
    // the models).
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(sim_config.seed);
    let reference = pmr::sim::language::LanguageModel::generate(
        &mut rng,
        pmr::text::Language::English,
        sim_config.num_topics,
        sim_config.common_words_per_language,
        sim_config.topic_words_per_language,
        sim_config.phrases_per_topic,
    );
    for (t, words) in reference.topic_words.iter().take(6).enumerate() {
        println!("topic {t:>2}: {}", words[..8.min(words.len())].join(" "));
    }
}

fn print_topics(phi: &[Vec<f32>], corpus: &TopicCorpus) {
    for (t, row) in phi.iter().enumerate() {
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite"));
        let words: Vec<&str> = idx.iter().take(8).map(|&w| corpus.vocab.term(w as u32)).collect();
        println!("topic {t:>2}: {}", words.join(" "));
    }
}
