//! Quickstart: simulate a microblog corpus, build user models from each
//! user's retweets, and rank her incoming test tweets — comparing the
//! paper's two headline context-based models against both baselines.
//!
//! On the synthetic corpus the strongest graph configuration is the
//! unigram-node graph (n = 1); the paper's n = 3 winner depends on the
//! verbatim-repetition statistics of real tweets (see EXPERIMENTS.md,
//! "Known divergences").
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::graph::GraphSimilarity;
use pmr::sim::usertype::UserGroup;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};

fn main() {
    // 1. A synthetic Twitter world: 60 evaluated users inside a larger
    //    population, multilingual tweets, interest-driven retweets.
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
    println!(
        "corpus: {} tweets by {} users ({} evaluated)",
        corpus.len(),
        corpus.users.len(),
        corpus.evaluated_user_ids().count()
    );

    // 2. Preprocess (tokenize, squeeze, stop-filter) and split each user's
    //    timeline: the 20% most recent retweets become the positive test
    //    documents, with 4 sampled negatives each.
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    println!("users with a test set: {}", prepared.split.len());

    // 3. Token n-gram graphs built from the user's retweets (source R).
    let config =
        ModelConfiguration::Graph { char_grams: false, n: 1, similarity: GraphSimilarity::Value };
    let runner = ExperimentRunner::new(&prepared);
    let opts = RunnerOptions::default();
    let result = runner.run(&config, RepresentationSource::R, UserGroup::All, &opts);
    println!("TNG(n=1, VS) on R: MAP = {:.3}", result.map);

    // 4. Compare against the paper's baselines.
    println!("CHR baseline:       MAP = {:.3}", runner.chronological_map(UserGroup::All));
    println!("RAN baseline:       MAP = {:.3}", runner.random_map(UserGroup::All, &opts));

    // 5. And against a second model — the token vector-space model with
    //    TF-IDF weights, the paper's efficiency/effectiveness sweet spot.
    let tn = ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: pmr::bag::WeightingScheme::TFIDF,
        aggregation: AggKind::Centroid,
        similarity: pmr::bag::BagSimilarity::Cosine,
    };
    let result = runner.run(&tn, RepresentationSource::R, UserGroup::All, &opts);
    println!("TN(n=1, TF-IDF):    MAP = {:.3}", result.map);
}
