//! Timeline re-ranking — the application the paper's introduction
//! motivates: a user drowning in incoming tweets gets her feed reordered by
//! relevance to her interests instead of by recency.
//!
//! The example picks one information-seeker (a user who receives far more
//! than she posts — the feed-overload case), builds her user model from her
//! retweets, and prints her test-phase feed twice: chronologically (what
//! Twitter showed in 2009) and re-ranked by the model, marking the tweets
//! she actually went on to retweet.
//!
//! ```text
//! cargo run --release --example timeline_reranker
//! ```

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::recommender::{score_configuration, ScoringOptions};
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::sim::usertype::partition_users;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};

fn main() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 7));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let partition = partition_users(&prepared.corpus);

    // An information seeker with a valid test set.
    let user = partition
        .is
        .iter()
        .copied()
        .find(|&u| prepared.split.user(u).is_some())
        .expect("IS users have test sets");
    let split = prepared.split.user(user).expect("selected for having one");
    println!(
        "user {:?}: {} followees, {} incoming tweets, test set of {} ({} relevant)",
        user,
        prepared.corpus.graph.followees(user).len(),
        prepared.corpus.incoming_of(user).len(),
        split.test_docs().len(),
        split.positives.len()
    );

    // Chronological view (newest first), as a 2009 timeline.
    let mut chrono = split.test_docs();
    chrono.sort_by_key(|&id| std::cmp::Reverse(prepared.corpus.tweet(id).timestamp));
    println!("\n--- chronological timeline (top 10) ---");
    for &id in chrono.iter().take(10) {
        print_row(&prepared, id, split.is_positive(id));
    }

    // Content-based re-ranking with TN + TF-IDF over the user's retweets.
    let config = ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TFIDF,
        aggregation: AggKind::Centroid,
        similarity: BagSimilarity::Cosine,
    };
    let outcome = score_configuration(
        &prepared,
        &config,
        RepresentationSource::R,
        &[user],
        &ScoringOptions::default(),
    );
    let ap = outcome.per_user.first().map(|r| r.ap).unwrap_or(0.0);

    // Reconstruct the ranked order for display: score again via the public
    // API pieces (the framework returns AP; the display needs the ranking,
    // so we rebuild the same model inline).
    let train = prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::R);
    let grams = |id| pmr::text::token_ngrams(prepared.content(id), 1);
    let train_grams: Vec<Vec<String>> = train.iter().map(|&id| grams(id)).collect();
    let vectorizer = pmr::bag::BagVectorizer::fit(WeightingScheme::TFIDF, train_grams.iter());
    let vectors: Vec<pmr::bag::SparseVector> =
        train_grams.iter().map(|g| vectorizer.transform(g)).collect();
    let user_model = pmr::bag::AggregationFunction::Centroid.aggregate(&vectors, &[]);
    let mut ranked: Vec<(f64, pmr::sim::TweetId)> = split
        .test_docs()
        .into_iter()
        .map(|id| {
            (pmr::bag::similarity::cosine(&user_model, &vectorizer.transform(&grams(id))), id)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));

    println!("\n--- content-ranked timeline (top 10), AP = {ap:.3} ---");
    for &(score, id) in ranked.iter().take(10) {
        print!("[{score:+.3}] ");
        print_row(&prepared, id, split.is_positive(id));
    }
}

fn print_row(prepared: &PreparedCorpus, id: pmr::sim::TweetId, relevant: bool) {
    let tweet = prepared.corpus.tweet(id);
    let marker = if relevant { "★" } else { " " };
    let text: String = tweet.text.chars().take(64).collect();
    println!("{marker} t={:>7} {text}", tweet.timestamp);
}
