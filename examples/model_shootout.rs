//! Model shoot-out: one representative configuration per family, evaluated
//! on the same users and source, with effectiveness (MAP) and the two time
//! measures side by side — a miniature of the paper's headline comparison.
//!
//! ```text
//! cargo run --release --example model_shootout
//! ```

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::timing::human;
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::graph::GraphSimilarity;
use pmr::sim::usertype::UserGroup;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};
use pmr::topics::PoolingScheme;

fn main() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let runner = ExperimentRunner::new(&prepared);
    let opts = RunnerOptions::default();

    // One strong configuration per family (Table 7 shapes).
    let contenders: Vec<(&str, ModelConfiguration)> = vec![
        (
            "TNG n=3 VS",
            ModelConfiguration::Graph {
                char_grams: false,
                n: 3,
                similarity: GraphSimilarity::Value,
            },
        ),
        (
            "CNG n=4 CoS",
            ModelConfiguration::Graph {
                char_grams: true,
                n: 4,
                similarity: GraphSimilarity::Containment,
            },
        ),
        (
            "TN n=1 TF-IDF CS",
            ModelConfiguration::Bag {
                char_grams: false,
                n: 1,
                weighting: WeightingScheme::TFIDF,
                aggregation: AggKind::Centroid,
                similarity: BagSimilarity::Cosine,
            },
        ),
        (
            "CN n=4 TF CS",
            ModelConfiguration::Bag {
                char_grams: true,
                n: 4,
                weighting: WeightingScheme::TF,
                aggregation: AggKind::Centroid,
                similarity: BagSimilarity::Cosine,
            },
        ),
        (
            "LDA K=100 UP",
            ModelConfiguration::Lda {
                topics: 100,
                iterations: 1_000,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "LLDA K=100 UP",
            ModelConfiguration::Llda {
                topics: 100,
                iterations: 1_000,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "BTM K=100 NP",
            ModelConfiguration::Btm {
                topics: 100,
                pooling: PoolingScheme::NP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "HDP β=0.1 UP",
            ModelConfiguration::Hdp {
                beta: 0.1,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "HLDA 10/0.1/0.5",
            ModelConfiguration::Hlda {
                alpha: 10.0,
                beta: 0.1,
                gamma: 0.5,
                aggregation: AggKind::Centroid,
            },
        ),
    ];

    println!(
        "{:<18} {:>7} {:>12} {:>12}   (source R, All Users)",
        "model", "MAP", "TTime", "ETime"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (name, config) in contenders {
        let result = runner.run(&config, RepresentationSource::R, UserGroup::All, &opts);
        println!(
            "{:<18} {:>7.3} {:>12} {:>12}",
            name,
            result.map,
            human(result.train_time),
            human(result.test_time)
        );
        rows.push((name.to_owned(), result.map));
    }
    println!("{:<18} {:>7.3}", "RAN baseline", runner.random_map(UserGroup::All, &opts));
    println!("{:<18} {:>7.3}", "CHR baseline", runner.chronological_map(UserGroup::All));

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nwinner: {} (MAP {:.3})", rows[0].0, rows[0].1);
}
