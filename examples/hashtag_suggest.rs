//! Hashtag suggestion — one of the paper's stated future directions
//! (§7: "we plan to expand our comparative analysis to other
//! recommendation tasks … such as followees and hashtag suggestions").
//!
//! The same user-model machinery transfers directly: build the user model
//! from her retweets, build one document model per candidate hashtag from
//! the training tweets that carry it, and rank hashtags by similarity.
//! Ground truth for the demonstration: the hashtags that actually appear
//! in the user's *test-phase* retweets.
//!
//! ```text
//! cargo run --release --example hashtag_suggest
//! ```

use std::collections::{HashMap, HashSet};

use pmr::bag::{AggregationFunction, BagVectorizer, SparseVector, WeightingScheme};
use pmr::core::{PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::sim::{generate_corpus, ScalePreset, SimConfig, TweetId};
use pmr::text::token_ngrams;

fn main() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 21));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");

    // Pick a user whose test positives carry hashtags.
    let user = prepared
        .split
        .users()
        .find(|&u| {
            let s = prepared.split.user(u).expect("users() yields split users");
            s.positives.iter().any(|&id| !prepared.hashtags(id).is_empty())
        })
        .expect("some test positives carry hashtags");
    let split = prepared.split.user(user).expect("chosen above");

    // The user model from her retweets (source R), TN unigrams + TF-IDF.
    let train = prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::R);
    // Candidate hashtags and their supporting tweets come from the whole
    // training phase of the user's feed (what she could have seen).
    let feed_train: Vec<TweetId> =
        prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::E);
    let mut tag_tweets: HashMap<String, Vec<TweetId>> = HashMap::new();
    for &id in &feed_train {
        for tag in prepared.hashtags(id) {
            tag_tweets.entry(tag.clone()).or_default().push(id);
        }
    }
    tag_tweets.retain(|_, tweets| tweets.len() >= 3);
    println!(
        "user {:?}: {} candidate hashtags with ≥3 supporting feed tweets",
        user,
        tag_tweets.len()
    );

    let grams = |id: TweetId| token_ngrams(prepared.content(id), 1);
    let train_grams: Vec<Vec<String>> = train.iter().map(|&id| grams(id)).collect();
    let vectorizer = BagVectorizer::fit(WeightingScheme::TFIDF, train_grams.iter());
    let vectors: Vec<SparseVector> = train_grams.iter().map(|g| vectorizer.transform(g)).collect();
    let user_model = AggregationFunction::Centroid.aggregate(&vectors, &[]);

    // One document model per hashtag: centroid of its supporting tweets.
    let mut ranked: Vec<(f64, String)> = tag_tweets
        .iter()
        .map(|(tag, tweets)| {
            let vecs: Vec<SparseVector> =
                tweets.iter().map(|&id| vectorizer.transform(&grams(id))).collect();
            let tag_model = AggregationFunction::Centroid.aggregate(&vecs, &[]);
            (pmr::bag::similarity::cosine(&user_model, &tag_model), tag.clone())
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));

    // Ground truth: hashtags of the user's test-phase positives.
    let truth: HashSet<String> =
        split.positives.iter().flat_map(|&id| prepared.hashtags(id).iter().cloned()).collect();
    println!("hashtags in her future retweets: {truth:?}\n");
    println!("top suggested hashtags:");
    for (i, (score, tag)) in ranked.iter().take(10).enumerate() {
        let hit = truth.contains(tag);
        println!("{:>2}. [{score:+.3}] {tag} {}", i + 1, if hit { "✓" } else { "" });
    }
    let first_hit = ranked.iter().position(|(_, tag)| truth.contains(tag));
    let mrr = first_hit.map(|i| 1.0 / (i + 1) as f64).unwrap_or(0.0);
    // A random ordering's expected reciprocal rank of the first relevant
    // candidate, for reference.
    let expected_random_mrr = {
        let n = ranked.len() as f64;
        let r = ranked.iter().filter(|(_, t)| truth.contains(t)).count() as f64;
        if r == 0.0 {
            0.0
        } else {
            // E[1/first-hit-rank] under a uniform permutation, sampled.
            (r / n).max(1.0 / n) // coarse lower bound, printed for scale only
        }
    };
    println!("\nMRR = {mrr:.2} (a random ordering scores around {expected_random_mrr:.2})");
}
