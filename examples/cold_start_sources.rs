//! Representation-source study for cold-start-ish users: when a user has
//! few posts of her own, can her social neighborhood (followees, followers,
//! reciprocal friends) stand in? This exercises the paper's Table 6
//! machinery on a single model and reports, per user type, which source
//! carries the most signal.
//!
//! ```text
//! cargo run --release --example cold_start_sources
//! ```

use pmr::bag::{BagSimilarity, WeightingScheme};
use pmr::core::config::AggKind;
use pmr::core::experiment::{ExperimentRunner, RunnerOptions};
use pmr::core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::sim::usertype::UserGroup;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig};

fn main() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let runner = ExperimentRunner::new(&prepared);
    let opts = RunnerOptions::default();

    // A fixed strong model so that only the source varies.
    let model = |_: ()| ModelConfiguration::Bag {
        char_grams: false,
        n: 1,
        weighting: WeightingScheme::TFIDF,
        aggregation: AggKind::Centroid,
        similarity: BagSimilarity::Cosine,
    };

    let sources = [
        RepresentationSource::R,
        RepresentationSource::T,
        RepresentationSource::E,
        RepresentationSource::F,
        RepresentationSource::C,
        RepresentationSource::TR,
        RepresentationSource::RC,
    ];
    println!("MAP of TN(TF-IDF) per representation source and user type:\n");
    print!("{:<8}", "source");
    for group in [UserGroup::All, UserGroup::IS, UserGroup::BU, UserGroup::IP] {
        print!("{:>10}", group.name());
    }
    println!();
    let mut best: Vec<(UserGroup, RepresentationSource, f64)> = Vec::new();
    for source in sources {
        print!("{:<8}", source.name());
        for group in [UserGroup::All, UserGroup::IS, UserGroup::BU, UserGroup::IP] {
            let r = runner.run(&model(()), source, group, &opts);
            print!("{:>10.3}", r.map);
            match best.iter_mut().find(|(g, _, _)| *g == group) {
                Some(entry) if entry.2 < r.map => *entry = (group, source, r.map),
                Some(_) => {}
                None => best.push((group, source, r.map)),
            }
        }
        println!();
    }
    println!("\nbest source per user type:");
    for (group, source, map) in best {
        println!("  {:<9} → {:<3} (MAP {map:.3})", group.name(), source.name());
    }
    println!(
        "\nThe paper's finding: the user's own retweets (R) dominate everywhere;\n\
         social sources (E, F, C) are weaker but usable when R is unavailable,\n\
         with reciprocal connections (C) the strongest of the three."
    );
}
