//! Followee suggestion — the paper's other stated future direction (§7).
//!
//! Rank accounts the user does *not* follow by the similarity between her
//! user model (built from her retweets) and each candidate's content model
//! (built from the candidate's tweets). Ground truth for the demonstration
//! is the simulator's hidden interest profiles: a good suggestion is an
//! account whose latent interests align with the user's.
//!
//! ```text
//! cargo run --release --example followee_suggest
//! ```

use pmr::bag::{AggregationFunction, BagVectorizer, SparseVector, WeightingScheme};
use pmr::core::{PreparedCorpus, RepresentationSource, SplitConfig};
use pmr::sim::interests::cosine as interest_cosine;
use pmr::sim::{generate_corpus, ScalePreset, SimConfig, TweetId, UserId};
use pmr::text::token_ngrams;

fn main() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 33));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");

    let user = prepared.split.users().next().expect("split users exist");
    let already: std::collections::HashSet<UserId> =
        prepared.corpus.graph.followees(user).iter().copied().collect();

    // User model from her retweets.
    let train = prepared.split.train_ids(&prepared.corpus, user, RepresentationSource::R);
    let grams = |id: TweetId| token_ngrams(prepared.content(id), 1);
    let train_grams: Vec<Vec<String>> = train.iter().map(|&id| grams(id)).collect();
    let vectorizer = BagVectorizer::fit(WeightingScheme::TFIDF, train_grams.iter());
    let vectors: Vec<SparseVector> = train_grams.iter().map(|g| vectorizer.transform(g)).collect();
    let user_model = AggregationFunction::Centroid.aggregate(&vectors, &[]);

    // Candidates: everyone she does not follow, modeled by their originals.
    let mut ranked: Vec<(f64, UserId)> = prepared
        .corpus
        .user_ids()
        .filter(|&v| v != user && !already.contains(&v))
        .filter_map(|v| {
            let originals = prepared.corpus.originals_of(v);
            if originals.len() < 3 {
                return None;
            }
            let vecs: Vec<SparseVector> =
                originals.iter().map(|&id| vectorizer.transform(&grams(id))).collect();
            let candidate_model = AggregationFunction::Centroid.aggregate(&vecs, &[]);
            Some((pmr::bag::similarity::cosine(&user_model, &candidate_model), v))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));

    // Validate against the simulator's hidden interest profiles.
    let me = prepared.corpus.user(user);
    let alignment =
        |v: UserId| interest_cosine(&me.interests, &prepared.corpus.user(v).interests) as f64;
    println!("followee suggestions for {:?} (interest alignment is hidden ground truth):\n", user);
    for (score, v) in ranked.iter().take(8) {
        println!(
            "  {:<8} content-sim {score:+.3}   true interest alignment {:+.3}",
            prepared.corpus.user(*v).handle,
            alignment(*v)
        );
    }
    let top_align: f64 = ranked.iter().take(8).map(|&(_, v)| alignment(v)).sum::<f64>() / 8.0;
    let all_align: f64 =
        ranked.iter().map(|&(_, v)| alignment(v)).sum::<f64>() / ranked.len().max(1) as f64;
    println!(
        "\nmean true alignment: top-8 suggestions {top_align:+.3} vs all candidates {all_align:+.3}"
    );
    assert!(ranked.len() > 8, "candidate pool too small");
}
