//! The single injected clock behind every observability timestamp.
//!
//! Nothing else in the workspace reads wall-clock time for observability
//! purposes (`pmr-lint`'s `wall-clock` rule enforces it): the executor, the
//! experiment runner and the topic trainers all measure through whatever
//! [`Clock`] the installed recorder carries. Production installs a
//! [`MonotonicClock`]; tests inject a [`ManualClock`] so journal timestamps
//! and histogram contents are fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic time source measured from the clock's own epoch.
///
/// Returning `Duration` (not a calendar timestamp) keeps every consumer
/// relative: journal `ts_us` fields are offsets from recorder installation,
/// never absolute times, so journals from different machines line up.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since the clock's epoch. Must be monotonic.
    fn now(&self) -> Duration;
}

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: std::time::Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> MonotonicClock {
        // This is the one sanctioned wall-clock read of the observability
        // layer; pmr-lint allowlists exactly this file for it.
        MonotonicClock { epoch: std::time::Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic test clock advanced by hand.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_micros(250));
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now(), Duration::from_micros(500));
    }
}
