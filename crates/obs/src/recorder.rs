//! The recorder: one clock + one metrics registry + one optional journal,
//! installable as the process-global observability sink.
//!
//! Every emission site in the workspace calls the free functions of this
//! module ([`counter_add`], [`observe_duration`], [`span`], [`timer`],
//! [`event`], …). When no recorder is installed they cost a single relaxed
//! atomic load and do nothing — the default sweep path stays byte-identical
//! and effectively unobserved. The bench binaries install a recorder when
//! `--journal` or `--metrics-out` is given.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::RwLock;

use crate::clock::{Clock, MonotonicClock};
use crate::journal::{Field, Journal};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// A bound observability sink.
#[derive(Debug)]
pub struct Recorder {
    clock: Box<dyn Clock>,
    metrics: MetricsRegistry,
    journal: Option<Journal>,
}

impl Recorder {
    /// A recorder over `clock` with no journal (metrics only).
    pub fn new(clock: Box<dyn Clock>) -> Recorder {
        Recorder { clock, metrics: MetricsRegistry::new(), journal: None }
    }

    /// A recorder over the production monotonic clock.
    pub fn monotonic() -> Recorder {
        Recorder::new(Box::new(MonotonicClock::new()))
    }

    /// Attach a JSONL journal sink.
    pub fn with_journal(mut self, journal: Journal) -> Recorder {
        self.journal = Some(journal);
        self
    }

    /// Current time on the injected clock.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The journal path, when journaling is on.
    pub fn journal_path(&self) -> Option<&std::path::Path> {
        self.journal.as_ref().map(Journal::path)
    }

    /// Emit a journal event stamped "now" (no-op without a journal).
    pub fn event(&self, kind: &str, name: &str, fields: &[(&str, Field)]) {
        if let Some(journal) = &self.journal {
            let ts = self.now();
            journal.write_event(duration_us(ts), kind, name, fields);
        }
    }

    /// Emit a journal event at an explicit clock reading.
    pub fn event_at(&self, ts: Duration, kind: &str, name: &str, fields: &[(&str, Field)]) {
        if let Some(journal) = &self.journal {
            journal.write_event(duration_us(ts), kind, name, fields);
        }
    }

    /// Flush the journal (no-op without one).
    pub fn flush(&self) {
        if let Some(journal) = &self.journal {
            journal.flush();
        }
    }
}

/// Saturating µs conversion used for all journal timestamps.
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Fast path: is a recorder installed at all?
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn global() -> &'static RwLock<Option<Arc<Recorder>>> {
    static GLOBAL: OnceLock<RwLock<Option<Arc<Recorder>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Install `recorder` as the process-global sink, returning a handle to it.
/// Replaces (and returns through [`uninstall`] semantics drops) any
/// previously installed recorder.
pub fn install(recorder: Recorder) -> Arc<Recorder> {
    let arc = Arc::new(recorder);
    *global().write() = Some(Arc::clone(&arc));
    ACTIVE.store(true, Ordering::SeqCst);
    arc
}

/// Remove the global recorder, returning it (flushed) if one was installed.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ACTIVE.store(false, Ordering::SeqCst);
    let prev = global().write().take();
    if let Some(rec) = &prev {
        rec.flush();
    }
    prev
}

/// The installed recorder, if any. One relaxed load when inactive.
pub fn active() -> Option<Arc<Recorder>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    global().read().clone()
}

/// The injected clock's current reading, when a recorder is installed.
/// Instrumentation sites use this instead of `Instant::now()` so that the
/// wall-clock lint rule holds and tests can drive time manually.
pub fn now() -> Option<Duration> {
    active().map(|r| r.now())
}

/// Add `delta` to the named counter.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(r) = active() {
        r.metrics().counter_add(name, delta);
    }
}

/// Set the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    if let Some(r) = active() {
        r.metrics().gauge_set(name, value);
    }
}

/// Record a duration observation into the named histogram.
pub fn observe_duration(name: &str, d: Duration) {
    if let Some(r) = active() {
        r.metrics().observe(name, d);
    }
}

/// Emit a journal event (no-op without an installed journal).
pub fn event(kind: &str, name: &str, fields: &[(&str, Field)]) {
    if let Some(r) = active() {
        r.event(kind, name, fields);
    }
}

/// A point-in-time metrics snapshot, when a recorder is installed.
pub fn snapshot() -> Option<MetricsSnapshot> {
    active().map(|r| r.metrics().snapshot())
}

/// Flush the journal of the installed recorder, if any.
pub fn flush() {
    if let Some(r) = active() {
        r.flush();
    }
}

thread_local! {
    /// The per-thread span stack behind hierarchical span paths. Spans
    /// opened on a worker thread root at that thread — hierarchy is
    /// per-thread by design, since a span guard cannot cross threads.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open hierarchical span. Journals `span_start`/`span_end` events and
/// records the duration into the `span.<path>` histogram on drop, where
/// `<path>` is the `/`-joined stack of enclosing spans on this thread.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    open: Option<(Arc<Recorder>, String, Duration)>,
}

/// Open a span named `name` under the current thread's span path.
pub fn span(name: &str) -> SpanGuard {
    let Some(rec) = active() else {
        return SpanGuard { open: None };
    };
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_owned());
        stack.join("/")
    });
    let start = rec.now();
    rec.event_at(start, "span_start", &path, &[]);
    SpanGuard { open: Some((rec, path, start)) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((rec, path, start)) = self.open.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let end = rec.now();
        let d = end.saturating_sub(start);
        rec.metrics().observe(&format!("span.{path}"), d);
        rec.event_at(end, "span_end", &path, &[("duration_us", Field::U64(duration_us(d)))]);
    }
}

/// A lightweight timer guard: histogram only, no journal events. Meant for
/// hot loops (per-iteration Gibbs timing) where one journal line per tick
/// would swamp the journal.
#[derive(Debug)]
#[must_use = "a timer measures the scope it is alive for"]
pub struct TimerGuard {
    open: Option<(Arc<Recorder>, String, Duration)>,
}

/// Start a timer feeding the named histogram.
pub fn timer(name: &str) -> TimerGuard {
    let Some(rec) = active() else {
        return TimerGuard { open: None };
    };
    let start = rec.now();
    TimerGuard { open: Some((rec, name.to_owned(), start)) }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let Some((rec, name, start)) = self.open.take() else {
            return;
        };
        let d = rec.now().saturating_sub(start);
        rec.metrics().observe(&name, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use parking_lot::Mutex;

    /// Global-recorder tests share process state; serialize them.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    fn manual_recorder() -> (Arc<ManualClock>, Recorder) {
        let clock = Arc::new(ManualClock::new());
        #[derive(Debug)]
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now(&self) -> Duration {
                self.0.now()
            }
        }
        let rec = Recorder::new(Box::new(Shared(Arc::clone(&clock))));
        (clock, rec)
    }

    #[test]
    fn inactive_calls_are_noops() {
        let _guard = test_lock().lock();
        uninstall();
        assert!(now().is_none());
        assert!(snapshot().is_none());
        counter_add("x", 1);
        observe_duration("y", Duration::from_micros(5));
        let span = span("quiet");
        drop(span);
        assert!(snapshot().is_none(), "still no recorder after no-op calls");
    }

    #[test]
    fn spans_nest_into_hierarchical_paths() {
        let _guard = test_lock().lock();
        let (clock, rec) = manual_recorder();
        install(rec);
        {
            let _outer = span("sweep");
            clock.advance(Duration::from_micros(10));
            {
                let _inner = span("run");
                clock.advance(Duration::from_micros(30));
            }
            clock.advance(Duration::from_micros(2));
        }
        let snap = snapshot().expect("recorder installed");
        let outer = snap.histogram("span.sweep").expect("outer span recorded");
        let inner = snap.histogram("span.sweep/run").expect("inner path nests");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.sum_us, 42);
        assert_eq!(inner.sum_us, 30);
        uninstall();
    }

    #[test]
    fn timer_feeds_histogram_deterministically() {
        let _guard = test_lock().lock();
        let (clock, rec) = manual_recorder();
        install(rec);
        for _ in 0..3 {
            let _t = timer("gibbs_iter.lda");
            clock.advance(Duration::from_micros(100));
        }
        let snap = snapshot().expect("recorder installed");
        let h = snap.histogram("gibbs_iter.lda").expect("timer recorded");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_us, 300);
        assert_eq!(h.min_us, 100);
        assert_eq!(h.max_us, 100);
        uninstall();
    }

    #[test]
    fn journal_records_span_events_with_manual_timestamps() {
        let _guard = test_lock().lock();
        let path =
            std::env::temp_dir().join(format!("pmr_obs_recorder_{}.jsonl", std::process::id()));
        let (clock, rec) = manual_recorder();
        let rec = rec.with_journal(Journal::create(&path).expect("journal creates"));
        install(rec);
        clock.advance(Duration::from_micros(7));
        {
            let _s = span("prep");
            clock.advance(Duration::from_micros(11));
        }
        event("cache", "hit", &[("path", Field::from("x.json"))]);
        uninstall();
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<serde_json::Value> =
            text.lines().map(|l| serde_json::from_str(l).expect("line parses")).collect();
        assert_eq!(lines.len(), 3, "span_start, span_end, cache event");
        assert_eq!(lines[0].get("kind").and_then(|v| v.as_str()), Some("span_start"));
        assert_eq!(lines[1].get("kind").and_then(|v| v.as_str()), Some("span_end"));
        assert_eq!(lines[2].get("kind").and_then(|v| v.as_str()), Some("cache"));
        let _ = std::fs::remove_file(&path);
    }
}
