//! The per-run JSONL event journal.
//!
//! One JSON object per line, written in arrival order:
//!
//! ```json
//! {"ts_us":1234,"kind":"span_end","name":"sweep/run","fields":{"duration_us":56}}
//! ```
//!
//! `ts_us` is microseconds since the recorder's clock epoch (recorder
//! installation under the production clock). With `--jobs N > 1` the
//! arrival order of events from different workers is scheduling-dependent,
//! which is why journals are diagnostic artifacts, excluded from the
//! repo's byte-identical determinism guarantees (see EXPERIMENTS.md); the
//! sweep's *result* artifacts never depend on the journal.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

/// A single typed field value of a journal event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_owned())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// An append-only JSONL sink. All writes funnel through one mutex so lines
/// are never interleaved, even under a parallel sweep.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Create (truncate) the journal file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(path)?;
        Ok(Journal { path: path.to_owned(), out: Mutex::new(BufWriter::new(file)) })
    }

    /// Where the journal is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event line. I/O errors are swallowed: the journal is a
    /// diagnostic artifact and must never take down a sweep.
    pub fn write_event(&self, ts_us: u64, kind: &str, name: &str, fields: &[(&str, Field)]) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"kind\":\"");
        push_escaped(&mut line, kind);
        line.push_str("\",\"name\":\"");
        push_escaped(&mut line, name);
        line.push('"');
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                push_escaped(&mut line, key);
                line.push_str("\":");
                match value {
                    Field::U64(v) => line.push_str(&v.to_string()),
                    Field::F64(v) if v.is_finite() => line.push_str(&format!("{v}")),
                    Field::F64(_) => line.push_str("null"),
                    Field::Str(s) => {
                        line.push('"');
                        push_escaped(&mut line, s);
                        line.push('"');
                    }
                }
            }
            line.push('}');
        }
        line.push('}');
        let mut out = self.out.lock();
        let _ = writeln!(out, "{line}");
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pmr_obs_journal_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn events_round_trip_as_json_lines() {
        let path = temp_path("roundtrip");
        let journal = Journal::create(&path).expect("journal creates");
        journal.write_event(5, "span_start", "sweep", &[]);
        journal.write_event(
            9,
            "task_end",
            "executor",
            &[("task", Field::U64(3)), ("worker", Field::U64(0)), ("source", Field::from("R"))],
        );
        journal.flush();
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("line parses as JSON");
            assert!(v.get("ts_us").is_some());
            assert!(v.get("kind").is_some());
        }
        let second: serde_json::Value = serde_json::from_str(lines[1]).expect("parses");
        assert_eq!(second.get("kind").and_then(|v| v.as_str()), Some("task_end"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strings_are_escaped() {
        let path = temp_path("escape");
        let journal = Journal::create(&path).expect("journal creates");
        journal.write_event(0, "note", "he said \"hi\"\n", &[("why", Field::from("a\\b"))]);
        journal.flush();
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let v: serde_json::Value =
            serde_json::from_str(text.lines().next().expect("one line")).expect("parses");
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("he said \"hi\"\n"));
        let _ = std::fs::remove_file(&path);
    }
}
