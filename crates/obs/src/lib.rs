//! # pmr-obs — structured observability for the sweep pipeline
//!
//! A zero-`unsafe`, dependency-light observability layer with three parts:
//!
//! - **Hierarchical spans** ([`span`]): scoped guards whose `/`-joined
//!   per-thread path (`sweep/run` …) names both the journal events and a
//!   duration histogram.
//! - **A typed metrics registry** ([`MetricsRegistry`]): counters, gauges
//!   and duration histograms over fixed log-scale buckets, snapshotted into
//!   a deterministic, serializable [`MetricsSnapshot`].
//! - **A per-run JSONL event journal** ([`Journal`]): one JSON object per
//!   line, enabled by the bench bins' `--journal <path>` flag.
//!
//! All timestamps flow through a single injected [`Clock`] so production
//! code never reads wall-clock time outside the allowlisted
//! [`MonotonicClock`], and tests drive a [`ManualClock`] by hand.
//!
//! Instrumentation sites call the free functions here unconditionally; when
//! no recorder is installed they cost one relaxed atomic load and emit
//! nothing, keeping default sweep output byte-identical to an uninstrumented
//! build.

#![forbid(unsafe_code)]

mod clock;
mod journal;
mod metrics;
pub mod process;
mod recorder;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use journal::{Field, Journal};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS_US};
pub use process::{current_rss_bytes, peak_rss_bytes};
pub use recorder::{
    active, counter_add, event, flush, gauge_set, install, now, observe_duration, snapshot, span,
    timer, uninstall, Recorder, SpanGuard, TimerGuard,
};
