//! Process-level resource introspection for scale benchmarks.
//!
//! The scale pipeline's acceptance criterion is *memory*, not just time:
//! streaming generation must hold peak RSS far below the materialized
//! corpus. Rust has no portable peak-RSS API, so this module reads the
//! kernel's accounting from `/proc/self/status` on Linux and degrades to
//! `None` elsewhere — callers (the `bench_scale` bin, the `scale-smoke`
//! CI gate) treat a missing reading as "not measurable here", never as
//! zero.

/// Peak resident set size (`VmHWM`) of the current process, in bytes.
///
/// This is a high-water mark: it never decreases, so a benchmark that
/// wants per-phase peaks must isolate each phase in its own process.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_field("VmHWM:")
}

/// Current resident set size (`VmRSS`) of the current process, in bytes.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_field("VmRSS:")
}

/// Read a `kB`-denominated field from `/proc/self/status`.
fn proc_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_field(&status, field)
}

fn parse_status_field(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line[field.len()..].trim().trim_end_matches(" kB").trim().parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_lines() {
        let status = "Name:\tbench\nVmHWM:\t  123456 kB\nVmRSS:\t     789 kB\n";
        assert_eq!(parse_status_field(status, "VmHWM:"), Some(123_456 * 1024));
        assert_eq!(parse_status_field(status, "VmRSS:"), Some(789 * 1024));
        assert_eq!(parse_status_field(status, "VmPeak:"), None);
    }

    #[test]
    fn malformed_fields_are_none() {
        assert_eq!(parse_status_field("VmHWM:\tnonsense kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_field("", "VmHWM:"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_plausible_rss() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM on Linux");
        let current = current_rss_bytes().expect("/proc/self/status has VmRSS on Linux");
        // A test runner resident in under 256 KiB or over 1 TiB is not a
        // plausible reading.
        assert!(peak > 256 * 1024 && peak < 1 << 40);
        assert!(current > 256 * 1024 && current < 1 << 40);
        assert!(peak >= current / 2, "peak should be on the order of current");
    }
}
