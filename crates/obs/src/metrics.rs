//! The typed metrics registry: counters, gauges, and duration histograms
//! with fixed log-scale buckets.
//!
//! Everything is keyed by a flat string name and stored in `BTreeMap`s so a
//! serialized [`MetricsSnapshot`] is byte-for-byte deterministic given the
//! same observations: names come out sorted and the histogram bucket bounds
//! are compile-time constants, independent of the data's range.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Upper bounds (inclusive, in µs) of the histogram buckets: powers of four
/// from 1µs to ~4,295s. Observations above the last bound land in a final
/// overflow bucket, so every histogram has `BUCKET_BOUNDS_US.len() + 1`
/// counts.
pub const BUCKET_BOUNDS_US: [u64; 17] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
    4_294_967_296,
];

/// A duration histogram over the fixed log-scale buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in µs (saturating).
    pub sum_us: u64,
    /// Smallest observation, in µs (0 when empty).
    pub min_us: u64,
    /// Largest observation, in µs (0 when empty).
    pub max_us: u64,
    /// Per-bucket counts aligned with [`BUCKET_BOUNDS_US`]; the final
    /// element counts overflow observations.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The mean observation (zero when empty).
    pub fn mean(&self) -> Duration {
        self.sum_us.checked_div(self.count).map_or(Duration::ZERO, Duration::from_micros)
    }

    /// The total observed time.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.sum_us)
    }

    /// A quantile estimate in µs (`q` clamped to `[0, 1]`; 0 when empty).
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// `⌈q·count⌉`-th observation, then interpolates linearly within that
    /// bucket's span `(lower bound, upper bound]` as if its observations
    /// were evenly spaced — the `j`-th of a bucket's `c` observations is
    /// estimated at `lower + (upper − lower)·j/c`. The result is clamped
    /// to the observed `[min_us, max_us]` range, so a single observation
    /// reports exactly. Without interpolation the log-4 quantization makes
    /// the estimate an upper bound off by up to 4×; with it the error is
    /// bounded by the distance between the true value and the
    /// evenly-spaced assumption within one bucket. Deterministic: depends
    /// only on the snapshot (integer arithmetic throughout the walk).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let before = seen;
            seen += c;
            if seen >= rank && c > 0 {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] };
                // The overflow bucket has no compile-time upper bound; the
                // observed maximum is the tightest one available.
                let upper = BUCKET_BOUNDS_US.get(i).copied().unwrap_or(self.max_us).max(lower);
                let pos = rank - before; // 1..=c within this bucket
                let span = (upper - lower) as u128;
                let est = lower + ((span * pos as u128) / c as u128) as u64;
                return est.clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
    buckets: [u64; BUCKET_BOUNDS_US.len() + 1],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram { count: 0, sum_us: 0, min_us: 0, max_us: 0, buckets: [0; 18] }
    }

    fn observe(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[bucket] += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum_us: self.sum_us,
            min_us: self.min_us,
            max_us: self.max_us,
            buckets: self.buckets.to_vec(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (created at zero on first touch).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Set a gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_owned(), value);
    }

    /// Record one duration observation into a histogram.
    pub fn observe(&self, name: &str, d: Duration) {
        let mut inner = self.inner.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(d),
            None => {
                let mut h = Histogram::new();
                h.observe(d);
                inner.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`] — the
/// `--metrics-out metrics.json` payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, f64>,
    /// Duration histograms over the fixed log-scale buckets.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A counter's value (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.counter_add("hits", 1);
        m.counter_add("hits", 2);
        m.gauge_set("jobs", 4.0);
        m.gauge_set("jobs", 8.0);
        let s = m.snapshot();
        assert_eq!(s.counter("hits"), 3);
        assert_eq!(s.gauge("jobs"), Some(8.0));
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_are_log_scale_and_stable() {
        let m = MetricsRegistry::new();
        m.observe("t", Duration::from_micros(1)); // bucket 0 (<= 1µs)
        m.observe("t", Duration::from_micros(3)); // bucket 1 (<= 4µs)
        m.observe("t", Duration::from_micros(5)); // bucket 2 (<= 16µs)
        m.observe("t", Duration::from_secs(10_000)); // overflow
        let s = m.snapshot();
        let h = s.histogram("t").expect("histogram exists");
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets.len(), BUCKET_BOUNDS_US.len() + 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS_US.len()], 1, "10,000s overflows the last bound");
        assert_eq!(h.min_us, 1);
        assert_eq!(h.max_us, 10_000_000_000);
    }

    #[test]
    fn histogram_mean_and_total() {
        let m = MetricsRegistry::new();
        m.observe("t", Duration::from_micros(10));
        m.observe("t", Duration::from_micros(30));
        let s = m.snapshot();
        let h = s.histogram("t").expect("histogram exists");
        assert_eq!(h.mean(), Duration::from_micros(20));
        assert_eq!(h.total(), Duration::from_micros(40));
        assert_eq!(
            HistogramSnapshot { count: 0, sum_us: 0, min_us: 0, max_us: 0, buckets: vec![] }.mean(),
            Duration::ZERO
        );
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let m = MetricsRegistry::new();
        // 99 fast observations (≤ 16µs bucket) and one slow outlier.
        for _ in 0..99 {
            m.observe("q", Duration::from_micros(10));
        }
        m.observe("q", Duration::from_micros(5_000_000));
        let s = m.snapshot();
        let h = s.histogram("q").expect("histogram exists");
        // p50 = rank 50 of 99 evenly spaced across (4, 16]: 4 + 12·50/99.
        assert_eq!(h.quantile_us(0.5), 10, "p50 interpolates inside the ≤16µs bucket");
        assert_eq!(h.quantile_us(0.99), 16, "99 of 100 observations are fast");
        assert_eq!(h.quantile_us(1.0), 5_000_000, "p100 clamps to the max");
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.999), "quantiles are monotone");
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let m = MetricsRegistry::new();
        // Four observations in the (4, 16] bucket: interpolation spaces
        // them evenly at 7, 10, 13, 16.
        for us in [5u64, 10, 12, 16] {
            m.observe("q", Duration::from_micros(us));
        }
        let s = m.snapshot();
        let h = s.histogram("q").expect("histogram exists");
        assert_eq!(h.quantile_us(0.25), 7);
        assert_eq!(h.quantile_us(0.5), 10);
        assert_eq!(h.quantile_us(0.75), 13);
        assert_eq!(h.quantile_us(1.0), 16);
    }

    #[test]
    fn quantiles_at_bucket_edges_report_the_edge() {
        let m = MetricsRegistry::new();
        // Observations exactly on a bucket's inclusive upper bound: the
        // top quantile is the bound itself, not the next bucket's.
        for _ in 0..3 {
            m.observe("edge", Duration::from_micros(16));
        }
        let s = m.snapshot();
        let h = s.histogram("edge").expect("histogram exists");
        assert_eq!(h.quantile_us(1.0), 16);
        assert_eq!(h.quantile_us(0.01), 16, "clamped up to min_us");
        // A lone overflow observation: the overflow bucket borrows max_us
        // as its upper bound, so the estimate is exact.
        m.observe("over", Duration::from_secs(10_000));
        let s = m.snapshot();
        let over = s.histogram("over").expect("histogram exists");
        assert_eq!(over.quantile_us(0.5), 10_000_000_000);
    }

    #[test]
    fn quantile_of_single_observation_is_exact() {
        let m = MetricsRegistry::new();
        m.observe("one", Duration::from_micros(777));
        let s = m.snapshot();
        let h = s.histogram("one").expect("histogram exists");
        // Bucket bound 1024 clamps to the observed min==max==777.
        assert_eq!(h.quantile_us(0.5), 777);
        assert_eq!(h.quantile_us(0.99), 777);
        let empty =
            HistogramSnapshot { count: 0, sum_us: 0, min_us: 0, max_us: 0, buckets: vec![] };
        assert_eq!(empty.quantile_us(0.5), 0);
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        let build = || {
            let m = MetricsRegistry::new();
            // Insert in two different orders; BTreeMap canonicalizes.
            m.counter_add("b", 1);
            m.counter_add("a", 1);
            m.observe("z", Duration::from_micros(7));
            m.snapshot()
        };
        let j1 = serde_json::to_string(&build()).expect("serializes");
        let j2 = serde_json::to_string(&build()).expect("serializes");
        assert_eq!(j1, j2);
        let back: MetricsSnapshot = serde_json::from_str(&j1).expect("parses");
        assert_eq!(back, build());
    }
}
