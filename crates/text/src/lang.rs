//! Lightweight language/script detection.
//!
//! The paper identifies the prevalent language of every user's pooled tweets
//! with an off-the-shelf n-gram-profile detector (optimaize) after cleaning
//! hashtags, mentions, URLs and emoticons (§4, Table 3). This module is a
//! compact reimplementation of the same idea, specialized to the ten
//! languages of the paper's Table 3:
//!
//! * Non-Latin scripts are recognized from their Unicode blocks (kana →
//!   Japanese, CJK ideographs without kana → Chinese, Hangul → Korean, Thai
//!   block → Thai) — this is how real detectors separate them too, and it is
//!   exact.
//! * Latin-script languages are scored by two profile features: signature
//!   diacritics (ã/õ/ç → Portuguese, è/ù/œ → French, ä/ü/ß → German, ñ/¿/¡ →
//!   Spanish) and high-frequency function words (the/and…, de/que…, le/et…,
//!   der/und…, yang/dan…, el/y…). Indonesian has no diacritics, so function
//!   words carry it, exactly as in profile-based detectors.
//!
//! The detector is deliberately simple — the reproduction only needs the
//! clean → pool-per-user → detect → assign pipeline of Table 3 — but it is a
//! real detector: it works on genuine text in these languages, not only on
//! simulator output.

use serde::{Deserialize, Serialize};

/// The ten most frequent languages of the paper's corpus (Table 3), plus a
/// catch-all for anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    English,
    Japanese,
    Chinese,
    Portuguese,
    Thai,
    French,
    Korean,
    German,
    Indonesian,
    Spanish,
    Other,
}

impl Language {
    /// The ten named languages, in the order of the paper's Table 3.
    pub const TABLE3: [Language; 10] = [
        Language::English,
        Language::Japanese,
        Language::Chinese,
        Language::Portuguese,
        Language::Thai,
        Language::French,
        Language::Korean,
        Language::German,
        Language::Indonesian,
        Language::Spanish,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::Japanese => "Japanese",
            Language::Chinese => "Chinese",
            Language::Portuguese => "Portuguese",
            Language::Thai => "Thai",
            Language::French => "French",
            Language::Korean => "Korean",
            Language::German => "German",
            Language::Indonesian => "Indonesian",
            Language::Spanish => "Spanish",
            Language::Other => "Other",
        }
    }

    /// Whether the language's script separates words with spaces.
    /// Chinese, Japanese and Thai do not (challenge C3); Korean does.
    pub fn uses_spaces(self) -> bool {
        !matches!(self, Language::Chinese | Language::Japanese | Language::Thai)
    }
}

/// Function-word profiles for the Latin-script languages. Each entry is a
/// (word, weight) pair; weights reflect how discriminative the word is.
const FUNCTION_WORDS: &[(Language, &[&str])] = &[
    (Language::English, &["the", "and", "is", "you", "for", "that", "with", "this"]),
    (Language::Portuguese, &["que", "não", "uma", "com", "para", "por", "mais", "você"]),
    (Language::French, &["le", "les", "des", "est", "pas", "pour", "une", "dans"]),
    (Language::German, &["der", "die", "und", "ist", "nicht", "das", "ich", "ein"]),
    (Language::Indonesian, &["yang", "dan", "di", "itu", "dengan", "ini", "tidak", "aku"]),
    (Language::Spanish, &["el", "los", "que", "una", "por", "para", "como", "pero"]),
];

/// Signature diacritics that almost uniquely identify a Latin language.
const SIGNATURE_CHARS: &[(Language, &[char])] = &[
    (Language::Portuguese, &['ã', 'õ', 'ç', 'ê']),
    (Language::French, &['è', 'ù', 'œ', 'à']),
    (Language::German, &['ä', 'ü', 'ß', 'ö']),
    (Language::Spanish, &['ñ', '¿', '¡', 'í']),
];

/// Weight of one signature diacritic relative to one function-word hit.
/// Diacritics are far more discriminative than shared function words
/// (e.g. "que" appears in both Spanish and Portuguese).
const SIGNATURE_WEIGHT: f64 = 4.0;

/// Weak per-word evidence for English from plain-ASCII words that hit no
/// profile. Real profile-based detectors accumulate English n-gram evidence
/// from *every* word; this constant plays that role for the dominant
/// language without drowning out the function-word profiles of the others.
const PLAIN_ASCII_WEIGHT: f64 = 0.08;

/// Detect the language of a (cleaned) text.
///
/// Returns [`Language::Other`] when the text is empty or matches nothing.
pub fn detect_language(text: &str) -> Language {
    let mut kana = 0usize;
    let mut cjk = 0usize;
    let mut hangul = 0usize;
    let mut thai = 0usize;
    let mut latin = 0usize;
    for c in text.chars() {
        match c {
            '\u{3040}'..='\u{30FF}' => kana += 1, // Hiragana + Katakana
            '\u{4E00}'..='\u{9FFF}' => cjk += 1,  // CJK Unified Ideographs
            '\u{AC00}'..='\u{D7AF}' | '\u{1100}'..='\u{11FF}' => hangul += 1,
            '\u{0E00}'..='\u{0E7F}' => thai += 1,
            'a'..='z' | 'A'..='Z' | '\u{00C0}'..='\u{024F}' => latin += 1,
            _ => {}
        }
    }
    let non_latin_max = kana.max(cjk).max(hangul).max(thai);
    if non_latin_max > 0 && non_latin_max * 2 >= latin {
        // Kana presence marks Japanese even when kanji dominate.
        if kana > 0 && kana * 10 >= cjk {
            return Language::Japanese;
        }
        if cjk >= hangul && cjk >= thai && cjk >= kana {
            return Language::Chinese;
        }
        if hangul >= thai {
            return Language::Korean;
        }
        return Language::Thai;
    }
    if latin == 0 {
        return Language::Other;
    }
    latin_language(text)
}

fn latin_language(text: &str) -> Language {
    let lowered = text.to_lowercase();
    let mut scores: Vec<(Language, f64)> =
        FUNCTION_WORDS.iter().map(|&(lang, _)| (lang, 0.0)).collect();
    // Signature diacritics.
    for c in lowered.chars() {
        for &(lang, chars) in SIGNATURE_CHARS {
            if chars.contains(&c) {
                bump(&mut scores, lang, SIGNATURE_WEIGHT);
            }
        }
    }
    // Function words, plus weak plain-ASCII evidence for English.
    for word in lowered.split(|c: char| !c.is_alphanumeric() && c != '\'') {
        if word.is_empty() {
            continue;
        }
        let mut hit = false;
        for &(lang, words) in FUNCTION_WORDS {
            if words.contains(&word) {
                bump(&mut scores, lang, 1.0);
                hit = true;
            }
        }
        if !hit && word.is_ascii() && word.chars().any(|c| c.is_ascii_alphabetic()) {
            bump(&mut scores, Language::English, PLAIN_ASCII_WEIGHT);
        }
    }
    let best = scores.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1));
    match best {
        Some((lang, score)) if score > 0.0 => lang,
        // Latin script with no profile hits (or an empty score table):
        // default to English, the overwhelmingly dominant language of the
        // corpus (82.7% in Table 3).
        _ => Language::English,
    }
}

/// The function-word profile of a Latin-script language (empty for others).
///
/// Exposed so that the synthetic corpus generator (`pmr-sim`) can seed its
/// language models with the same words the detector keys on, mirroring how a
/// real detector's profile reflects real usage frequencies.
pub fn function_words(lang: Language) -> &'static [&'static str] {
    FUNCTION_WORDS.iter().find(|&&(l, _)| l == lang).map_or(&[], |&(_, w)| w)
}

/// The signature diacritics of a Latin-script language (empty for others).
pub fn signature_chars(lang: Language) -> &'static [char] {
    SIGNATURE_CHARS.iter().find(|&&(l, _)| l == lang).map_or(&[], |&(_, c)| c)
}

fn bump(scores: &mut [(Language, f64)], lang: Language, by: f64) {
    if let Some(entry) = scores.iter_mut().find(|(l, _)| *l == lang) {
        entry.1 += by;
    }
}

/// Detect the dominant language of a pooled set of texts (the paper pools
/// per user before detecting, §4).
pub fn detect_dominant<'a, I>(texts: I) -> Language
where
    I: IntoIterator<Item = &'a str>,
{
    use std::collections::HashMap;
    let mut votes: HashMap<Language, usize> = HashMap::new();
    for t in texts {
        *votes.entry(detect_language(t)).or_insert(0) += 1;
    }
    votes
        .into_iter()
        .max_by_key(|&(lang, n)| (n, std::cmp::Reverse(lang)))
        .map(|(lang, _)| lang)
        .unwrap_or(Language::Other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_scripts() {
        assert_eq!(detect_language("これはテストです"), Language::Japanese);
        assert_eq!(detect_language("这是一个测试"), Language::Chinese);
        assert_eq!(detect_language("이것은 테스트입니다"), Language::Korean);
        assert_eq!(detect_language("นี่คือการทดสอบ"), Language::Thai);
    }

    #[test]
    fn japanese_wins_over_chinese_when_kana_present() {
        // Kanji-heavy Japanese sentence with some kana.
        assert_eq!(detect_language("日本語の文章を書いています"), Language::Japanese);
    }

    #[test]
    fn detects_latin_languages() {
        assert_eq!(detect_language("the cat sat on the mat and looked at you"), Language::English);
        assert_eq!(detect_language("não sei o que você quer dizer com isso"), Language::Portuguese);
        assert_eq!(detect_language("le chat est dans la maison près des arbres"), Language::French);
        assert_eq!(detect_language("der hund und die katze sind nicht hier"), Language::German);
        assert_eq!(
            detect_language("aku tidak tahu yang kamu maksud dengan itu"),
            Language::Indonesian
        );
        assert_eq!(
            detect_language("el perro ladra por la noche ¿por qué será?"),
            Language::Spanish
        );
    }

    #[test]
    fn empty_or_symbolic_text_is_other() {
        assert_eq!(detect_language(""), Language::Other);
        assert_eq!(detect_language("12345 !!! ???"), Language::Other);
    }

    #[test]
    fn bare_latin_defaults_to_english() {
        assert_eq!(detect_language("zxqwv blorp klam"), Language::English);
    }

    #[test]
    fn dominant_language_pools_votes() {
        let texts = ["the cat and the dog", "the end is near", "これはテスト"];
        assert_eq!(detect_dominant(texts.iter().copied()), Language::English);
    }

    #[test]
    fn table3_has_ten_languages() {
        assert_eq!(Language::TABLE3.len(), 10);
        assert_eq!(Language::TABLE3[0], Language::English);
    }

    #[test]
    fn space_usage_matches_challenge_c3() {
        assert!(!Language::Chinese.uses_spaces());
        assert!(!Language::Japanese.uses_spaces());
        assert!(!Language::Thai.uses_spaces());
        assert!(Language::Korean.uses_spaces());
        assert!(Language::English.uses_spaces());
    }
}
