//! Tweet cleaning for language detection.
//!
//! Before detecting languages, the paper "cleaned all tweets from hashtags,
//! mentions, URLs and emoticons in order to reduce the noise of non-English
//! tweets" (§4). This module implements that cleaning step on top of the
//! tokenizer: only [`crate::token::TokenKind::Word`] tokens survive, joined
//! by single spaces.

use crate::token::{TokenKind, Tokenizer};

/// Strip hashtags, mentions, URLs and emoticons from a tweet, returning the
/// remaining words joined by spaces.
pub fn clean_for_language_detection(text: &str) -> String {
    clean_with(&Tokenizer::default(), text)
}

/// Like [`clean_for_language_detection`] but reusing a caller-owned
/// tokenizer (useful in hot loops over large corpora).
pub fn clean_with(tokenizer: &Tokenizer, text: &str) -> String {
    let tokens = tokenizer.tokenize(text);
    let mut out = String::with_capacity(text.len());
    for t in tokens {
        if t.kind == TokenKind::Word {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&t.text);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_twitter_markup() {
        let cleaned =
            clean_for_language_detection("@alice check http://t.co/x #cool :) amazing stuff");
        assert_eq!(cleaned, "check amazing stuff");
    }

    #[test]
    fn plain_text_survives_lowercased() {
        assert_eq!(clean_for_language_detection("Hello World"), "hello world");
    }

    #[test]
    fn all_markup_yields_empty() {
        assert_eq!(clean_for_language_detection("@a #b http://c :)"), "");
    }

    #[test]
    fn non_latin_words_survive() {
        assert_eq!(clean_for_language_detection("日本語 #tag"), "日本語");
    }
}
