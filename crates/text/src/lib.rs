//! # pmr-text
//!
//! Language-agnostic text substrate for content-based personalized microblog
//! recommendation (PMR).
//!
//! This crate implements the pre-processing pipeline described in §4 of
//! *"Comparative Analysis of Content-based Personalized Microblog
//! Recommendations"* (EDBT 2019):
//!
//! * lower-casing of all training and testing tweets,
//! * tokenization on white space and punctuation that keeps URLs, hashtags,
//!   mentions and emoticons together as single tokens ([`token`]),
//! * squeezing of repeated letters (emphatic lengthening, challenge C4),
//! * removal of the corpus-level most frequent tokens as stop words
//!   ([`vocab`]),
//! * character and token n-gram extraction shared by the bag and graph
//!   representation models ([`ngram`]),
//! * emoticon classification used by the Labeled-LDA labeler ([`emoticon`]),
//! * script/language detection used to regenerate the language-distribution
//!   table of the paper ([`lang`]), and
//! * tweet cleaning (hashtag/mention/URL/emoticon stripping) that precedes
//!   language detection ([`clean`]).
//!
//! No language-specific processing (stemming, lemmatization, POS tagging) is
//! performed anywhere: the paper's corpus is multilingual (challenge C3) and
//! its methodology is deliberately language-agnostic.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod clean;
pub mod emoticon;
pub mod lang;
pub mod ngram;
pub mod token;
pub mod vocab;

pub use emoticon::{classify_emoticon, EmoticonClass};
pub use lang::{detect_language, Language};
pub use ngram::{char_ngrams, token_ngrams};
pub use token::{tokenize, Token, TokenKind, Tokenizer, TokenizerOptions};
pub use vocab::{StopWords, Vocabulary};
