//! Vocabulary interning and corpus-level stop-word removal.
//!
//! The paper removes the 100 most frequent tokens across all *training*
//! tweets, "as they practically correspond to stop words" (§4) — a
//! language-agnostic alternative to stop-word lists, which would be
//! impossible for a multilingual corpus. [`StopWords`] implements exactly
//! that rule; [`Vocabulary`] is the shared string-interning table used by
//! every representation model so that n-grams and tokens are compared as
//! dense `u32` ids rather than strings.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A compact interned identifier for a token or n-gram.
pub type TermId = u32;

/// A bidirectional string ↔ id table with occurrence counts.
///
/// Ids are assigned densely in first-seen order, so they can index into
/// `Vec`-backed side tables (document frequencies, topic counts, …).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    map: HashMap<String, TermId>,
    terms: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, incrementing its occurrence count.
    pub fn add(&mut self, term: &str) -> TermId {
        match self.map.get(term) {
            Some(&id) => {
                self.counts[id as usize] += 1;
                id
            }
            None => {
                let id = self.terms.len() as TermId;
                self.map.insert(term.to_owned(), id);
                self.terms.push(term.to_owned());
                self.counts.push(1);
                id
            }
        }
    }

    /// Intern `term` without counting an occurrence (lookup-or-create).
    pub fn intern(&mut self, term: &str) -> TermId {
        match self.map.get(term) {
            Some(&id) => id,
            None => {
                let id = self.terms.len() as TermId;
                self.map.insert(term.to_owned(), id);
                self.terms.push(term.to_owned());
                self.counts.push(0);
                id
            }
        }
    }

    /// Look up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// The surface form of an id. Panics on an id not issued by this table.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Total occurrences recorded for an id.
    pub fn count(&self, id: TermId) -> u64 {
        self.counts[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Ids of the `k` most frequent terms (ties broken by first-seen order,
    /// which makes the result deterministic).
    pub fn top_k(&self, k: usize) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.terms.len() as TermId).collect();
        ids.sort_by_key(|&id| (std::cmp::Reverse(self.counts[id as usize]), id));
        ids.truncate(k);
        ids
    }

    /// Iterate over `(id, term, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u64)> {
        self.terms.iter().enumerate().map(move |(i, t)| (i as TermId, t.as_str(), self.counts[i]))
    }
}

/// The corpus-level stop-word filter of the paper: the `k` most frequent
/// tokens across all training tweets (k = 100 in the paper).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StopWords {
    words: std::collections::HashSet<String>,
}

impl StopWords {
    /// Number of stop tokens the paper removes.
    pub const PAPER_K: usize = 100;

    /// Build the filter from an iterator over *all training tokens* (with
    /// repetition), keeping the `k` most frequent as stop words.
    pub fn from_token_stream<'a, I>(tokens: I, k: usize) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut vocab = Vocabulary::new();
        for t in tokens {
            vocab.add(t);
        }
        Self::from_vocabulary(&vocab, k)
    }

    /// Build the filter from a pre-counted vocabulary.
    pub fn from_vocabulary(vocab: &Vocabulary, k: usize) -> Self {
        let words = vocab.top_k(k).into_iter().map(|id| vocab.term(id).to_owned()).collect();
        StopWords { words }
    }

    /// Whether `token` is a stop word.
    pub fn contains(&self, token: &str) -> bool {
        self.words.contains(token)
    }

    /// Number of stop words (≤ k; fewer if the corpus is tiny).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Filter a token sequence in place, dropping stop words.
    pub fn filter(&self, tokens: &mut Vec<String>) {
        tokens.retain(|t| !self.contains(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.add("apple");
        let b = v.add("banana");
        let a2 = v.add("apple");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.term(a), "apple");
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn intern_does_not_count() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        assert_eq!(v.count(a), 0);
        v.add("apple");
        assert_eq!(v.count(a), 1);
    }

    #[test]
    fn top_k_orders_by_frequency_then_first_seen() {
        let mut v = Vocabulary::new();
        for _ in 0..3 {
            v.add("the");
        }
        for _ in 0..3 {
            v.add("a");
        }
        v.add("rare");
        let top = v.top_k(2);
        assert_eq!(v.term(top[0]), "the"); // tie with "a" broken by id order
        assert_eq!(v.term(top[1]), "a");
    }

    #[test]
    fn top_k_truncates_to_vocab_size() {
        let mut v = Vocabulary::new();
        v.add("only");
        assert_eq!(v.top_k(100).len(), 1);
    }

    #[test]
    fn stopwords_remove_most_frequent() {
        let stream = ["the", "the", "the", "cat", "sat", "the", "mat", "cat"];
        let sw = StopWords::from_token_stream(stream, 2);
        assert!(sw.contains("the"));
        assert!(sw.contains("cat"));
        assert!(!sw.contains("mat"));
        let mut toks = vec!["the".to_owned(), "mat".to_owned(), "cat".to_owned()];
        sw.filter(&mut toks);
        assert_eq!(toks, vec!["mat".to_owned()]);
    }

    #[test]
    fn paper_k_is_one_hundred() {
        assert_eq!(StopWords::PAPER_K, 100);
    }

    #[test]
    fn vocabulary_iter_roundtrip() {
        let mut v = Vocabulary::new();
        v.add("x");
        v.add("y");
        v.add("x");
        let collected: Vec<(TermId, String, u64)> =
            v.iter().map(|(i, t, c)| (i, t.to_owned(), c)).collect();
        assert_eq!(collected, vec![(0, "x".to_owned(), 2), (1, "y".to_owned(), 1)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Interning the same string twice always yields the same id, and
        /// `term` inverts `add`.
        #[test]
        fn intern_roundtrip(words in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
            let mut v = Vocabulary::new();
            let ids: Vec<TermId> = words.iter().map(|w| v.add(w)).collect();
            for (w, id) in words.iter().zip(&ids) {
                prop_assert_eq!(v.term(*id), w.as_str());
                prop_assert_eq!(v.get(w), Some(*id));
            }
        }

        /// Total counts equal the stream length.
        #[test]
        fn counts_sum_to_stream_len(words in proptest::collection::vec("[a-z]{1,4}", 0..100)) {
            let mut v = Vocabulary::new();
            for w in &words {
                v.add(w);
            }
            let total: u64 = v.iter().map(|(_, _, c)| c).sum();
            prop_assert_eq!(total, words.len() as u64);
        }

        /// Stop-word filtering never removes non-top-k tokens' order.
        #[test]
        fn stopword_filter_preserves_order(words in proptest::collection::vec("[a-z]{1,3}", 0..60), k in 0usize..5) {
            let sw = StopWords::from_token_stream(words.iter().map(|s| s.as_str()), k);
            let mut filtered = words.clone();
            sw.filter(&mut filtered);
            // filtered is a subsequence of words
            let mut it = words.iter();
            for f in &filtered {
                prop_assert!(it.any(|w| w == f));
            }
            prop_assert!(sw.len() <= k);
        }
    }
}
