//! Tokenization of microblog posts.
//!
//! The tokenizer follows the protocol of the paper's experimental setup (§4):
//! the raw text is lower-cased, then split on white space and punctuation,
//! while URLs, hashtags, mentions and emoticons are kept together as single
//! tokens. Runs of repeated letters are squeezed to dampen emphatic
//! lengthening ("yeeees" → "yees", challenge C4).
//!
//! Tokenization is purely character-class based and therefore language
//! agnostic. Scripts that do not separate words with spaces (Chinese,
//! Japanese, Thai — challenge C3) surface as long `Word` tokens; the
//! character-based representation models are the ones equipped to deal with
//! those, exactly as in the paper.

use serde::{Deserialize, Serialize};

use crate::emoticon;

/// The lexical class of a token.
///
/// The class matters in two places: the Labeled-LDA labeler assigns labels
/// from hashtags, mentions and emoticons, and the cleaning step that precedes
/// language detection drops everything that is not a [`TokenKind::Word`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// An ordinary word (any script).
    Word,
    /// A `#hashtag` token, kept whole including the leading `#`.
    Hashtag,
    /// A `@mention` token, kept whole including the leading `@`.
    Mention,
    /// A URL (`http://…` or `https://…` or `www.…`), kept whole.
    Url,
    /// An emoticon such as `:)` or `:-(`.
    Emoticon,
}

/// A token produced by the [`Tokenizer`]: its surface text (already
/// lower-cased and squeezed) plus its lexical class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// Normalized surface form.
    pub text: String,
    /// Lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Convenience constructor used pervasively in tests.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token { text: text.into(), kind }
    }

    /// Shorthand for a plain [`TokenKind::Word`] token.
    pub fn word(text: impl Into<String>) -> Self {
        Token::new(text, TokenKind::Word)
    }
}

/// Options controlling tokenization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenizerOptions {
    /// Maximum length of a run of identical letters that survives squeezing.
    /// The paper squeezes repeated letters; we keep doubles by default so
    /// legitimate words like "good" are unharmed while "goooood" becomes
    /// "good".
    pub max_letter_run: usize,
    /// Whether to lower-case the input before tokenizing (the paper always
    /// does; exposed for testing and ablations).
    pub lowercase: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        TokenizerOptions { max_letter_run: 2, lowercase: true }
    }
}

/// A reusable tokenizer.
///
/// The tokenizer holds no corpus state (stop-word removal is a separate,
/// corpus-level step in [`crate::vocab`]), so a single instance can be shared
/// freely across threads.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    opts: TokenizerOptions,
}

impl Tokenizer {
    /// Create a tokenizer with the given options.
    pub fn new(opts: TokenizerOptions) -> Self {
        Tokenizer { opts }
    }

    /// Tokenize a raw tweet into normalized tokens.
    pub fn tokenize(&self, text: &str) -> Vec<Token> {
        let lowered;
        let text = if self.opts.lowercase {
            lowered = text.to_lowercase();
            &lowered
        } else {
            text
        };
        let mut tokens = Vec::new();
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            // URLs: http://, https://, www.
            if let Some(end) = match_url(&chars, i) {
                tokens.push(Token::new(collect(&chars, i, end), TokenKind::Url));
                i = end;
                continue;
            }
            // Hashtags and mentions: marker followed by word characters.
            if (c == '#' || c == '@') && i + 1 < chars.len() && is_word_char(chars[i + 1]) {
                let mut end = i + 1;
                while end < chars.len() && is_word_char(chars[end]) {
                    end += 1;
                }
                let kind = if c == '#' { TokenKind::Hashtag } else { TokenKind::Mention };
                tokens.push(Token::new(collect(&chars, i, end), kind));
                i = end;
                continue;
            }
            // Emoticons: longest match from the lexicon.
            if let Some(end) = emoticon::match_emoticon(&chars, i) {
                tokens.push(Token::new(collect(&chars, i, end), TokenKind::Emoticon));
                i = end;
                continue;
            }
            // Plain words: maximal run of word characters.
            if is_word_char(c) {
                let mut end = i;
                while end < chars.len() && is_word_char(chars[end]) {
                    end += 1;
                }
                let word = squeeze(&chars[i..end], self.opts.max_letter_run);
                tokens.push(Token::new(word, TokenKind::Word));
                i = end;
                continue;
            }
            // Any other punctuation separates tokens and is dropped.
            i += 1;
        }
        tokens
    }
}

/// Tokenize with default options (lower-cased, letter runs squeezed to 2).
pub fn tokenize(text: &str) -> Vec<Token> {
    Tokenizer::default().tokenize(text)
}

fn collect(chars: &[char], start: usize, end: usize) -> String {
    chars[start..end].iter().collect()
}

/// A character that may appear inside a word, hashtag or mention.
/// Underscores are included because Twitter usernames and hashtags use them.
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// Squeeze runs of identical characters longer than `max_run` down to
/// `max_run` occurrences.
fn squeeze(chars: &[char], max_run: usize) -> String {
    debug_assert!(max_run >= 1);
    let mut out = String::with_capacity(chars.len());
    let mut run_char = None;
    let mut run_len = 0usize;
    for &c in chars {
        if Some(c) == run_char {
            run_len += 1;
        } else {
            run_char = Some(c);
            run_len = 1;
        }
        if run_len <= max_run {
            out.push(c);
        }
    }
    out
}

/// Try to match a URL starting at `start`; returns the exclusive end index.
fn match_url(chars: &[char], start: usize) -> Option<usize> {
    const PREFIXES: [&str; 3] = ["http://", "https://", "www."];
    let rest: String = chars[start..].iter().take(8).collect();
    if !PREFIXES.iter().any(|p| rest.starts_with(p)) {
        return None;
    }
    let mut end = start;
    while end < chars.len() && !chars[end].is_whitespace() {
        end += 1;
    }
    // Trim trailing punctuation that commonly ends a sentence after a URL.
    while end > start && matches!(chars[end - 1], '.' | ',' | ')' | '!' | '?' | ';' | ':') {
        end -= 1;
    }
    Some(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(words("Bob sues Jim."), vec!["bob", "sues", "jim"]);
        assert_eq!(words("one,two;three"), vec!["one", "two", "three"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(words("HeLLo WoRLD"), vec!["hello", "world"]);
    }

    #[test]
    fn keeps_hashtags_whole() {
        let toks = tokenize("great talk at #edbt today");
        let tag = toks.iter().find(|t| t.kind == TokenKind::Hashtag).unwrap();
        assert_eq!(tag.text, "#edbt");
    }

    #[test]
    fn keeps_mentions_whole() {
        let toks = tokenize("@alice did you see this?");
        assert_eq!(toks[0], Token::new("@alice", TokenKind::Mention));
    }

    #[test]
    fn keeps_urls_whole() {
        let toks = tokenize("read this http://example.com/a?b=1 now");
        let url = toks.iter().find(|t| t.kind == TokenKind::Url).unwrap();
        assert_eq!(url.text, "http://example.com/a?b=1");
    }

    #[test]
    fn url_trailing_punctuation_is_trimmed() {
        let toks = tokenize("see www.example.com.");
        let url = toks.iter().find(|t| t.kind == TokenKind::Url).unwrap();
        assert_eq!(url.text, "www.example.com");
    }

    #[test]
    fn detects_emoticons() {
        let toks = tokenize("love it :) so much");
        let emo = toks.iter().find(|t| t.kind == TokenKind::Emoticon).unwrap();
        assert_eq!(emo.text, ":)");
    }

    #[test]
    fn squeezes_emphatic_lengthening() {
        assert_eq!(words("yeeeeees"), vec!["yees"]);
        assert_eq!(words("good"), vec!["good"]); // doubles survive
        assert_eq!(words("goooood"), vec!["good"]);
    }

    #[test]
    fn squeeze_to_one_when_configured() {
        let t = Tokenizer::new(TokenizerOptions { max_letter_run: 1, lowercase: true });
        let toks = t.tokenize("yeeees good");
        assert_eq!(toks[0].text, "yes");
        assert_eq!(toks[1].text, "god");
    }

    #[test]
    fn bare_marker_characters_are_dropped() {
        assert_eq!(words("# @ !"), Vec::<String>::new());
    }

    #[test]
    fn handles_non_latin_scripts() {
        let toks = tokenize("日本語のツイート test");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[1].text, "test");
    }

    #[test]
    fn apostrophes_stay_inside_words() {
        assert_eq!(words("don't stop"), vec!["don't", "stop"]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn mention_first_word_position_is_observable() {
        let toks = tokenize("@bob thanks for the follow");
        assert_eq!(toks[0].kind, TokenKind::Mention);
    }

    #[test]
    fn mixed_tweet_roundtrip() {
        let toks = tokenize("RT @carol: soooo cool!! :-) http://t.co/xyz #wow");
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Word,     // rt
                TokenKind::Mention,  // @carol
                TokenKind::Word,     // soo
                TokenKind::Word,     // cool
                TokenKind::Emoticon, // :-)
                TokenKind::Url,      // http://t.co/xyz
                TokenKind::Hashtag,  // #wow
            ]
        );
        assert_eq!(toks[2].text, "soo");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tokenizer never panics and always lower-cases ASCII.
        #[test]
        fn tokenizer_is_total(text in "\\PC{0,120}") {
            for t in tokenize(&text) {
                prop_assert!(!t.text.is_empty());
                prop_assert!(!t.text.chars().any(|c| c.is_ascii_uppercase()));
            }
        }

        /// Squeezing leaves no letter run longer than the configured cap in
        /// plain words.
        #[test]
        fn squeezing_bounds_runs(word in "[a-z]{1,30}") {
            let toks = tokenize(&word);
            prop_assert_eq!(toks.len(), 1);
            let chars: Vec<char> = toks[0].text.chars().collect();
            let mut run = 1;
            for w in chars.windows(2) {
                if w[0] == w[1] {
                    run += 1;
                    prop_assert!(run <= 2, "run of {} in {}", run, toks[0].text);
                } else {
                    run = 1;
                }
            }
        }

        /// Hashtags and mentions survive tokenization verbatim.
        #[test]
        fn markup_tokens_survive(tag in "[a-z][a-z0-9_]{0,10}") {
            let text = format!("#{tag} and @{tag} talk");
            let toks = tokenize(&text);
            let want = format!("#{tag}");
            prop_assert!(toks.iter().any(|t| t.kind == TokenKind::Hashtag && t.text == want));
            let want = format!("@{tag}");
            prop_assert!(toks.iter().any(|t| t.kind == TokenKind::Mention && t.text == want));
        }

        /// Tokens contain no whitespace, so n-gram joining is unambiguous.
        #[test]
        fn tokens_are_whitespace_free(text in "\\PC{0,120}") {
            for t in tokenize(&text) {
                prop_assert!(!t.text.chars().any(char::is_whitespace), "{:?}", t.text);
            }
        }
    }
}
