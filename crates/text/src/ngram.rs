//! Character and token n-gram extraction.
//!
//! Both the bag models (TN, CN) and the n-gram graph models (TNG, CNG) of the
//! paper operate on n-grams (§3). Token n-grams are sequences of `n`
//! consecutive tokens of a tokenized tweet; character n-grams are sequences
//! of `n` consecutive characters of the *raw* (lower-cased) text, which makes
//! them robust to noise and applicable to scripts without word separators
//! (challenges C2–C4).
//!
//! N-grams are ordered: the bigram `"ab"` differs from `"ba"` (local
//! context). The graph models additionally record which n-grams co-occur
//! within a window — that part lives in `pmr-graph`; this module only
//! enumerates the grams and their positions.

/// Extract character n-grams from raw text.
///
/// Whitespace runs are collapsed to a single space so that formatting does
/// not manufacture distinct grams; the text is otherwise used verbatim
/// (character models deliberately see URLs, hashtags and punctuation).
///
/// Returns the grams in order of appearance; the position of a gram is its
/// index in the returned vector, which is what the graph models use for
/// windowed co-occurrence.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let normalized = normalize_whitespace(text);
    let chars: Vec<char> = normalized.chars().collect();
    if chars.len() < n {
        return Vec::new();
    }
    (0..=chars.len() - n).map(|i| chars[i..i + n].iter().collect()).collect()
}

/// Extract token n-grams from a token sequence.
///
/// Grams are joined with a single space, which cannot occur inside a token,
/// so the mapping from token sequence to gram string is injective.
pub fn token_ngrams<S: AsRef<str>>(tokens: &[S], n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    if tokens.len() < n {
        return Vec::new();
    }
    (0..=tokens.len() - n)
        .map(|i| {
            let mut s = String::new();
            for (k, t) in tokens[i..i + n].iter().enumerate() {
                if k > 0 {
                    s.push(' ');
                }
                s.push_str(t.as_ref());
            }
            s
        })
        .collect()
}

fn normalize_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_ws = true; // also trims leading whitespace
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_ws {
                out.push(' ');
                last_ws = true;
            }
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_bigrams() {
        assert_eq!(char_ngrams("abc", 2), vec!["ab", "bc"]);
    }

    #[test]
    fn char_ngrams_shorter_than_n() {
        assert!(char_ngrams("ab", 3).is_empty());
        assert!(char_ngrams("", 2).is_empty());
    }

    #[test]
    fn char_ngrams_collapse_whitespace() {
        assert_eq!(char_ngrams("a  b", 2), char_ngrams("a b", 2));
        assert_eq!(char_ngrams("  ab  ", 2), vec!["ab"]);
    }

    #[test]
    fn char_ngrams_order_sensitive() {
        // "ab" and "ba" are distinct grams (local context, §3.1).
        let grams = char_ngrams("aba", 2);
        assert_eq!(grams, vec!["ab", "ba"]);
    }

    #[test]
    fn char_ngrams_multibyte() {
        let grams = char_ngrams("日本語", 2);
        assert_eq!(grams, vec!["日本", "本語"]);
    }

    #[test]
    fn token_unigrams_are_the_tokens() {
        let toks = ["bob", "sues", "jim"];
        assert_eq!(token_ngrams(&toks, 1), vec!["bob", "sues", "jim"]);
    }

    #[test]
    fn token_bigrams_preserve_order() {
        let toks = ["bob", "sues", "jim"];
        assert_eq!(token_ngrams(&toks, 2), vec!["bob sues", "sues jim"]);
        let rev = ["jim", "sues", "bob"];
        assert_ne!(token_ngrams(&toks, 2), token_ngrams(&rev, 2));
    }

    #[test]
    fn token_ngrams_shorter_than_n() {
        let toks = ["one"];
        assert!(token_ngrams(&toks, 2).is_empty());
    }

    #[test]
    fn gram_count_is_len_minus_n_plus_one() {
        for n in 1..=4 {
            let text = "abcdefgh";
            assert_eq!(char_ngrams(text, n).len(), text.len() - n + 1);
        }
    }
}
