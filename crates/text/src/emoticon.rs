//! Emoticon lexicon and classification.
//!
//! The Labeled-LDA configuration of the paper (§4, following Ramage et al.
//! 2010) uses nine categories of emoticons as tweet labels: *smile*, *frown*,
//! *wink*, *big grin*, *heart*, *surprise*, *awkward*, *confused* and *laugh*.
//! This module provides the lexicon used both by the tokenizer (to keep
//! emoticons together as single tokens) and by the labeler (to map an
//! emoticon to its category).

use serde::{Deserialize, Serialize};

/// The nine emoticon categories used as Labeled-LDA labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EmoticonClass {
    Smile,
    Frown,
    Wink,
    BigGrin,
    Heart,
    Surprise,
    Awkward,
    Confused,
    Laugh,
}

impl EmoticonClass {
    /// All categories, in a stable order.
    pub const ALL: [EmoticonClass; 9] = [
        EmoticonClass::Smile,
        EmoticonClass::Frown,
        EmoticonClass::Wink,
        EmoticonClass::BigGrin,
        EmoticonClass::Heart,
        EmoticonClass::Surprise,
        EmoticonClass::Awkward,
        EmoticonClass::Confused,
        EmoticonClass::Laugh,
    ];

    /// Canonical lower-case name, used to derive Labeled-LDA label strings.
    pub fn name(self) -> &'static str {
        match self {
            EmoticonClass::Smile => "smile",
            EmoticonClass::Frown => "frown",
            EmoticonClass::Wink => "wink",
            EmoticonClass::BigGrin => "big_grin",
            EmoticonClass::Heart => "heart",
            EmoticonClass::Surprise => "surprise",
            EmoticonClass::Awkward => "awkward",
            EmoticonClass::Confused => "confused",
            EmoticonClass::Laugh => "laugh",
        }
    }

    /// Whether the paper assigns 10 frequency variations to this category's
    /// label (§4: the emoticons *big grin*, *heart*, *surprise* and
    /// *confused* carry no variations; the rest do).
    pub fn has_variations(self) -> bool {
        !matches!(
            self,
            EmoticonClass::BigGrin
                | EmoticonClass::Heart
                | EmoticonClass::Surprise
                | EmoticonClass::Confused
        )
    }
}

/// The emoticon lexicon: surface form → category.
///
/// Longest-match entries must come first within a shared prefix; the matcher
/// below tries longer forms before shorter ones regardless of order, so the
/// table order is purely cosmetic.
const LEXICON: &[(&str, EmoticonClass)] = &[
    (":-)", EmoticonClass::Smile),
    (":)", EmoticonClass::Smile),
    ("(-:", EmoticonClass::Smile),
    ("(:", EmoticonClass::Smile),
    ("=)", EmoticonClass::Smile),
    (":-(", EmoticonClass::Frown),
    (":(", EmoticonClass::Frown),
    (")-:", EmoticonClass::Frown),
    ("):", EmoticonClass::Frown),
    ("=(", EmoticonClass::Frown),
    (";-)", EmoticonClass::Wink),
    (";)", EmoticonClass::Wink),
    (":-d", EmoticonClass::BigGrin),
    (":d", EmoticonClass::BigGrin),
    ("=d", EmoticonClass::BigGrin),
    ("<3", EmoticonClass::Heart),
    (":-o", EmoticonClass::Surprise),
    (":o", EmoticonClass::Surprise),
    (":-/", EmoticonClass::Awkward),
    (":/", EmoticonClass::Awkward),
    (":-\\", EmoticonClass::Awkward),
    (":\\", EmoticonClass::Awkward),
    (":-s", EmoticonClass::Confused),
    (":s", EmoticonClass::Confused),
    (":-|", EmoticonClass::Confused),
    (":'(", EmoticonClass::Frown),
    ("xd", EmoticonClass::Laugh),
    ("x-d", EmoticonClass::Laugh),
    (":p", EmoticonClass::Laugh),
    (":-p", EmoticonClass::Laugh),
];

/// Longest emoticon length in characters, bounding the match window.
const MAX_LEN: usize = 3;

/// Try to match an emoticon starting at `start` in `chars` (already
/// lower-cased). Returns the exclusive end index of the longest match.
///
/// An emoticon whose surface form *starts* with a letter (`xd`) requires a
/// token boundary before it, and one that *ends* with a letter or digit
/// (`:d`, `<3`) requires a boundary after it; this keeps words like
/// "xdocument" and prefixes like ":dog" intact, while punctuation-delimited
/// emoticons such as `:)` may directly follow a word ("cool:)").
pub fn match_emoticon(chars: &[char], start: usize) -> Option<usize> {
    let preceded_by_word = start > 0 && chars[start - 1].is_alphanumeric();
    let window: String = chars[start..].iter().take(MAX_LEN).collect();
    let mut best: Option<usize> = None;
    for (surface, _) in LEXICON {
        if window.starts_with(surface) {
            let end = start + surface.chars().count();
            let first_alnum = surface.chars().next().is_some_and(|c| c.is_alphanumeric());
            let last_alnum = surface.chars().last().is_some_and(|c| c.is_alphanumeric());
            if first_alnum && preceded_by_word {
                continue;
            }
            if last_alnum && end < chars.len() && chars[end].is_alphanumeric() {
                continue;
            }
            best = Some(best.map_or(end, |b: usize| b.max(end)));
        }
    }
    best
}

/// Classify a full token as an emoticon, if it is one.
pub fn classify_emoticon(token: &str) -> Option<EmoticonClass> {
    LEXICON.iter().find(|(s, _)| *s == token).map(|&(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_basics() {
        assert_eq!(classify_emoticon(":)"), Some(EmoticonClass::Smile));
        assert_eq!(classify_emoticon(":-("), Some(EmoticonClass::Frown));
        assert_eq!(classify_emoticon(";)"), Some(EmoticonClass::Wink));
        assert_eq!(classify_emoticon(":d"), Some(EmoticonClass::BigGrin));
        assert_eq!(classify_emoticon("<3"), Some(EmoticonClass::Heart));
        assert_eq!(classify_emoticon(":o"), Some(EmoticonClass::Surprise));
        assert_eq!(classify_emoticon(":/"), Some(EmoticonClass::Awkward));
        assert_eq!(classify_emoticon(":s"), Some(EmoticonClass::Confused));
        assert_eq!(classify_emoticon("xd"), Some(EmoticonClass::Laugh));
        assert_eq!(classify_emoticon("hello"), None);
    }

    #[test]
    fn nine_categories() {
        assert_eq!(EmoticonClass::ALL.len(), 9);
    }

    #[test]
    fn longest_match_wins() {
        let chars: Vec<char> = ":-) yes".chars().collect();
        assert_eq!(match_emoticon(&chars, 0), Some(3));
    }

    #[test]
    fn no_match_inside_words() {
        // "xd" inside "xdocument" must not match.
        let chars: Vec<char> = "xdocument".chars().collect();
        assert_eq!(match_emoticon(&chars, 0), None);
        // ":d" followed by letters must not match either.
        let chars: Vec<char> = ":dog".chars().collect();
        assert_eq!(match_emoticon(&chars, 0), None);
    }

    #[test]
    fn punctuation_emoticon_may_follow_a_word() {
        let chars: Vec<char> = "ab:)".chars().collect();
        assert_eq!(match_emoticon(&chars, 2), Some(4));
    }

    #[test]
    fn letter_initial_emoticon_needs_leading_boundary() {
        let chars: Vec<char> = "a xd b".chars().collect();
        assert_eq!(match_emoticon(&chars, 2), Some(4));
        let glued: Vec<char> = "axd".chars().collect();
        assert_eq!(match_emoticon(&glued, 1), None);
    }

    #[test]
    fn variation_rules_match_the_paper() {
        assert!(EmoticonClass::Smile.has_variations());
        assert!(EmoticonClass::Frown.has_variations());
        assert!(!EmoticonClass::BigGrin.has_variations());
        assert!(!EmoticonClass::Heart.has_variations());
        assert!(!EmoticonClass::Surprise.has_variations());
        assert!(!EmoticonClass::Confused.has_variations());
    }
}
