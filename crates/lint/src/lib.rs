#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
//! # pmr-lint
//!
//! A standalone static-analysis tool enforcing the workspace's determinism
//! and correctness invariants. PR 1 made byte-identical sweep output for
//! any `--jobs N` the repo's headline guarantee; this crate is the machine
//! check that keeps it true as the system grows threaded serving code.
//!
//! The v2 pipeline is a small multi-pass analyzer (no `syn` — the vendor
//! tree is offline-only):
//!
//! 1. **lex** ([`lexer`]) — a loss-tolerant hand-rolled lexer; unknown
//!    constructs degrade to punctuation, never to a crash;
//! 2. **parse** ([`parse`]) — item-level recovery of `fn` items, `impl`
//!    self types, struct fields and call expressions;
//! 3. **call graph** ([`callgraph`]) — conservative, name-based
//!    intra-workspace resolution;
//! 4. **passes** — the per-file token rules ([`rules`]), the concurrency
//!    pass ([`conc`]: `blocking-under-lock`, `lock-order-cycle`,
//!    `channel-cycle`) and the determinism-taint pass ([`taint`]:
//!    `nondet-flow`).
//!
//! [`rules::REGISTRY`] is the rule catalog; the README's "Static analysis
//! & determinism policy" section describes how and when to suppress.
//! Run it with `cargo run -p pmr-lint -- --deny-all` (CI does).

pub mod callgraph;
pub mod conc;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod taint;

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::callgraph::CallGraph;
use crate::lexer::{lex, Lexed};
use crate::parse::ParsedFile;
use crate::suppress::parse_suppressions;

pub use rules::{Finding, Rule, RuleKind, REGISTRY};

/// Directories never scanned: vendored stand-ins, build output, VCS
/// internals, result artifacts, and the linter's own deliberately-violating
/// fixtures.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", "results", "fixtures"];

/// One file, lexed and parsed — the unit the passes consume.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// The raw token stream and comments.
    pub lexed: Lexed,
    /// Item structure recovered by [`parse::parse`].
    pub parsed: ParsedFile,
    /// Identifiers known to be `HashMap`s/`HashSet`s, sorted for binary
    /// search.
    pub hash_idents: Vec<String>,
}

/// Lex and parse one source file.
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let parsed = parse::parse(rel_path, &lexed.toks);
    let hash_idents = rules::find_hash_idents(&lexed.toks);
    FileAnalysis { rel_path: rel_path.to_owned(), lexed, parsed, hash_idents }
}

/// One justified `allow(...)` directive's location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AllowSite {
    /// Workspace-relative path of the file carrying the directive.
    pub path: String,
    /// 1-based line of the directive comment.
    pub line: u32,
}

/// The full result of a lint run: surviving findings plus the allow audit.
#[derive(Debug, Serialize)]
pub struct LintReport {
    /// Findings after suppression, sorted by (path, line, rule, col).
    pub findings: Vec<Finding>,
    /// rule name → every justified allow of that rule, in path order. The
    /// audit trail: `--deny-all` passing means *this* is the complete list
    /// of places the workspace overrides the linter.
    pub allows: BTreeMap<String, Vec<AllowSite>>,
}

/// Run the whole pipeline — per-file token rules, suppression parsing, the
/// workspace flow passes — over a set of analyzed files.
pub fn lint_files(files: &[FileAnalysis]) -> LintReport {
    let mut findings = Vec::new();
    let mut tables: HashMap<&str, suppress::SuppressionTable> = HashMap::new();
    let mut allows: BTreeMap<String, Vec<AllowSite>> = BTreeMap::new();
    for f in files {
        let (table, meta) = parse_suppressions(&f.rel_path, &f.lexed.comments, &f.lexed.toks);
        findings.extend(meta);
        for (rule, line) in table.directives() {
            allows
                .entry(rule.clone())
                .or_default()
                .push(AllowSite { path: f.rel_path.clone(), line: *line });
        }
        tables.insert(f.rel_path.as_str(), table);
        findings.extend(rules::token_rules(&f.rel_path, &f.lexed.toks));
    }

    let graph = CallGraph::build(files);
    conc::check(files, &graph, &mut findings);
    taint::check(files, &graph, &mut findings);

    findings.retain(|fd| {
        !tables.get(fd.path.as_str()).is_some_and(|t| t.is_suppressed(&fd.rule, fd.line))
    });
    findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule, a.col).cmp(&(&b.path, b.line, &b.rule, b.col)));
    // A single construct can trip one rule through several detectors (a
    // `for` loop over `m.keys()` matches both the chain and the loop
    // pattern; a call can resolve to several same-named fns); report once.
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    LintReport { findings, allows }
}

/// Lint one source file given its workspace-relative path. The path drives
/// the per-rule allowlists (timing layer, bench binaries) and the
/// library/binary/test distinction, so callers must pass it in repo form
/// (forward slashes, relative to the workspace root). The flow passes run
/// too, scoped to this one file.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_files(&[analyze_source(rel_path, source)]).findings
}

/// Locate the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every lintable `.rs` file under `root`, workspace-relative with forward
/// slashes, in sorted order (deterministic output — the linter practices
/// what it preaches).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Analyze every file of the workspace at `root`.
pub fn analyze_workspace(root: &Path) -> Vec<FileAnalysis> {
    workspace_files(root)
        .into_iter()
        .filter_map(|path| {
            let source = std::fs::read_to_string(&path).ok()?;
            Some(analyze_source(&rel_path(root, &path), &source))
        })
        .collect()
}

/// Lint the whole workspace and return the full report (findings + allow
/// audit).
pub fn lint_workspace_report(root: &Path) -> LintReport {
    lint_files(&analyze_workspace(root))
}

/// Lint every file of the workspace at `root`; findings come back sorted
/// by (path, line, rule, col).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    lint_workspace_report(root).findings
}

/// Workspace-relative, forward-slash form of `path`.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(rel_path(root, Path::new("/a/b/crates/x/src/lib.rs")), "crates/x/src/lib.rs");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/lint").exists());
    }

    #[test]
    fn fixtures_and_vendor_are_never_scanned() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        for f in workspace_files(&root) {
            let rel = rel_path(&root, &f);
            assert!(!rel.contains("fixtures/"), "fixture {rel} must not be scanned");
            assert!(!rel.starts_with("vendor/"), "vendored {rel} must not be scanned");
            assert!(!rel.starts_with("target/"), "build output {rel} must not be scanned");
        }
    }

    #[test]
    fn the_allow_audit_lists_justified_allows_by_rule() {
        let report = lint_files(&[analyze_source(
            "crates/x/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 {\n\
             // pmr-lint: allow(lib-unwrap): caller guarantees Some\n\
             x.unwrap()\n\
             }\n",
        )]);
        assert!(report.findings.is_empty());
        let sites = report.allows.get("lib-unwrap").expect("audited");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 2);
    }
}
