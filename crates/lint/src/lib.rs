#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
//! # pmr-lint
//!
//! A standalone static-analysis tool enforcing the workspace's determinism
//! and correctness invariants. PR 1 made byte-identical sweep output for
//! any `--jobs N` the repo's headline guarantee; this crate is the machine
//! check that keeps it true: no hash-ordered iteration feeding output, no
//! unseeded randomness, no wall-clock reads outside the timing layer, no
//! panicking library paths, no order-sensitive float accumulation.
//!
//! The tool lexes every `.rs` file with a small hand-rolled lexer (the
//! vendor tree is offline-only, so no `syn`) and runs five named,
//! individually-suppressable rules over the token stream — see
//! [`rules::RULES`] for the catalog and the README's "Static analysis &
//! determinism policy" section for how and when to suppress.
//!
//! Run it with `cargo run -p pmr-lint -- --deny-all` (CI does).

pub mod lexer;
pub mod rules;
pub mod suppress;

use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding};

/// Directories never scanned: vendored stand-ins, build output, VCS
/// internals, result artifacts, and the linter's own deliberately-violating
/// fixtures.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", "results", "fixtures"];

/// Locate the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every lintable `.rs` file under `root`, workspace-relative with forward
/// slashes, in sorted order (deterministic output — the linter practices
/// what it preaches).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Lint every file of the workspace at `root`; findings come back sorted
/// by (path, line, col).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in workspace_files(root) {
        let Ok(source) = std::fs::read_to_string(&path) else { continue };
        let rel = rel_path(root, &path);
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    findings
}

/// Workspace-relative, forward-slash form of `path`.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(rel_path(root, Path::new("/a/b/crates/x/src/lib.rs")), "crates/x/src/lib.rs");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/lint").exists());
    }

    #[test]
    fn fixtures_and_vendor_are_never_scanned() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root exists");
        for f in workspace_files(&root) {
            let rel = rel_path(&root, &f);
            assert!(!rel.contains("fixtures/"), "fixture {rel} must not be scanned");
            assert!(!rel.starts_with("vendor/"), "vendored {rel} must not be scanned");
            assert!(!rel.starts_with("target/"), "build output {rel} must not be scanned");
        }
    }
}
