//! CLI for the workspace determinism/correctness linter.
//!
//! ```text
//! pmr-lint [--root DIR] [--format text|json|github] [--deny-all] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is scanned (vendor/target/
//! fixtures excluded). `--deny-all` exits non-zero on any finding — the CI
//! mode. `--format json` emits the machine-readable findings array;
//! `--format github` emits GitHub Actions `::warning` annotations so
//! findings surface inline on pull requests.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pmr_lint::report::{write_report, Format};
use pmr_lint::rules::{RuleKind, REGISTRY};
use pmr_lint::{
    analyze_source, find_workspace_root, lint_files, lint_workspace_report, rel_path, FileAnalysis,
};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    deny_all: bool,
    files: Vec<PathBuf>,
}

fn print_help() {
    println!(
        "pmr-lint: determinism & correctness linter for the pmr workspace\n\n\
         usage: pmr-lint [--root DIR] [--format text|json|github] [--deny-all] [FILE...]\n"
    );
    for (kind, title) in [
        (RuleKind::Token, "per-file token rules:"),
        (RuleKind::Flow, "workspace flow rules (parser + call graph):"),
        (RuleKind::Meta, "meta rules (policing suppression itself):"),
    ] {
        println!("{title}");
        for rule in REGISTRY.iter().filter(|r| r.kind == kind) {
            println!("  {:<20} {}", rule.name, rule.summary);
        }
        println!();
    }
    println!(
        "suppress a finding with a justified inline comment:\n  \
         // pmr-lint: allow(rule-name): why the violation is sound\n\n\
         the text format appends a per-rule audit of every justified allow."
    );
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, format: Format::Text, deny_all: false, files: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                opts.format = Format::parse(&v)
                    .ok_or_else(|| format!("unknown format `{v}` (text|json|github)"))?;
            }
            "--deny-all" => opts.deny_all = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = opts
        .root
        .clone()
        .or_else(|| find_workspace_root(Path::new(".")))
        .unwrap_or_else(|| PathBuf::from("."));

    let report = if opts.files.is_empty() {
        lint_workspace_report(&root)
    } else {
        // Explicit files are analyzed together, so the cross-file passes
        // (call graph, channel topology) still see all of them.
        let mut analyses: Vec<FileAnalysis> = Vec::new();
        for file in &opts.files {
            match std::fs::read_to_string(file) {
                Ok(source) => {
                    let rel = rel_path(&root, &file.canonicalize().unwrap_or(file.clone()));
                    analyses.push(analyze_source(&rel, &source));
                }
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            }
        }
        lint_files(&analyses)
    };

    let mut stdout = std::io::stdout().lock();
    if let Err(e) = write_report(&mut stdout, &report, opts.format) {
        eprintln!("error: cannot write report: {e}");
        return ExitCode::from(2);
    }
    if opts.format != Format::Text {
        // The human summary goes to stderr so machine output stays pure.
        if report.findings.is_empty() {
            eprintln!("pmr-lint: clean");
        } else {
            eprintln!("pmr-lint: {} finding(s)", report.findings.len());
        }
    }

    if opts.deny_all && !report.findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
