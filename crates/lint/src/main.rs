//! CLI for the workspace determinism/correctness linter.
//!
//! ```text
//! pmr-lint [--root DIR] [--format text|json] [--deny-all] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is scanned (vendor/target/
//! fixtures excluded). `--deny-all` exits non-zero on any finding — the CI
//! mode. `--format json` emits a machine-readable findings array.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pmr_lint::{find_workspace_root, lint_source, lint_workspace, rel_path, Finding};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, json: false, deny_all: false, files: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "text" => opts.json = false,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--deny-all" => opts.deny_all = true,
            "--help" | "-h" => {
                println!(
                    "pmr-lint: determinism & correctness linter for the pmr workspace\n\n\
                     usage: pmr-lint [--root DIR] [--format text|json] [--deny-all] [FILE...]\n\n\
                     rules:"
                );
                for (name, what) in pmr_lint::rules::RULES {
                    println!("  {name:<14} {what}");
                }
                println!(
                    "\nsuppress a finding with a justified inline comment:\n  \
                     // pmr-lint: allow(rule-name): why the violation is sound"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = opts
        .root
        .clone()
        .or_else(|| find_workspace_root(Path::new(".")))
        .unwrap_or_else(|| PathBuf::from("."));

    let findings: Vec<Finding> = if opts.files.is_empty() {
        lint_workspace(&root)
    } else {
        let mut all = Vec::new();
        for file in &opts.files {
            match std::fs::read_to_string(file) {
                Ok(source) => {
                    let rel = rel_path(&root, &file.canonicalize().unwrap_or(file.clone()));
                    all.extend(lint_source(&rel, &source));
                }
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    if opts.json {
        match serde_json::to_string_pretty(&findings) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize findings: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &findings {
            println!("{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message);
        }
        if findings.is_empty() {
            eprintln!("pmr-lint: clean");
        } else {
            eprintln!("pmr-lint: {} finding(s)", findings.len());
        }
    }

    if opts.deny_all && !findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
