//! The rule registry and the per-file token-stream rules.
//!
//! Every rule is heuristic by design — the lexer has no type information —
//! and errs toward false negatives: a construct the analysis cannot prove
//! hash-ordered, wall-clocked or panicking is never flagged. The repo's
//! determinism tests remain the ground truth; the linter is the tripwire
//! that catches the common ways of breaking them *before* a sweep runs.
//!
//! [`REGISTRY`] is the single source of truth for rule names: the checks,
//! the suppress-directive validation (`unknown-rule`), `--help`, and the
//! allow-count audit all read it — adding a rule anywhere else is a bug.

use serde::Serialize;

use crate::lexer::{Tok, TokKind};
use crate::parse::{find_test_ranges, match_brace};

/// How a rule computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Per-file pattern over the token stream.
    Token,
    /// Workspace-wide flow analysis over the call graph ([`crate::conc`],
    /// [`crate::taint`]).
    Flow,
    /// Polices the suppression mechanism itself; not suppressable targets
    /// in the usual sense.
    Meta,
}

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The name used in findings and `allow(...)` directives.
    pub name: &'static str,
    /// Token, Flow or Meta.
    pub kind: RuleKind,
    /// One-line description for `--help` and docs.
    pub summary: &'static str,
}

/// Every rule the linter knows, in display order: five token rules, four
/// flow rules, two meta rules.
pub const REGISTRY: [Rule; 11] = [
    Rule {
        name: "nondet-iter",
        kind: RuleKind::Token,
        summary: "iterating a HashMap/HashSet where the loop body feeds serialization, float \
                  accumulation or Vec::push without a subsequent sort",
    },
    Rule {
        name: "unseeded-rng",
        kind: RuleKind::Token,
        summary: "thread_rng/from_entropy/from_os_rng/OsRng: every random decision must derive \
                  from an explicit seed",
    },
    Rule {
        name: "wall-clock",
        kind: RuleKind::Token,
        summary: "Instant::now/SystemTime::now outside the timing layer (core::timing, \
                  recommender timing blocks, the obs clock, bench binaries)",
    },
    Rule {
        name: "lib-unwrap",
        kind: RuleKind::Token,
        summary: "unwrap()/expect()/panic! in non-test library code",
    },
    Rule {
        name: "float-order",
        kind: RuleKind::Token,
        summary: ".sum::<f64>() over a hash-ordered collection: float addition is not \
                  associative, so the iteration order must be canonical",
    },
    Rule {
        name: "blocking-under-lock",
        kind: RuleKind::Flow,
        summary: "a blocking channel send/recv (directly or through a call chain) while a \
                  lock guard is live — the drain side may need that lock",
    },
    Rule {
        name: "lock-order-cycle",
        kind: RuleKind::Flow,
        summary: "the cross-function lock-acquisition-order graph has a cycle (or a lock is \
                  re-acquired under its own guard); impose one global order",
    },
    Rule {
        name: "channel-cycle",
        kind: RuleKind::Flow,
        summary: "a struct blocking-sends to and blocking-recvs from the same peer struct; \
                  a full forward queue plus an un-drained reply queue deadlocks",
    },
    Rule {
        name: "nondet-flow",
        kind: RuleKind::Flow,
        summary: "serialization reachable (through the call graph) from hash-ordered \
                  iteration with no sort in between",
    },
    Rule {
        name: "bare-allow",
        kind: RuleKind::Meta,
        summary: "a pmr-lint allow directive without a justification",
    },
    Rule {
        name: "unknown-rule",
        kind: RuleKind::Meta,
        summary: "a pmr-lint allow directive naming a rule that does not exist",
    },
];

/// The names of the enforceable rules (meta rules excluded).
pub fn rule_names() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().filter(|r| r.kind != RuleKind::Meta).map(|r| r.name)
}

/// Whether `name` is any known rule (including the meta rules).
pub fn is_known_rule(name: &str) -> bool {
    REGISTRY.iter().any(|r| r.name == name)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// The violated rule.
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Run the five per-file token rules over one file. Suppressions, the
/// workspace flow passes, sorting and deduplication live in
/// [`crate::lint_files`] — this is the raw per-file layer.
pub(crate) fn token_rules(rel_path: &str, toks: &[Tok]) -> Vec<Finding> {
    let ctx = FileContext::build(rel_path, toks);
    let mut findings = Vec::new();
    check_nondet_iter(&ctx, &mut findings);
    check_unseeded_rng(&ctx, &mut findings);
    check_wall_clock(&ctx, &mut findings);
    check_lib_unwrap(&ctx, &mut findings);
    check_float_order(&ctx, &mut findings);
    findings
}

/// Construct a finding at an explicit position (used by the flow passes,
/// which report at call/field sites rather than at a token in hand).
pub(crate) fn finding_at(rule: &str, path: &str, line: u32, col: u32, message: String) -> Finding {
    Finding { rule: rule.to_owned(), path: path.to_owned(), line, col, message }
}

/// Everything the rules need to know about one file.
struct FileContext<'a> {
    rel_path: &'a str,
    toks: &'a [Tok],
    /// Token-index ranges of `#[cfg(test)]` modules and `#[test]` functions.
    test_ranges: Vec<(usize, usize)>,
    /// Token-index ranges of function bodies (for sort lookahead).
    fn_bodies: Vec<(usize, usize)>,
    /// Identifiers known (by local declaration or annotation) to be
    /// `HashMap`s/`HashSet`s.
    hash_idents: Vec<String>,
    /// Whether the file is library code (under a crate's `src/`, not a
    /// binary, bench, example or integration test).
    is_library: bool,
}

impl<'a> FileContext<'a> {
    fn build(rel_path: &'a str, toks: &'a [Tok]) -> FileContext<'a> {
        FileContext {
            rel_path,
            toks,
            test_ranges: find_test_ranges(toks),
            fn_bodies: find_fn_bodies(toks),
            hash_idents: find_hash_idents(toks),
            is_library: is_library_path(rel_path),
        }
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    fn ident_at(&self, idx: usize, text: &str) -> bool {
        self.toks.get(idx).is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn punct_at(&self, idx: usize, ch: &str) -> bool {
        self.toks.get(idx).is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    }

    /// The token-index range of the innermost function body containing
    /// `idx`, or the whole file if none does (e.g. a const initializer).
    fn enclosing_fn(&self, idx: usize) -> (usize, usize) {
        self.fn_bodies
            .iter()
            .filter(|&&(a, b)| idx >= a && idx <= b)
            .min_by_key(|&&(a, b)| b - a)
            .copied()
            .unwrap_or((0, self.toks.len().saturating_sub(1)))
    }
}

/// Library code = a crate's `src/` tree minus `src/bin/` and `main.rs`,
/// plus the workspace facade's `src/`. Integration tests, benches and
/// examples are free to panic.
fn is_library_path(rel_path: &str) -> bool {
    let in_src = rel_path.contains("/src/") || rel_path.starts_with("src/");
    in_src && !rel_path.contains("/bin/") && !rel_path.ends_with("main.rs")
}

/// Token-index ranges of every function body.
fn find_fn_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "fn" {
            for (k, u) in toks.iter().enumerate().skip(i + 1) {
                match u.text.as_str() {
                    "{" => {
                        bodies.push((k, match_brace(toks, k)));
                        break;
                    }
                    ";" => break, // trait method declaration without a body
                    _ => {}
                }
            }
        }
    }
    bodies
}

/// Identifiers declared or annotated as `HashMap`/`HashSet` in this file:
/// `let [mut] x = HashMap::...`, `x: HashMap<...>` (bindings, parameters
/// and struct fields alike). Sorted and deduped, so callers may
/// binary-search.
pub(crate) fn find_hash_idents(toks: &[Tok]) -> Vec<String> {
    let mut idents = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name: [&[mut]|&'a] HashMap<...>` — annotation, including
        // reference-typed fn parameters; `path::HashMap` never matches
        // because the walk lands on the path's second `:`.
        let mut k = i;
        while k >= 1
            && (toks[k - 1].text == "&"
                || toks[k - 1].text == "mut"
                || toks[k - 1].kind == TokKind::Lifetime)
        {
            k -= 1;
        }
        if k >= 2
            && toks[k - 1].text == ":"
            && toks[k - 2].kind == TokKind::Ident
            && toks.get(k.wrapping_sub(3)).is_none_or(|t| t.text != ":")
        {
            idents.push(toks[k - 2].text.clone());
        }
        // `let [mut] name = HashMap::...` — inferred binding.
        if i >= 2 && toks[i - 1].text == "=" && toks[i - 2].kind == TokKind::Ident {
            idents.push(toks[i - 2].text.clone());
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

pub(crate) const ITER_METHODS: [&str; 6] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "drain"];
const SORTISH: [&str; 3] = ["sort", "BTreeMap", "BTreeSet"];

pub(crate) fn is_sortish(t: &Tok) -> bool {
    t.kind == TokKind::Ident && SORTISH.iter().any(|s| t.text.starts_with(s))
}

/// Whether the token region contains an order-sensitive sink: pushing to a
/// vector, writing/serializing, or accumulating floats. Sinks must have
/// call shape — a *variable* named `sum` or `push` is not a sink.
fn region_has_sink(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let to = to.min(toks.len().saturating_sub(1));
    for i in from..=to {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|u| u.text == "(" || u.text == ":");
        let macro_call = toks.get(i + 1).is_some_and(|u| u.text == "!");
        match t.text.as_str() {
            "push" | "push_str" | "extend" | "serialize" | "to_writer" | "sum" | "product"
                if method =>
            {
                return Some(i);
            }
            "write" | "writeln" | "print" | "println" | "format" if macro_call => {
                return Some(i);
            }
            "serde_json" if toks.get(i + 1).is_some_and(|u| u.text == ":") => {
                return Some(i);
            }
            // `.collect::<Vec<...>>()` materializes the nondeterministic
            // order; collecting into another hash/BTree container does not.
            "collect" if method && toks[i..=(i + 5).min(to)].iter().any(|u| u.text == "Vec") => {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

/// The end (token index of `;`) of the statement starting at `from`,
/// tracking bracket depth so `;` inside closures/blocks doesn't cut the
/// chain short.
pub(crate) fn statement_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return i;
                    }
                }
                ";" if depth <= 0 => return i,
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// The start of the statement containing `idx`: just past the previous
/// top-level `;`, `{` or `}`.
pub(crate) fn statement_start(toks: &[Tok], idx: usize) -> usize {
    let mut depth = 0i64;
    for i in (0..idx).rev() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" => depth -= 1,
                "{" => {
                    depth -= 1;
                    if depth < 0 {
                        return i + 1;
                    }
                }
                ";" if depth <= 0 => return i + 1,
                _ => {}
            }
        }
    }
    0
}

fn finding(rule: &str, rel_path: &str, tok: &Tok, message: String) -> Finding {
    Finding {
        rule: rule.to_owned(),
        path: rel_path.to_owned(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Rule 1: `nondet-iter`.
fn check_nondet_iter(ctx: &FileContext, findings: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        // (a) Iterator chains: `h.iter()/keys()/values()/...` on a known
        // hash-typed identifier.
        let chain = t.kind == TokKind::Ident
            && ctx.hash_idents.contains(&t.text)
            && ctx.punct_at(i + 1, ".")
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && ctx.punct_at(i + 3, "(");
        if chain {
            let end = statement_end(toks, i);
            if let Some(sink) = region_has_sink(toks, i + 3, end) {
                let (_, fn_end) = ctx.enclosing_fn(i);
                let sorted_later = toks[i..=fn_end.min(toks.len() - 1)].iter().any(is_sortish);
                if !sorted_later {
                    findings.push(finding(
                        "nondet-iter",
                        ctx.rel_path,
                        t,
                        format!(
                            "`{}.{}()` iterates a hash-ordered collection into `{}` without \
                             a subsequent sort; hash iteration order is nondeterministic",
                            t.text,
                            toks[i + 2].text,
                            toks[sink].text
                        ),
                    ));
                }
            }
        }
        // (b) `for ... in <expr mentioning a hash ident> { body }`.
        if t.kind == TokKind::Ident && t.text == "for" {
            // Header: tokens up to the loop's opening brace.
            let mut open = None;
            for (k, u) in toks.iter().enumerate().skip(i + 1) {
                match u.text.as_str() {
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    ";" => break, // not a loop (e.g. `for` inside a type)
                    _ => {}
                }
            }
            let Some(open) = open else { continue };
            let header_hash = toks[i + 1..open]
                .iter()
                .any(|u| u.kind == TokKind::Ident && (ctx.hash_idents.contains(&u.text)));
            if !header_hash {
                continue;
            }
            let close = match_brace(toks, open);
            if let Some(sink) = region_has_sink(toks, open, close) {
                let (_, fn_end) = ctx.enclosing_fn(i);
                let sorted_later = toks[i..=fn_end.min(toks.len() - 1)].iter().any(is_sortish);
                if !sorted_later {
                    findings.push(finding(
                        "nondet-iter",
                        ctx.rel_path,
                        t,
                        format!(
                            "`for` loop over a hash-ordered collection feeds `{}` without \
                             a subsequent sort; hash iteration order is nondeterministic",
                            toks[sink].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Rule 2: `unseeded-rng`.
fn check_unseeded_rng(ctx: &FileContext, findings: &mut Vec<Finding>) {
    const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "OsRng"];
    for t in ctx.toks {
        if t.kind == TokKind::Ident && ENTROPY.contains(&t.text.as_str()) {
            findings.push(finding(
                "unseeded-rng",
                ctx.rel_path,
                t,
                format!(
                    "`{}` draws OS entropy; all randomness must flow from explicit seeds \
                     (the simulator's seeded entry points are the only sanctioned source)",
                    t.text
                ),
            ));
        }
    }
}

/// Paths where wall-clock reads are sanctioned: the timing layer, the
/// recommender's timing blocks, the observability layer's production clock
/// (every other obs timestamp flows through the injected `Clock`), and the
/// bench binaries/benches (they only measure, never feed results).
fn wall_clock_allowed(rel_path: &str) -> bool {
    rel_path == "crates/core/src/timing.rs"
        || rel_path == "crates/core/src/recommender.rs"
        || rel_path == "crates/obs/src/clock.rs"
        || rel_path.starts_with("crates/bench/src/bin/")
        || rel_path.starts_with("crates/bench/benches/")
}

/// Rule 3: `wall-clock`.
fn check_wall_clock(ctx: &FileContext, findings: &mut Vec<Finding>) {
    if wall_clock_allowed(ctx.rel_path) {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        let clock = t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime");
        if clock
            && ctx.punct_at(i + 1, ":")
            && ctx.punct_at(i + 2, ":")
            && ctx.ident_at(i + 3, "now")
        {
            findings.push(finding(
                "wall-clock",
                ctx.rel_path,
                t,
                format!(
                    "`{}::now()` outside the timing layer; wall-clock reads belong in \
                     crates/core/src/timing.rs, recommender timing blocks or bench binaries",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 4: `lib-unwrap`.
fn check_lib_unwrap(ctx: &FileContext, findings: &mut Vec<Finding>) {
    if !ctx.is_library {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(i) {
            continue;
        }
        let method_call = i >= 1 && ctx.punct_at(i - 1, ".") && ctx.punct_at(i + 1, "(");
        match t.text.as_str() {
            "unwrap" | "expect" if method_call => {
                findings.push(finding(
                    "lib-unwrap",
                    ctx.rel_path,
                    t,
                    format!(
                        "`.{}()` in library code can panic; return a typed error \
                         (`PmrError`) or restructure to make the state impossible",
                        t.text
                    ),
                ));
            }
            "panic" if ctx.punct_at(i + 1, "!") => {
                findings.push(finding(
                    "lib-unwrap",
                    ctx.rel_path,
                    t,
                    "`panic!` in library code; return a typed error (`PmrError`) instead"
                        .to_owned(),
                ));
            }
            _ => {}
        }
    }
}

/// Rule 5: `float-order`.
fn check_float_order(ctx: &FileContext, findings: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let float_sum = t.kind == TokKind::Ident
            && (t.text == "sum" || t.text == "product")
            && i >= 1
            && ctx.punct_at(i - 1, ".")
            && ctx.punct_at(i + 1, ":")
            && ctx.punct_at(i + 2, ":")
            && ctx.punct_at(i + 3, "<")
            && toks.get(i + 4).is_some_and(|u| u.text == "f64" || u.text == "f32");
        if !float_sum {
            continue;
        }
        let start = statement_start(toks, i);
        let receiver = &toks[start..i];
        let hash_source = receiver.iter().enumerate().any(|(k, u)| {
            u.kind == TokKind::Ident
                && (ctx.hash_idents.contains(&u.text)
                    || ((u.text == "values" || u.text == "keys")
                        && k >= 1
                        && receiver[k - 1].text == "."))
        });
        let sorted_before = receiver.iter().any(is_sortish);
        if hash_source && !sorted_before {
            findings.push(finding(
                "float-order",
                ctx.rel_path,
                t,
                format!(
                    "`.{}::<{}>()` accumulates floats in hash-iteration order; float \
                     addition is not associative — sort the values first",
                    t.text,
                    toks[i + 4].text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    const LIB: &str = "crates/fake/src/lib.rs";

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn lib_unwrap_flags_method_calls_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        let f = lint_source(LIB, src);
        assert_eq!(rules_of(&f), ["lib-unwrap"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn lib_unwrap_skips_test_modules_and_binaries() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(lint_source(LIB, src).is_empty());
        let bin = "fn main() { std::env::args().next().unwrap(); }";
        assert!(lint_source("crates/fake/src/bin/tool.rs", bin).is_empty());
        assert!(lint_source("crates/fake/tests/integration.rs", bin).is_empty());
    }

    #[test]
    fn wall_clock_respects_the_allowlist() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&lint_source(LIB, src)), ["wall-clock"]);
        assert!(lint_source("crates/core/src/timing.rs", src).is_empty());
        assert!(lint_source("crates/obs/src/clock.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/bin/calibrate.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_is_flagged_everywhere() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }";
        assert_eq!(rules_of(&lint_source(LIB, src)), ["unseeded-rng"]);
        let seeded = "fn f() { let mut rng = StdRng::seed_from_u64(7); }";
        assert!(lint_source(LIB, seeded).is_empty());
    }

    #[test]
    fn nondet_iter_flags_unsorted_push() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) -> Vec<u32> {\n\
                       let mut out = Vec::new();\n\
                       for k in m.keys() { out.push(*k); }\n\
                       out\n\
                   }\n";
        assert_eq!(rules_of(&lint_source(LIB, src)), ["nondet-iter"]);
    }

    #[test]
    fn nondet_iter_accepts_a_subsequent_sort() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) -> Vec<u32> {\n\
                       let mut out = Vec::new();\n\
                       for k in m.keys() { out.push(*k); }\n\
                       out.sort();\n\
                       out\n\
                   }\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn float_order_flags_hash_values_sum() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        let findings = lint_source(LIB, src);
        let rules = rules_of(&findings);
        assert!(rules.contains(&"float-order"), "got {rules:?}");
    }

    #[test]
    fn float_order_ignores_slices() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn suppression_with_justification_silences() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // pmr-lint: allow(lib-unwrap): guarded by caller invariant\n\
                   x.unwrap()\n\
                   }\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn bare_suppression_is_itself_a_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // pmr-lint: allow(lib-unwrap)\n\
                   x.unwrap()\n\
                   }\n";
        let findings = lint_source(LIB, src);
        let rules = rules_of(&findings);
        assert!(rules.contains(&"bare-allow"), "got {rules:?}");
    }
}
