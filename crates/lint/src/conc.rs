//! The concurrency pass: lock-guard and channel-endpoint modeling.
//!
//! Three rules ride on one analysis of the parsed workspace:
//!
//! * **`blocking-under-lock`** — a blocking channel op (`.send(`, zero-arg
//!   `.recv()`) executed while a lock guard is live, directly or through a
//!   call whose transitive closure blocks. The guard may be waiting on the
//!   very thread that needs the lock to drain the channel.
//! * **`lock-order-cycle`** — the workspace-wide lock-acquisition-order
//!   graph (edge `A → B` when `B` is acquired, directly or via a call,
//!   while a guard on `A` is live) has a cycle; two threads walking the
//!   cycle from different entry points deadlock. A self-edge is reported
//!   too: `parking_lot` locks are not reentrant.
//! * **`channel-cycle`** — struct `S` blocking-sends message type `M` to
//!   and blocking-recvs `M'` from the same peer struct `T` (determined
//!   from `Sender<M>`/`Receiver<M>` field types). If `S` parks on a full
//!   forward queue while `T` parks on an un-drained reply queue, neither
//!   makes progress; such request/reply topologies need a protocol
//!   argument and carry a justified allow.
//!
//! Guard modeling: `.lock()` and zero-arg `.read()`/`.write()` (the zero
//! arity separates `parking_lot` guards from `io::Read`/`io::Write`). A
//! `let`-bound guard lives to the end of its innermost block or an
//! explicit `drop(name)`; an unbound (temporary) guard lives to the end of
//! its statement; `let _ =` drops immediately and creates no guard. Test
//! code is *not* exempt — a deadlocked test hangs CI just as hard.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parse::{Call, FieldDef, FnItem};
use crate::rules::{finding_at, statement_end, statement_start, Finding};
use crate::FileAnalysis;

/// How a call blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Send,
    Recv,
}

/// One direct blocking channel op inside a fn.
#[derive(Debug, Clone)]
struct BlockSite {
    call: usize,
    kind: BlockKind,
}

/// One lock acquisition inside a fn.
#[derive(Debug, Clone)]
struct Acquisition {
    call: usize,
    /// Canonical lock identity (see [`lock_id`]).
    lock: String,
    /// Token range within which the guard is live: from the acquisition
    /// token to the end of the innermost enclosing block, an explicit
    /// `drop`, or the end of the statement for unbound temporaries.
    live: (usize, usize),
}

/// Everything the three rules need, precomputed per fn id.
struct FnConc {
    blocks: Vec<BlockSite>,
    acquisitions: Vec<Acquisition>,
}

/// Run the concurrency pass over the whole workspace.
pub(crate) fn check(files: &[FileAnalysis], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let per_fn: Vec<FnConc> = (0..graph.len()).map(|id| analyze_fn(files, graph, id)).collect();

    // Blocking closure: fns that block directly or through any resolvable
    // call chain. No damping — blocking does not wash out.
    let seeds: Vec<bool> = per_fn.iter().map(|f| !f.blocks.is_empty()).collect();
    let (blocking, witness) = graph.propagate_up(seeds, &|_| false);

    check_blocking_under_lock(files, graph, &per_fn, &blocking, &witness, findings);
    check_lock_order(files, graph, &per_fn, findings);
    check_channel_cycle(files, graph, &per_fn, findings);
}

/// Whether the call at `call.tok` has zero arguments: `name()` exactly.
fn zero_arg(toks: &[Tok], call: &Call) -> bool {
    toks.get(call.tok + 1).is_some_and(|t| t.text == "(")
        && toks.get(call.tok + 2).is_some_and(|t| t.text == ")")
}

/// Canonical identity of a lock from its acquisition's receiver chain. A
/// `self.<field>` receiver is keyed by the impl's self type so the same
/// lock matches across methods and files; anything else keeps its textual
/// chain (`hint_lock()`, `global()`, a local name).
fn lock_id(item: &FnItem, call: &Call) -> Option<String> {
    if call.receiver.is_empty() {
        return None;
    }
    if call.receiver[0] == "self" {
        let ty = item.self_type.as_deref()?;
        return Some(format!("{ty}.{}", call.receiver[1..].join(".")));
    }
    Some(call.receiver.join("."))
}

/// All `{`..`}` pairs strictly inside a fn body.
fn inner_brace_pairs(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut stack = Vec::new();
    for (i, tok) in toks.iter().enumerate().take(close.min(toks.len())).skip(open + 1) {
        match tok.text.as_str() {
            "{" if tok.kind == TokKind::Punct => stack.push(i),
            "}" if tok.kind == TokKind::Punct => {
                if let Some(o) = stack.pop() {
                    pairs.push((o, i));
                }
            }
            _ => {}
        }
    }
    pairs
}

fn analyze_fn(files: &[FileAnalysis], graph: &CallGraph, id: usize) -> FnConc {
    let file = &files[graph.file_of(id)];
    let toks = &file.lexed.toks;
    let item = graph.item(files, id);
    let Some((open, close)) = item.body else {
        return FnConc { blocks: Vec::new(), acquisitions: Vec::new() };
    };
    let pairs = inner_brace_pairs(toks, open, close);

    let mut blocks = Vec::new();
    let mut acquisitions = Vec::new();
    for (ci, call) in item.calls.iter().enumerate() {
        if call.is_macro {
            continue;
        }
        match call.name.as_str() {
            "send" if call.is_method => blocks.push(BlockSite { call: ci, kind: BlockKind::Send }),
            "recv" if call.is_method && zero_arg(toks, call) => {
                blocks.push(BlockSite { call: ci, kind: BlockKind::Recv });
            }
            "lock" | "read" | "write" if call.is_method && zero_arg(toks, call) => {
                let Some(lock) = lock_id(item, call) else { continue };
                let stmt_start = statement_start(toks, call.tok);
                let stmt_end = statement_end(toks, call.tok);
                // `let [mut] name = ...` binds the guard; `let _ =` drops it
                // on the spot; no binding makes it a statement temporary.
                let mut k = stmt_start;
                let is_let = toks.get(k).is_some_and(|t| t.text == "let");
                if is_let && toks.get(k + 1).is_some_and(|t| t.text == "mut") {
                    k += 1;
                }
                let bound = if is_let
                    && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(k + 2).is_some_and(|t| t.text == "=")
                {
                    Some(toks[k + 1].text.as_str())
                } else {
                    None
                };
                if is_let && toks.get(k + 1).is_some_and(|t| t.text == "_") {
                    continue; // `let _ = x.lock()` drops the guard immediately
                }
                let until = match bound {
                    None => stmt_end,
                    Some(name) => {
                        // Innermost enclosing block, tightened by drop(name).
                        let block_close = pairs
                            .iter()
                            .filter(|&&(a, b)| call.tok > a && call.tok < b)
                            .map(|&(_, b)| b)
                            .min()
                            .unwrap_or(close);
                        item.calls
                            .iter()
                            .filter(|c| {
                                c.name == "drop"
                                    && !c.is_method
                                    && c.tok > call.tok
                                    && c.tok < block_close
                                    && toks.get(c.tok + 2).is_some_and(|t| t.text == name)
                                    && toks.get(c.tok + 3).is_some_and(|t| t.text == ")")
                            })
                            .map(|c| c.tok)
                            .min()
                            .unwrap_or(block_close)
                    }
                };
                acquisitions.push(Acquisition { call: ci, lock, live: (call.tok, until) });
            }
            _ => {}
        }
    }
    FnConc { blocks, acquisitions }
}

fn describe_path(files: &[FileAnalysis], graph: &CallGraph, chain: &[usize]) -> String {
    chain
        .iter()
        .map(|&id| {
            let item = graph.item(files, id);
            let file = &files[graph.file_of(id)];
            format!("{} ({}:{})", item.name, file.rel_path, item.line)
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn check_blocking_under_lock(
    files: &[FileAnalysis],
    graph: &CallGraph,
    per_fn: &[FnConc],
    blocking: &[bool],
    witness: &[Option<(usize, usize)>],
    findings: &mut Vec<Finding>,
) {
    for id in 0..graph.len() {
        let conc = &per_fn[id];
        if conc.acquisitions.is_empty() {
            continue;
        }
        let item = graph.item(files, id);
        let file = &files[graph.file_of(id)];
        for acq in &conc.acquisitions {
            let acq_line = item.calls[acq.call].line;
            // Direct ops under the guard.
            for b in &conc.blocks {
                let call = &item.calls[b.call];
                if call.tok > acq.live.0 && call.tok <= acq.live.1 {
                    let verb = match b.kind {
                        BlockKind::Send => "send",
                        BlockKind::Recv => "recv",
                    };
                    findings.push(finding_at(
                        "blocking-under-lock",
                        &file.rel_path,
                        call.line,
                        call.col,
                        format!(
                            "blocking `.{verb}(..)` while the `{}` guard (acquired line \
                             {acq_line}) is live; if draining the channel needs that lock, \
                             both threads park forever — drop the guard first",
                            acq.lock
                        ),
                    ));
                }
            }
            // Calls whose closure blocks, made under the guard.
            for &(ci, callee) in graph.calls_from(id) {
                let call = &item.calls[ci];
                if call.tok <= acq.live.0 || call.tok > acq.live.1 || !blocking[callee] {
                    continue;
                }
                let mut chain = vec![callee];
                chain.extend(graph.witness_path(witness, callee));
                findings.push(finding_at(
                    "blocking-under-lock",
                    &file.rel_path,
                    call.line,
                    call.col,
                    format!(
                        "call to `{}` can block on a channel ({}) while the `{}` guard \
                         (acquired line {acq_line}) is live; drop the guard before the call",
                        call.name,
                        describe_path(files, graph, &chain),
                        acq.lock
                    ),
                ));
            }
        }
    }
}

fn check_lock_order(
    files: &[FileAnalysis],
    graph: &CallGraph,
    per_fn: &[FnConc],
    findings: &mut Vec<Finding>,
) {
    // Per-fn transitive lock sets: which locks a call into this fn may
    // acquire. Fixpoint over resolved edges (lock vocabularies are tiny).
    let mut closure: Vec<Vec<String>> = per_fn
        .iter()
        .map(|f| {
            let mut v: Vec<String> = f.acquisitions.iter().map(|a| a.lock.clone()).collect();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..graph.len() {
            for &(_, callee) in graph.calls_from(id) {
                if callee == id {
                    continue;
                }
                let extra: Vec<String> =
                    closure[callee].iter().filter(|l| !closure[id].contains(l)).cloned().collect();
                if !extra.is_empty() {
                    closure[id].extend(extra);
                    closure[id].sort();
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition-order edges: lock A held, lock B acquired. Sites keep the
    // earliest (path, line, col) witness per edge for deterministic reports.
    let mut edges: BTreeMap<(String, String), (String, u32, u32, usize)> = BTreeMap::new();
    let mut note = |a: &str, b: &str, path: &str, line: u32, col: u32, fn_id: usize| {
        let key = (a.to_owned(), b.to_owned());
        let site = (path.to_owned(), line, col, fn_id);
        match edges.get(&key) {
            Some(prev) if *prev <= site => {}
            _ => {
                edges.insert(key, site);
            }
        }
    };
    for id in 0..graph.len() {
        let conc = &per_fn[id];
        if conc.acquisitions.is_empty() {
            continue;
        }
        let item = graph.item(files, id);
        let file = &files[graph.file_of(id)];
        for acq in &conc.acquisitions {
            for other in &conc.acquisitions {
                let call = &item.calls[other.call];
                if other.lock != acq.lock && call.tok > acq.live.0 && call.tok <= acq.live.1 {
                    note(&acq.lock, &other.lock, &file.rel_path, call.line, call.col, id);
                }
            }
            for &(ci, callee) in graph.calls_from(id) {
                let call = &item.calls[ci];
                if call.tok <= acq.live.0 || call.tok > acq.live.1 {
                    continue;
                }
                for lock in &closure[callee] {
                    note(&acq.lock, lock, &file.rel_path, call.line, call.col, id);
                }
            }
        }
    }

    // A self-edge is an immediate deadlock (non-reentrant locks); report it
    // directly. Longer cycles: DFS over the order graph.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for ((a, b), site) in &edges {
        if a == b {
            findings.push(finding_at(
                "lock-order-cycle",
                &site.0,
                site.1,
                site.2,
                format!(
                    "`{a}` re-acquired while its own guard is live; parking_lot locks are \
                     not reentrant, so this self-deadlocks"
                ),
            ));
        } else {
            adj.entry(a.as_str()).or_default().push(b.as_str());
        }
    }
    for cycle in find_cycles(&adj) {
        // Report at the earliest witness site among the cycle's edges.
        let site = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(a, b)| edges.get(&(a.to_string(), b.to_string())))
            .min()
            .cloned();
        let Some(site) = site else { continue };
        findings.push(finding_at(
            "lock-order-cycle",
            &site.0,
            site.1,
            site.2,
            format!(
                "lock acquisition order forms a cycle: {}; two threads entering the cycle \
                 at different points deadlock — impose one global order",
                cycle.join(" -> "),
            ),
        ));
    }
}

/// Elementary cycles in a tiny digraph, canonicalized (each reported once,
/// rotated so the lexicographically smallest node leads). DFS from each
/// node; the graphs here have a handful of nodes, so simplicity wins.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut out: Vec<Vec<&str>> = Vec::new();
    let mut seen: Vec<Vec<&str>> = Vec::new();
    for &start in adj.keys() {
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if next == start {
                    // Canonical rotation.
                    let mut cycle = path.clone();
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, s)| *s)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    if !seen.contains(&cycle) {
                        seen.push(cycle.clone());
                        out.push(cycle);
                    }
                } else if !path.contains(&next) && path.len() <= adj.len() {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    out
}

/// One struct's channel endpoints, recovered from its field types.
#[derive(Debug, Default)]
struct Endpoints<'a> {
    /// (field, message type) per `Sender<M>` field.
    sends: Vec<(&'a FieldDef, &'a str)>,
    /// (field, message type) per `Receiver<M>` field.
    recvs: Vec<(&'a FieldDef, &'a str)>,
    /// File the struct is declared in (for reporting).
    file: usize,
}

/// The message type parameter of the first `Sender<..>`/`Receiver<..>` in a
/// field's type tokens.
fn endpoint_message<'a>(type_toks: &'a [String], endpoint: &str) -> Option<&'a str> {
    let pos = type_toks.iter().position(|t| t == endpoint)?;
    if type_toks.get(pos + 1).map(String::as_str) != Some("<") {
        return None;
    }
    type_toks.get(pos + 2).map(String::as_str)
}

fn check_channel_cycle(
    files: &[FileAnalysis],
    graph: &CallGraph,
    per_fn: &[FnConc],
    findings: &mut Vec<Finding>,
) {
    // Struct name -> endpoints (structs are identified by bare name; the
    // message-type match keeps unrelated same-named structs from pairing).
    let mut structs: BTreeMap<&str, Endpoints> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for field in &file.parsed.fields {
            let entry = structs.entry(field.owner.as_str()).or_default();
            entry.file = fi;
            if let Some(msg) = endpoint_message(&field.type_toks, "Sender") {
                entry.sends.push((field, msg));
            }
            if let Some(msg) = endpoint_message(&field.type_toks, "Receiver") {
                entry.recvs.push((field, msg));
            }
        }
    }

    // Per struct: the field names its methods blocking-send / blocking-recv
    // through (receiver chains of direct blocking ops in `impl` fns).
    let mut used: BTreeMap<&str, (Vec<&str>, Vec<&str>)> = BTreeMap::new();
    for (id, facts) in per_fn.iter().enumerate().take(graph.len()) {
        let item = graph.item(files, id);
        let Some(self_type) = item.self_type.as_deref() else { continue };
        for b in &facts.blocks {
            let call = &item.calls[b.call];
            let fields: Vec<&str> = call.receiver.iter().map(String::as_str).collect();
            let entry = used.entry(self_type).or_default();
            match b.kind {
                BlockKind::Send => entry.0.extend(fields),
                BlockKind::Recv => entry.1.extend(fields),
            }
        }
    }
    let blocking_use = |s: &str, field: &str, kind: BlockKind| -> bool {
        used.get(s).is_some_and(|(sends, recvs)| match kind {
            BlockKind::Send => sends.contains(&field),
            BlockKind::Recv => recvs.contains(&field),
        })
    };

    for (&s_name, s) in &structs {
        for &(s_tx, fwd_msg) in &s.sends {
            if !blocking_use(s_name, &s_tx.name, BlockKind::Send) {
                continue;
            }
            for &(s_rx, reply_msg) in &s.recvs {
                if !blocking_use(s_name, &s_rx.name, BlockKind::Recv) {
                    continue;
                }
                // A peer that receives what S sends and sends what S
                // receives, both blockingly, closes the wait cycle.
                let peer = structs.iter().find(|&(&t_name, t)| {
                    t_name != s_name
                        && t.recvs.iter().any(|&(f, m)| {
                            m == fwd_msg && blocking_use(t_name, &f.name, BlockKind::Recv)
                        })
                        && t.sends.iter().any(|&(f, m)| {
                            m == reply_msg && blocking_use(t_name, &f.name, BlockKind::Send)
                        })
                });
                let Some((&t_name, _)) = peer else { continue };
                findings.push(finding_at(
                    "channel-cycle",
                    &files[s.file].rel_path,
                    s_tx.line,
                    1,
                    format!(
                        "`{s_name}` blocking-sends `{fwd_msg}` to and blocking-recvs \
                         `{reply_msg}` from `{t_name}`; if the forward queue fills while \
                         the reply queue is un-drained, both sides park — justify the \
                         drain protocol or make one direction non-blocking"
                    ),
                ));
            }
        }
    }
}
