//! A lightweight item-level parser on top of [`crate::lexer`].
//!
//! The flow-aware passes ([`crate::conc`], [`crate::taint`]) need more
//! structure than a token stream: which function a token belongs to, what
//! type an `impl` block targets, what a struct's fields are typed as, and
//! which calls a function body makes. This module recovers exactly that —
//! and nothing more. It is *not* a Rust parser: expressions stay as token
//! ranges, types stay as token slices, and anything the recovery cannot
//! classify is simply absent from the output. Like the lexer, the parser
//! is loss-tolerant by construction: an unrecognized construct can only
//! produce a false negative downstream, never a panic and never a false
//! positive on code that was parsed correctly.
//!
//! Invariants (pinned by the workspace round-trip test):
//! * parsing never panics, on any input;
//! * every recorded token index is in-bounds for the file's token vector;
//! * every body range is a matched `{`..`}` pair with `open <= close`.

use crate::lexer::{Tok, TokKind};

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "let", "else", "in", "as", "move", "fn",
    "where", "use",
];

/// One call expression recovered from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The callee's final path segment (`send` in `tx.send(..)` and in
    /// `channel::send(..)` alike).
    pub name: String,
    /// Path segments before the name for path calls (`["channel"]` for
    /// `channel::bounded(..)`); empty for plain and method calls.
    pub path: Vec<String>,
    /// For method calls: the receiver's trailing ident chain, outermost
    /// first (`["self", "senders"]` for `self.senders[i].send(..)` — index
    /// expressions are skipped over). Idents that are themselves call
    /// results carry a `()` suffix (`["stdout()"]` for `stdout().lock()`).
    pub receiver: Vec<String>,
    /// Whether this is a `.name(..)` method call.
    pub is_method: bool,
    /// Whether this is a `name!(..)` macro invocation.
    pub is_macro: bool,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// 1-based source column of the callee name.
    pub col: u32,
}

/// One `fn` item (free function, inherent or trait method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type of the enclosing `impl` block, if any.
    pub self_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body's `{` and `}`; `None` for bodiless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` module or carries a
    /// `#[test]` attribute.
    pub is_test: bool,
    /// Every call expression in the body, in source order.
    pub calls: Vec<Call>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// One struct field, kept as a name plus its type's token texts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// The struct the field belongs to.
    pub owner: String,
    /// The field's name.
    pub name: String,
    /// The field type's token texts, in order (`["Vec", "<", "Sender",
    /// "<", "ShardMsg", ">", ">"]`).
    pub type_toks: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
}

/// The parsed form of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every struct field, in source order.
    pub fields: Vec<FieldDef>,
}

impl ParsedFile {
    /// The innermost function whose body contains token `idx`.
    pub fn fn_at(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| idx >= a && idx <= b))
            .min_by_key(|f| f.body.map(|(a, b)| b - a).unwrap_or(usize::MAX))
    }
}

/// Match `{` at `open` to its closing `}`; returns the last token on
/// unbalanced input (tolerant, never panics).
pub(crate) fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skip one `#[...]` attribute starting at `idx` (the `#`); returns the
/// index just past the closing `]`, or `idx` if no attribute starts here.
pub(crate) fn skip_attr(toks: &[Tok], idx: usize) -> usize {
    if !(toks.get(idx).is_some_and(|t| t.text == "#")
        && toks.get(idx + 1).is_some_and(|t| t.text == "["))
    {
        return idx;
    }
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(idx + 1) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Token-index ranges covered by `#[cfg(test)]` items and `#[test]`
/// functions.
pub(crate) fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
            && toks.get(i + 4).is_some_and(|t| t.text == "test")
            && toks.get(i + 5).is_some_and(|t| t.text == ")")
            && toks.get(i + 6).is_some_and(|t| t.text == "]");
        let is_test_attr = toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 2).is_some_and(|t| t.text == "test")
            && toks.get(i + 3).is_some_and(|t| t.text == "]");
        if is_cfg_test || is_test_attr {
            // Skip this and any further attributes, then cover the item.
            let mut j = skip_attr(toks, i);
            while toks.get(j).is_some_and(|t| t.text == "#") {
                j = skip_attr(toks, j);
            }
            // Find the item's opening brace (stop at `;` — `#[cfg(test)]
            // use ...;` has no body).
            let mut open = None;
            for (k, t) in toks.iter().enumerate().skip(j) {
                match t.text.as_str() {
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            if let Some(open) = open {
                let close = match_brace(toks, open);
                ranges.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Parse one lexed file into its item structure.
pub fn parse(path: &str, toks: &[Tok]) -> ParsedFile {
    let test_ranges = find_test_ranges(toks);
    let in_test = |idx: usize| -> bool { test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b) };

    let mut out = ParsedFile { path: path.to_owned(), ..ParsedFile::default() };
    // Impl contexts as (self_type, body_open, body_close), innermost last.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some((self_type, open)) = parse_impl_header(toks, i) {
                    let close = match_brace(toks, open);
                    impls.push((self_type, open, close));
                }
                i += 1;
            }
            "struct" => {
                parse_struct(toks, i, &mut out.fields);
                i += 1;
            }
            "fn" => {
                let self_type = impls
                    .iter()
                    .filter(|&&(_, a, b)| i >= a && i <= b)
                    .min_by_key(|&&(_, a, b)| b - a)
                    .map(|(name, _, _)| name.clone());
                if let Some(item) = parse_fn(toks, i, self_type, in_test(i)) {
                    let next = item.body.map(|(open, _)| open + 1).unwrap_or(i + 1);
                    out.fns.push(item);
                    // Step *into* the body so nested fns/impls are seen.
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Recover an `impl` block's self type and its body's opening brace.
/// Handles `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`,
/// `impl<'a> Trait<'a> for Foo<'a>` and `where` clauses.
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    // Skip the generic parameter list, if any.
    if toks.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(toks, i)?;
    }
    // Collect path segments until `for`, `where` or `{`; remember the last
    // ident of the last path seen — after a `for`, the collection restarts
    // so the self type wins over the trait.
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "for") => {
                last_ident = None;
                i += 1;
            }
            (TokKind::Ident, "where") => break,
            (TokKind::Ident, _) => {
                last_ident = Some(t.text.clone());
                i += 1;
            }
            (TokKind::Punct, "<") => i = skip_angles(toks, i)?,
            (TokKind::Punct, "{") => break,
            (TokKind::Punct, ";") => return None, // `impl Trait for Type;`-ish
            _ => i += 1,
        }
    }
    // Find the body's `{` from here (skipping a `where` clause's bounds).
    let open = toks[i..].iter().position(|t| t.text == "{").map(|p| p + i)?;
    last_ident.map(|name| (name, open))
}

/// Skip a balanced `<...>` group starting at `open` (the `<`). Returns the
/// index just past the closing `>`, or `None` when unbalanced.
fn skip_angles(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            // A group that runs into item structure is not a generic list.
            "{" | ";" => return None,
            _ => {}
        }
        i += 1;
        // Defensive cap: a pathological `<` chain cannot stall the parser.
        if i > open + 256 {
            return None;
        }
    }
    None
}

/// Recover `struct Name { field: Type, ... }` fields. Tuple and unit
/// structs contribute nothing.
fn parse_struct(toks: &[Tok], struct_idx: usize, fields: &mut Vec<FieldDef>) {
    let Some(name_tok) = toks.get(struct_idx + 1) else { return };
    if name_tok.kind != TokKind::Ident {
        return;
    }
    let owner = name_tok.text.clone();
    let mut i = struct_idx + 2;
    if toks.get(i).is_some_and(|t| t.text == "<") {
        match skip_angles(toks, i) {
            Some(next) => i = next,
            None => return,
        }
    }
    // `where` clauses can precede the brace; scan to `{` or give up at `;`
    // (a tuple/unit struct).
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => break,
            ";" | "(" => return,
            _ => i += 1,
        }
    }
    let open = i;
    if open >= toks.len() {
        return;
    }
    let close = match_brace(toks, open);
    let mut j = open + 1;
    while j < close {
        // Skip attributes and visibility before each field.
        while toks.get(j).is_some_and(|t| t.text == "#") {
            j = skip_attr(toks, j);
        }
        if toks.get(j).is_some_and(|t| t.text == "pub") {
            j += 1;
            if toks.get(j).is_some_and(|t| t.text == "(") {
                // `pub(crate)` etc.
                j = skip_parens(toks, j);
            }
        }
        let (Some(name), Some(colon)) = (toks.get(j), toks.get(j + 1)) else { break };
        if name.kind != TokKind::Ident || colon.text != ":" {
            // Lost sync (e.g. a nested item); bail out of this struct.
            break;
        }
        // The type runs to the next comma at angle/paren depth 0.
        let mut k = j + 2;
        let mut angle = 0i64;
        let mut paren = 0i64;
        let mut type_toks = Vec::new();
        while k < close {
            let text = toks[k].text.as_str();
            match text {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "," if angle <= 0 && paren <= 0 => break,
                _ => {}
            }
            type_toks.push(toks[k].text.clone());
            k += 1;
        }
        fields.push(FieldDef {
            owner: owner.clone(),
            name: name.text.clone(),
            line: name.line,
            type_toks,
        });
        j = k + 1; // past the comma
    }
}

/// Skip a balanced `(...)` group starting at `open`. Returns the index just
/// past the closing `)`.
fn skip_parens(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Recover one `fn` item starting at the `fn` keyword.
fn parse_fn(
    toks: &[Tok],
    fn_idx: usize,
    self_type: Option<String>,
    is_test: bool,
) -> Option<FnItem> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn` inside a type like `Fn(..)` lexes differently; be safe
    }
    // Scan past generics and the parameter list, then to `{` or `;`. The
    // return type and where clause carry no braces of their own.
    let mut i = fn_idx + 2;
    if toks.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(toks, i)?;
    }
    if toks.get(i).is_some_and(|t| t.text == "(") {
        i = skip_parens(toks, i);
    } else {
        return None; // not a function item after all
    }
    let mut body = None;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                body = Some((i, match_brace(toks, i)));
                break;
            }
            ";" => break, // bodiless trait method
            _ => i += 1,
        }
    }
    let calls = match body {
        Some((open, close)) => collect_calls(toks, open, close),
        None => Vec::new(),
    };
    Some(FnItem {
        name: name_tok.text.clone(),
        self_type,
        sig_start: fn_idx,
        body,
        is_test,
        calls,
        line: toks[fn_idx].line,
        col: toks[fn_idx].col,
    })
}

/// Every call expression between `open` and `close` (a body's braces).
fn collect_calls(toks: &[Tok], open: usize, close: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    let close = close.min(toks.len().saturating_sub(1));
    for i in (open + 1)..close {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Definition sites are not calls.
        if i >= 1 && toks[i - 1].text == "fn" {
            continue;
        }
        let next = toks.get(i + 1).map(|u| u.text.as_str());
        let is_macro = next == Some("!") && toks.get(i + 2).is_some_and(|u| u.text == "(");
        let is_call = next == Some("(")
            // `name::<T>(..)` — a turbofish between name and arguments.
            || (next == Some(":")
                && toks.get(i + 2).is_some_and(|u| u.text == ":")
                && toks.get(i + 3).is_some_and(|u| u.text == "<"));
        if !is_macro && !is_call {
            continue;
        }
        let is_method = i >= 1 && toks[i - 1].text == ".";
        let mut path = Vec::new();
        if !is_method && i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            // Collect the path prefix, innermost-last.
            let mut k = i;
            while k >= 3
                && toks[k - 1].text == ":"
                && toks[k - 2].text == ":"
                && toks[k - 3].kind == TokKind::Ident
            {
                path.push(toks[k - 3].text.clone());
                k -= 3;
            }
            path.reverse();
        }
        let receiver = if is_method { receiver_chain(toks, i - 1) } else { Vec::new() };
        calls.push(Call {
            name: t.text.clone(),
            path,
            receiver,
            is_method,
            is_macro,
            tok: i,
            line: t.line,
            col: t.col,
        });
    }
    calls
}

/// Walk a method call's receiver chain backwards from the `.` at `dot`.
/// Returns the trailing ident chain, outermost first; index expressions are
/// skipped, call results keep a `()` marker. Stops (and truncates) at
/// anything else — a literal, a closing brace, an operator.
pub(crate) fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut i = dot; // points at the `.` (or `.` of the next hop)
    while i >= 1 {
        let mut j = i - 1; // candidate end of the previous segment
                           // Skip over one or more index groups: `xs[k]` or `xs[k][l]`.
        let mut guard = 0;
        while toks.get(j).is_some_and(|t| t.text == "]") && guard < 8 {
            let mut depth = 0i64;
            let mut k = j;
            loop {
                match toks[k].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return done(chain);
                }
                k -= 1;
            }
            if k == 0 {
                return done(chain);
            }
            j = k - 1;
            guard += 1;
        }
        if toks.get(j).is_some_and(|t| t.text == ")") {
            // A call result: find the matching `(` and the callee ident.
            let mut depth = 0i64;
            let mut k = j;
            loop {
                match toks[k].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return done(chain);
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                chain.push(format!("{}()", toks[k - 1].text));
                if k >= 2 && toks[k - 2].text == "." {
                    i = k - 2;
                    continue;
                }
            }
            return done(chain);
        }
        match toks.get(j) {
            Some(t) if t.kind == TokKind::Ident => {
                chain.push(t.text.clone());
                if j >= 1 && toks[j - 1].text == "." {
                    i = j - 1;
                    continue;
                }
                return done(chain);
            }
            _ => return done(chain),
        }
    }
    done(chain)
}

fn done(mut chain: Vec<String>) -> Vec<String> {
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse("crates/x/src/lib.rs", &lex(src).toks)
    }

    #[test]
    fn recovers_free_fns_and_methods() {
        let p = parsed(
            "fn free() { helper(); }\n\
             struct S { x: u32 }\n\
             impl S {\n    fn method(&self) -> u32 { self.x }\n}\n\
             impl Clone for S {\n    fn clone(&self) -> S { S { x: self.x } }\n}\n",
        );
        let names: Vec<(&str, Option<&str>)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.self_type.as_deref())).collect();
        assert_eq!(
            names,
            [("free", None), ("method", Some("S")), ("clone", Some("S"))],
            "impl-for resolves to the self type, not the trait"
        );
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn struct_fields_keep_their_type_tokens() {
        let p = parsed(
            "pub struct Engine {\n\
                 senders: Vec<Sender<ShardMsg>>,\n\
                 pub reply_rx: Receiver<ShardReply>,\n\
             }\n",
        );
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[0].owner, "Engine");
        assert_eq!(p.fields[0].name, "senders");
        assert!(p.fields[0].type_toks.contains(&"Sender".to_owned()));
        assert!(p.fields[0].type_toks.contains(&"ShardMsg".to_owned()));
        assert_eq!(p.fields[1].name, "reply_rx");
        assert!(p.fields[1].type_toks.contains(&"Receiver".to_owned()));
    }

    #[test]
    fn method_calls_carry_receiver_chains() {
        let p = parsed(
            "fn f(&self) {\n\
                 self.senders[shard].send(msg);\n\
                 self.reply_rx.recv();\n\
                 stdout().lock();\n\
                 x.a.b.c();\n\
             }\n",
        );
        let calls = &p.fns[0].calls;
        let send = calls.iter().find(|c| c.name == "send").expect("send call");
        assert_eq!(send.receiver, ["self", "senders"], "index expressions are skipped");
        let recv = calls.iter().find(|c| c.name == "recv").expect("recv call");
        assert_eq!(recv.receiver, ["self", "reply_rx"]);
        let lock = calls.iter().find(|c| c.name == "lock").expect("lock call");
        assert_eq!(lock.receiver, ["stdout()"]);
        let c = calls.iter().find(|c| c.name == "c").expect("chain call");
        assert_eq!(c.receiver, ["x", "a", "b"]);
    }

    #[test]
    fn path_calls_and_macros_are_classified() {
        let p = parsed(
            "fn f() {\n\
                 let (tx, rx) = channel::bounded(4);\n\
                 writeln!(out, \"x\");\n\
                 collect::<Vec<u32>>();\n\
             }\n",
        );
        let calls = &p.fns[0].calls;
        let bounded = calls.iter().find(|c| c.name == "bounded").expect("bounded");
        assert_eq!(bounded.path, ["channel"]);
        assert!(calls.iter().any(|c| c.name == "writeln" && c.is_macro));
        assert!(calls.iter().any(|c| c.name == "collect"), "turbofish calls are calls");
    }

    #[test]
    fn test_items_are_marked() {
        let p = parsed(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n",
        );
        let live = p.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.is_test);
        let t = p.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
    }

    #[test]
    fn nested_fns_and_closures_do_not_hide_items() {
        let p = parsed(
            "fn outer() {\n    fn inner() { leaf(); }\n    let f = || helper();\n}\n\
             fn after() {}\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "after"]);
        // The closure's call is attributed to `outer` (its lexical body).
        let outer = &p.fns[0];
        assert!(outer.calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn generic_impls_resolve_their_self_type() {
        let p = parsed(
            "impl<'a, T: Clone> Wrapper<'a, T> {\n    fn get(&self) {}\n}\n\
             impl<T> From<T> for Boxed<T> {\n    fn from(t: T) -> Boxed<T> { Boxed(t) }\n}\n",
        );
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(p.fns[1].self_type.as_deref(), Some("Boxed"));
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl {",
            "struct",
            "struct S {",
            "fn f( {",
            "fn f() {",
            "impl < X {",
            "struct S < T {",
            "fn f() { x.(); }",
            ") } { (",
        ] {
            let _ = parsed(src); // must not panic
        }
    }

    #[test]
    fn spans_are_in_bounds() {
        let src = "impl S { fn m(&self) { self.x.y(); helper(); } }";
        let toks = lex(src).toks;
        let p = parse("x.rs", &toks);
        for f in &p.fns {
            assert!(f.sig_start < toks.len());
            if let Some((a, b)) = f.body {
                assert!(a <= b && b < toks.len());
            }
            for c in &f.calls {
                assert!(c.tok < toks.len());
            }
        }
    }
}
