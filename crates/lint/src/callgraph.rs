//! A conservative intra-workspace call graph over parsed items.
//!
//! Resolution is name-based and deliberately narrow:
//!
//! * a **plain call** `helper(..)` or `module::helper(..)` resolves to
//!   *every* workspace **free** `fn` named `helper` — a path-less call can
//!   never name an associated fn in Rust, so `impl` methods are excluded
//!   (`snapshot()` in the obs crate must not alias `Engine::snapshot`).
//!   Still over-approximate across modules, so a flow property (blocking,
//!   taint) propagating through it can only over-report the *reachability*,
//!   never miss a real edge among workspace free functions;
//! * an **associated call** `Type::helper(..)` (any path segment starting
//!   with an uppercase letter is taken as the type) resolves only to
//!   `helper` fns inside `impl Type` blocks — without this, every
//!   `Engine::new(..)` in the repo would alias every other `fn new` and
//!   wire the whole workspace into one blob; `Self::helper(..)` resolves
//!   within the caller's own self type. A foreign type (`HashMap::new`)
//!   has no workspace impl and resolves to nothing;
//! * a **method call** `self.helper(..)` resolves to the `fn`s named
//!   `helper` inside `impl` blocks for the caller's own self type;
//! * any **other method call** (`x.helper(..)`) resolves to nothing — with
//!   no type information, resolving it by name would wire unrelated types
//!   together (every `.snapshot()` in the repo would alias the engine's
//!   blocking one) and drown the passes in false positives.
//!
//! Calls into non-workspace code (std, vendored crates) resolve to nothing
//! by construction; the passes model those effects directly at the call
//! token instead (`.send(`, `.lock()`, …).

use std::collections::HashMap;

use crate::parse::FnItem;
use crate::FileAnalysis;

/// Identifies one `fn` item: an index into `files` and an index into that
/// file's `parsed.fns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnKey {
    /// Index into the `FileAnalysis` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `ParsedFile::fns`.
    pub item: usize,
}

/// The workspace call graph. Function ids are indices into [`CallGraph::fns`].
#[derive(Debug)]
pub struct CallGraph {
    /// Every `fn` item in the workspace, in (file, item) order.
    pub fns: Vec<FnKey>,
    /// Per fn: resolved outgoing edges as (index into the caller's
    /// `FnItem::calls`, callee fn id), in call order.
    edges: Vec<Vec<(usize, usize)>>,
    /// Per fn: the ids of fns that call it (sorted, deduped).
    callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph for a set of analyzed files.
    pub fn build(files: &[FileAnalysis]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, item) in f.parsed.fns.iter().enumerate() {
                by_name.entry(item.name.as_str()).or_default().push(fns.len());
                fns.push(FnKey { file: fi, item: ii });
            }
        }
        let mut edges = vec![Vec::new(); fns.len()];
        let mut callers = vec![Vec::new(); fns.len()];
        for (id, key) in fns.iter().enumerate() {
            let caller = &files[key.file].parsed.fns[key.item];
            for (ci, call) in caller.calls.iter().enumerate() {
                if call.is_macro {
                    continue;
                }
                let Some(candidates) = by_name.get(call.name.as_str()) else { continue };
                let within_type = |ty: &str| -> Vec<usize> {
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| {
                            let k = fns[c];
                            files[k.file].parsed.fns[k.item].self_type.as_deref() == Some(ty)
                        })
                        .collect()
                };
                let type_hint = call
                    .path
                    .iter()
                    .rev()
                    .find(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()));
                let targets: Vec<usize> = if !call.is_method {
                    match type_hint.map(String::as_str) {
                        Some("Self") => match caller.self_type.as_deref() {
                            Some(ty) => within_type(ty),
                            None => continue,
                        },
                        Some(ty) => within_type(ty),
                        None => candidates
                            .iter()
                            .copied()
                            .filter(|&c| {
                                let k = fns[c];
                                files[k.file].parsed.fns[k.item].self_type.is_none()
                            })
                            .collect(),
                    }
                } else if call.receiver == ["self"] {
                    let Some(self_type) = caller.self_type.as_deref() else { continue };
                    within_type(self_type)
                } else {
                    continue;
                };
                for t in targets {
                    edges[id].push((ci, t));
                    callers[t].push(id);
                }
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        CallGraph { fns, edges, callers }
    }

    /// Number of fns in the graph.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the graph has no fns at all.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The parsed item behind fn id `id`.
    pub fn item<'a>(&self, files: &'a [FileAnalysis], id: usize) -> &'a FnItem {
        let k = self.fns[id];
        &files[k.file].parsed.fns[k.item]
    }

    /// The file index fn `id` lives in.
    pub fn file_of(&self, id: usize) -> usize {
        self.fns[id].file
    }

    /// Resolved outgoing edges of `id`: (call index, callee id) pairs.
    pub fn calls_from(&self, id: usize) -> &[(usize, usize)] {
        &self.edges[id]
    }

    /// Propagate a flag from callees up to callers until fixpoint: a fn
    /// becomes flagged when any of its resolved callees is flagged, unless
    /// `damp` says the fn neutralizes the property (e.g. it sorts before
    /// passing data on). Returns the final flags plus, for each fn flagged
    /// by propagation, the (call index, callee id) edge the flag arrived
    /// through — a witness for path reconstruction. Seeds keep `None`.
    pub fn propagate_up(
        &self,
        seeds: Vec<bool>,
        damp: &dyn Fn(usize) -> bool,
    ) -> (Vec<bool>, Vec<Option<(usize, usize)>>) {
        let mut flag = seeds;
        flag.resize(self.fns.len(), false);
        let mut witness: Vec<Option<(usize, usize)>> = vec![None; self.fns.len()];
        let mut work: Vec<usize> =
            flag.iter().enumerate().filter_map(|(i, &f)| if f { Some(i) } else { None }).collect();
        while let Some(t) = work.pop() {
            for &caller in &self.callers[t] {
                if flag[caller] || damp(caller) {
                    continue;
                }
                flag[caller] = true;
                witness[caller] =
                    self.edges[caller].iter().find(|&&(_, callee)| callee == t).copied();
                work.push(caller);
            }
        }
        (flag, witness)
    }

    /// The witness chain from `id` down to a seed: the fn ids visited after
    /// `id` (first hop first, seed last). Empty for seeds themselves.
    pub fn witness_path(&self, witness: &[Option<(usize, usize)>], id: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = id;
        while let Some((_, next)) = witness[cur] {
            // Defensive bound: witnesses form a DAG by construction, but a
            // cycle here must not hang the linter.
            if path.len() > self.fns.len() {
                break;
            }
            path.push(next);
            cur = next;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    fn files(sources: &[(&str, &str)]) -> Vec<FileAnalysis> {
        sources.iter().map(|(p, s)| analyze_source(p, s)).collect()
    }

    fn named(graph: &CallGraph, files: &[FileAnalysis], name: &str) -> usize {
        (0..graph.len())
            .find(|&i| graph.item(files, i).name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn plain_calls_resolve_across_files() {
        let fs = files(&[
            ("a.rs", "fn top() { helper(); }\n"),
            ("b.rs", "fn helper() { leaf(); }\nfn leaf() {}\n"),
        ]);
        let g = CallGraph::build(&fs);
        let top = named(&g, &fs, "top");
        let helper = named(&g, &fs, "helper");
        let leaf = named(&g, &fs, "leaf");
        assert_eq!(g.calls_from(top), [(0, helper)]);
        assert_eq!(g.calls_from(helper), [(0, leaf)]);
    }

    #[test]
    fn self_method_calls_resolve_within_the_self_type_only() {
        let fs = files(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A {\n    fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\n\
             impl B {\n    fn step(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        let go = named(&g, &fs, "go");
        assert_eq!(g.calls_from(go).len(), 1);
        let (_, callee) = g.calls_from(go)[0];
        assert_eq!(g.item(&fs, callee).self_type.as_deref(), Some("A"));
    }

    #[test]
    fn associated_calls_resolve_via_their_type_only() {
        let fs = files(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A {\n    fn new() {}\n}\n\
             impl B {\n    fn new() {}\n    fn fresh() { Self::new(); }\n}\n\
             fn go() { A::new(); }\n\
             fn foreign() { HashMap::new(); }\n",
        )]);
        let g = CallGraph::build(&fs);
        let go = named(&g, &fs, "go");
        assert_eq!(g.calls_from(go).len(), 1, "A::new must not alias B::new");
        let (_, callee) = g.calls_from(go)[0];
        assert_eq!(g.item(&fs, callee).self_type.as_deref(), Some("A"));

        let fresh = named(&g, &fs, "fresh");
        assert_eq!(g.calls_from(fresh).len(), 1);
        let (_, callee) = g.calls_from(fresh)[0];
        assert_eq!(g.item(&fs, callee).self_type.as_deref(), Some("B"));

        let foreign = named(&g, &fs, "foreign");
        assert!(
            g.calls_from(foreign).is_empty(),
            "HashMap::new must not alias any workspace fn new"
        );
    }

    #[test]
    fn plain_calls_resolve_to_free_fns_only() {
        let fs = files(&[(
            "a.rs",
            "struct Engine;\n\
             impl Engine {\n    fn snapshot(&self) {}\n}\n\
             fn snapshot() {}\n\
             fn go() { snapshot(); }\n",
        )]);
        let g = CallGraph::build(&fs);
        let go = named(&g, &fs, "go");
        assert_eq!(g.calls_from(go).len(), 1, "plain snapshot() must not alias the method");
        let (_, callee) = g.calls_from(go)[0];
        assert_eq!(g.item(&fs, callee).self_type, None);
    }

    #[test]
    fn foreign_method_calls_resolve_to_nothing() {
        let fs = files(&[(
            "a.rs",
            "fn go(x: &Thing) { x.snapshot(); }\n\
             struct Engine;\nimpl Engine {\n    fn snapshot(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&fs);
        let go = named(&g, &fs, "go");
        assert!(g.calls_from(go).is_empty(), "x.snapshot() must not alias Engine::snapshot");
    }

    #[test]
    fn propagation_climbs_callers_and_respects_damping() {
        let fs = files(&[(
            "a.rs",
            "fn source() {}\n\
             fn mid() { source(); }\n\
             fn damped() { source(); }\n\
             fn top() { mid(); }\n",
        )]);
        let g = CallGraph::build(&fs);
        let source = named(&g, &fs, "source");
        let mid = named(&g, &fs, "mid");
        let damped = named(&g, &fs, "damped");
        let top = named(&g, &fs, "top");
        let mut seeds = vec![false; g.len()];
        seeds[source] = true;
        let (flag, witness) = g.propagate_up(seeds, &|id| id == damped);
        assert!(flag[mid] && flag[top]);
        assert!(!flag[damped], "damping must stop propagation");
        assert_eq!(g.witness_path(&witness, top), [mid, source]);
    }
}
