//! Rendering a [`LintReport`] for humans, machines, and GitHub.
//!
//! * **text** — `path:line:col: rule: message` lines plus the per-rule
//!   allow-count audit: when `--deny-all` passes, the audit is the
//!   complete inventory of places the workspace overrides the linter, so
//!   reviewers can see suppression creep at a glance.
//! * **json** — the findings array (the CI artifact format; stable since
//!   PR 2).
//! * **github** — GitHub Actions workflow commands
//!   (`::warning file=…,line=…,col=…::…`), one per finding, so findings
//!   surface as inline annotations on pull requests.

use std::io::{self, Write};

use crate::LintReport;

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable findings + allow audit.
    Text,
    /// Machine-readable findings array.
    Json,
    /// GitHub Actions `::warning` annotations.
    Github,
}

impl Format {
    /// Parse a `--format` value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Render `report` to `out` in the requested format.
pub fn write_report(out: &mut dyn Write, report: &LintReport, format: Format) -> io::Result<()> {
    match format {
        Format::Text => write_text(out, report),
        Format::Json => {
            let json = serde_json::to_string_pretty(&report.findings)
                .map_err(|e| io::Error::other(e.to_string()))?;
            writeln!(out, "{json}")
        }
        Format::Github => write_github(out, report),
    }
}

fn write_text(out: &mut dyn Write, report: &LintReport) -> io::Result<()> {
    for f in &report.findings {
        writeln!(out, "{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message)?;
    }
    if report.findings.is_empty() {
        writeln!(out, "pmr-lint: clean")?;
    } else {
        writeln!(out, "pmr-lint: {} finding(s)", report.findings.len())?;
    }
    if !report.allows.is_empty() {
        let total: usize = report.allows.values().map(Vec::len).sum();
        writeln!(out, "\nallow audit ({total} justified allow(s)):")?;
        for (rule, sites) in &report.allows {
            let list: Vec<String> =
                sites.iter().map(|s| format!("{}:{}", s.path, s.line)).collect();
            writeln!(out, "  {:<20} {:>3}  {}", rule, sites.len(), list.join(", "))?;
        }
    }
    Ok(())
}

/// GitHub workflow commands interpret `%`, `\r` and `\n` as terminators;
/// they must be percent-encoded inside the message payload.
fn escape_annotation(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

fn write_github(out: &mut dyn Write, report: &LintReport) -> io::Result<()> {
    for f in &report.findings {
        writeln!(
            out,
            "::warning file={},line={},col={},title=pmr-lint {}::{}",
            f.path,
            f.line,
            f.col,
            f.rule,
            escape_annotation(&f.message)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_source, lint_files};

    fn rendered(source: &str, format: Format) -> String {
        let report = lint_files(&[analyze_source("crates/x/src/lib.rs", source)]);
        let mut buf = Vec::new();
        write_report(&mut buf, &report, format).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("report output is UTF-8")
    }

    const VIOLATING: &str = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";

    #[test]
    fn text_format_reports_findings_and_audit() {
        let out = rendered(VIOLATING, Format::Text);
        assert!(out.contains("crates/x/src/lib.rs:1:33: lib-unwrap:"), "got:\n{out}");
        assert!(out.contains("pmr-lint: 1 finding(s)"));

        let allowed = "fn f(x: Option<u32>) -> u32 {\n\
                       // pmr-lint: allow(lib-unwrap): caller guarantees Some\n\
                       x.unwrap()\n\
                       }\n";
        let out = rendered(allowed, Format::Text);
        assert!(out.contains("pmr-lint: clean"));
        assert!(out.contains("allow audit (1 justified allow(s)):"), "got:\n{out}");
        assert!(out.contains("lib-unwrap"));
        assert!(out.contains("crates/x/src/lib.rs:2"));
    }

    #[test]
    fn github_format_emits_warning_annotations() {
        let out = rendered(VIOLATING, Format::Github);
        assert!(
            out.starts_with(
                "::warning file=crates/x/src/lib.rs,line=1,col=33,title=pmr-lint lib-unwrap::"
            ),
            "got:\n{out}"
        );
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn github_messages_escape_newlines_and_percent() {
        assert_eq!(escape_annotation("a%b\nc"), "a%25b%0Ac");
    }

    #[test]
    fn json_format_is_the_findings_array() {
        let out = rendered(VIOLATING, Format::Json);
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&out).expect("valid JSON array");
        assert_eq!(parsed.len(), 1);
        assert!(out.contains("\"rule\": \"lib-unwrap\""), "got:\n{out}");
    }

    #[test]
    fn format_parse_accepts_exactly_the_three_formats() {
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("github"), Some(Format::Github));
        assert_eq!(Format::parse("xml"), None);
    }
}
