//! Inline suppression directives.
//!
//! A finding is silenced with a comment of the form
//!
//! ```text
//! // pmr-lint: allow(rule-name): why this is sound
//! ```
//!
//! naming one or more rules (`allow(rule-a, rule-b)`), followed by a
//! **required** justification. A trailing comment suppresses its own line;
//! a comment on its own line suppresses the next line of code. An allow
//! without a justification, or naming an unknown rule, is itself reported
//! (`bare-allow` / `unknown-rule`) — the suppression mechanism must not rot
//! into a silent opt-out.

use std::collections::HashMap;

use crate::lexer::{Comment, Tok};
use crate::rules::{is_known_rule, Finding};

/// The parsed suppressions of one file: rule name → suppressed lines.
#[derive(Debug, Clone, Default)]
pub struct SuppressionTable {
    by_rule: HashMap<String, Vec<u32>>,
    /// One `(rule, directive line)` entry per valid allow, in file order —
    /// the raw material of the per-rule allow-count audit.
    directives: Vec<(String, u32)>,
}

impl SuppressionTable {
    /// Whether `rule` is suppressed on `line`.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.by_rule.get(rule).is_some_and(|lines| lines.contains(&line))
    }

    /// Every valid justified allow in this file as `(rule, line)`, in file
    /// order. Bare or unknown-rule directives never appear here — they are
    /// findings, not allows.
    pub fn directives(&self) -> &[(String, u32)] {
        &self.directives
    }
}

/// Parse every `pmr-lint: allow(...)` directive out of a file's comments.
/// Returns the table plus the meta findings (bare allows, unknown rules).
pub fn parse_suppressions(
    rel_path: &str,
    comments: &[Comment],
    toks: &[Tok],
) -> (SuppressionTable, Vec<Finding>) {
    let mut table = SuppressionTable::default();
    let mut findings = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`) lex with a leading `/` or `!`; they
        // document the directive syntax, they don't invoke it.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(directive) = parse_directive(&c.text) else { continue };
        let target = target_line(c.line, toks);
        if directive.rules.is_empty() {
            findings.push(meta(rel_path, c.line, "bare-allow", "allow() names no rule"));
            continue;
        }
        if directive.justification.is_empty() {
            findings.push(meta(
                rel_path,
                c.line,
                "bare-allow",
                "allow directive without a justification — say why the violation is sound",
            ));
            continue;
        }
        for rule in directive.rules {
            if !is_known_rule(&rule) {
                findings.push(meta(
                    rel_path,
                    c.line,
                    "unknown-rule",
                    &format!("allow names unknown rule `{rule}`"),
                ));
                continue;
            }
            table.directives.push((rule.clone(), c.line));
            let lines = table.by_rule.entry(rule).or_default();
            lines.push(c.line);
            if let Some(next) = target {
                lines.push(next);
            }
        }
    }
    (table, findings)
}

struct Directive {
    rules: Vec<String>,
    justification: String,
}

/// Parse `pmr-lint: allow(a, b): justification` out of a comment body.
fn parse_directive(text: &str) -> Option<Directive> {
    let rest = text.split("pmr-lint:").nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_owned()).filter(|r| !r.is_empty()).collect();
    let justification =
        rest[close + 1..].trim_start_matches([':', '-', '—', ' ', '\t']).trim().to_owned();
    Some(Directive { rules, justification })
}

/// The line a directive at `line` protects besides itself: the next line
/// carrying a code token (for the comment-above style). A trailing comment
/// shares its line with code, which `is_suppressed` already covers.
fn target_line(line: u32, toks: &[Tok]) -> Option<u32> {
    toks.iter().map(|t| t.line).filter(|&l| l > line).min()
}

fn meta(rel_path: &str, line: u32, rule: &str, message: &str) -> Finding {
    Finding {
        rule: rule.to_owned(),
        path: rel_path.to_owned(),
        line,
        col: 1,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn directive_parses_rules_and_justification() {
        let d = parse_directive("pmr-lint: allow(wall-clock): progress display only").unwrap();
        assert_eq!(d.rules, ["wall-clock"]);
        assert_eq!(d.justification, "progress display only");
    }

    #[test]
    fn directive_parses_multiple_rules_and_dash_separator() {
        let d = parse_directive("pmr-lint: allow(lib-unwrap, wall-clock) — measured only").unwrap();
        assert_eq!(d.rules, ["lib-unwrap", "wall-clock"]);
        assert_eq!(d.justification, "measured only");
    }

    #[test]
    fn non_directives_are_ignored() {
        assert!(parse_directive("ordinary comment about pmr").is_none());
        assert!(parse_directive("pmr-lint: deny(x)").is_none());
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let lexed = lex("fn f() {\n// pmr-lint: allow(lib-unwrap): reason\n\nx.unwrap();\n}");
        let (table, findings) = parse_suppressions("p.rs", &lexed.comments, &lexed.toks);
        assert!(findings.is_empty());
        assert!(table.is_suppressed("lib-unwrap", 4));
        assert!(!table.is_suppressed("lib-unwrap", 5));
        assert!(!table.is_suppressed("wall-clock", 4));
    }

    #[test]
    fn missing_justification_and_unknown_rules_are_reported() {
        let lexed = lex("// pmr-lint: allow(lib-unwrap)\nx.unwrap();");
        let (table, findings) = parse_suppressions("p.rs", &lexed.comments, &lexed.toks);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bare-allow");
        assert!(!table.is_suppressed("lib-unwrap", 2));

        let lexed = lex("// pmr-lint: allow(no-such-rule): because\nx();");
        let (_, findings) = parse_suppressions("p.rs", &lexed.comments, &lexed.toks);
        assert_eq!(findings[0].rule, "unknown-rule");
    }
}
