//! A small hand-rolled Rust lexer — just enough token structure for the
//! lint rules, with none of `syn`'s weight (the vendor tree is offline-only
//! and carries no parser crates).
//!
//! The lexer is loss-tolerant by design: it only needs to distinguish
//! identifiers, punctuation, literals and lifetimes, attach line/column
//! positions, and keep comments separate (suppression directives live in
//! comments). Anything it cannot classify becomes punctuation, which no
//! rule matches on — an unknown construct can therefore never produce a
//! false positive, only a false negative.

/// The coarse kind of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A string, raw-string, byte-string or char literal.
    StrLit,
    /// A numeric literal.
    NumLit,
    /// A single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (a single char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A comment with its source position, `//`/`/*` markers stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text without its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order (suppression directives live here).
    pub comments: Vec<Comment>,
}

/// Lex a Rust source file. Never fails: malformed input degrades into
/// punctuation tokens, which no rule matches.
pub fn lex(source: &str) -> Lexed {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, col: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line, col),
                'r' | 'b' if self.raw_or_byte_string(line, col) => {}
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text: text.trim().to_owned(), line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { text: text.trim().to_owned(), line });
    }

    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::StrLit, String::new(), line, col);
    }

    /// Handle `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`. Returns false if
    /// the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1; // past the leading r or b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false; // an identifier like `run` or `baseline`
        }
        // `b"..."` has no hashes and is a plain (escaped) byte string.
        let raw = self.peek(0) == Some('r') || self.peek(1) == Some('r');
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes and opening quote
        }
        loop {
            match self.bump() {
                None => break,
                Some('\\') if !raw => {
                    self.bump();
                }
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::StrLit, String::new(), line, col);
        true
    }

    /// Disambiguate char literals (`'x'`, `'\n'`) from lifetimes (`'a`).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        let first = self.peek(1);
        let second = self.peek(2);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            self.bump(); // opening quote
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::StrLit, String::new(), line, col);
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for positions: consume digits, type suffixes and
            // separators; `1.0f64` lexes as one numeric token, `0..n` stops
            // at the range operator.
            if c.is_alphanumeric() || c == '_' || (c == '.' && self.peek(1) != Some('.')) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::NumLit, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn lexes_idents_and_punct() {
        let l = lex("let mut x = foo.bar();");
        assert_eq!(idents("let mut x = foo.bar();"), ["let", "mut", "x", "foo", "bar"]);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Punct && t.text == "."));
    }

    #[test]
    fn comments_are_kept_separately() {
        let l = lex("a(); // pmr-lint: allow(x): reason\n/* block */ b();");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "pmr-lint: allow(x): reason");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let l = lex(r#"let s = "unwrap() // not a comment"; t.unwrap();"#);
        assert_eq!(l.comments.len(), 0);
        let unwraps = l.toks.iter().filter(|t| t.text == "unwrap").count();
        assert_eq!(unwraps, 1, "the unwrap inside the string literal must not lex as an ident");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex("let s = r#\"has \"quotes\" and // slashes\"#; x()");
        assert_eq!(l.comments.len(), 0);
        assert!(l.toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::StrLit).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "x");
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let l = lex("1.5f64 + 0..n");
        assert_eq!(l.toks[0].kind, TokKind::NumLit);
        assert_eq!(l.toks[0].text, "1.5f64");
        assert!(l.toks.iter().any(|t| t.text == "n"));
    }
}
