//! The determinism-taint pass: `nondet-flow`.
//!
//! `nondet-iter` fires only when hash-ordered iteration and an
//! order-sensitive sink meet inside one statement or loop body. This pass
//! closes the cross-function gap: a fn that *iterates* a `HashMap` in
//! nondeterministic order taints every caller (transitively, through the
//! conservative call graph), and a caller that both invokes a tainted fn
//! and *serializes* — serde, writers, output macros — is reported at the
//! call site, with the witness chain down to the actual iteration.
//!
//! Soundness posture, consistent with the rest of the linter:
//!
//! * **sources** are hash iteration (`.iter()`/`.keys()`/`.values()`/… on
//!   an identifier known to be a `HashMap`/`HashSet`, or a `for` loop over
//!   one) in a fn with no sorting anywhere in its body — float reductions
//!   over hash collections are the same tokens, so they ride along;
//! * **damping**: a fn whose body sorts (or round-trips through a
//!   `BTreeMap`/`BTreeSet`) is assumed to canonicalize the order it got
//!   from callees and neither becomes tainted nor propagates taint;
//! * **sinks** are serialization only (`serialize`, `to_writer`,
//!   `serde_json::…`, `write!`/`writeln!`/`print!`/`println!`) — an
//!   intermediate `Vec::push` is order-*preserving*, not order-*observing*,
//!   and flagging it would double-report every `nondet-iter` site;
//! * a fn that is itself a source is `nondet-iter`'s business, not ours:
//!   this rule reports only the cross-function hop, so each defect has one
//!   home. Test fns are skipped as reporters (test output order is not a
//!   determinism contract) but still propagate taint to live callers.

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::parse::Call;
use crate::rules::{finding_at, is_sortish, Finding, ITER_METHODS};
use crate::FileAnalysis;

/// Whether a call is a serialization sink.
fn is_sink(call: &Call) -> bool {
    if call.is_macro {
        return matches!(call.name.as_str(), "write" | "writeln" | "print" | "println");
    }
    if call.path.iter().any(|p| p == "serde_json") {
        return true;
    }
    call.is_method && matches!(call.name.as_str(), "serialize" | "to_writer")
}

/// Per-fn facts: does the body iterate a hash collection, sort, serialize?
#[derive(Debug, Clone, Copy, Default)]
struct FnFacts {
    hash_iter: bool,
    sortish: bool,
    sink: bool,
}

fn facts(files: &[FileAnalysis], graph: &CallGraph, id: usize) -> FnFacts {
    let file = &files[graph.file_of(id)];
    let toks = &file.lexed.toks;
    let item = graph.item(files, id);
    let Some((open, close)) = item.body else { return FnFacts::default() };
    let close = close.min(toks.len().saturating_sub(1));
    let hash_idents = &file.hash_idents;

    let mut f = FnFacts::default();
    for i in open..=close {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if is_sortish(t) {
            f.sortish = true;
        }
        // `h.keys()` / `h.iter()` / … on a known hash identifier.
        if hash_idents.binary_search(&t.text).is_ok()
            && toks.get(i + 1).is_some_and(|u| u.text == ".")
            && toks.get(i + 2).is_some_and(|u| ITER_METHODS.contains(&u.text.as_str()))
            && toks.get(i + 3).is_some_and(|u| u.text == "(")
        {
            f.hash_iter = true;
        }
        // `for … in <header mentioning a hash identifier> {`.
        if t.text == "for" {
            for u in toks.iter().skip(i + 1).take_while(|u| u.text != "{" && u.text != ";") {
                if u.kind == TokKind::Ident && hash_idents.binary_search(&u.text).is_ok() {
                    f.hash_iter = true;
                }
            }
        }
    }
    f.sink = item.calls.iter().any(is_sink);
    f
}

/// Run the taint pass over the whole workspace.
pub(crate) fn check(files: &[FileAnalysis], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let per_fn: Vec<FnFacts> = (0..graph.len()).map(|id| facts(files, graph, id)).collect();
    let seeds: Vec<bool> = per_fn.iter().map(|f| f.hash_iter && !f.sortish).collect();
    let damp = |id: usize| per_fn[id].sortish;
    let (tainted, witness) = graph.propagate_up(seeds.clone(), &damp);

    for id in 0..graph.len() {
        let f = per_fn[id];
        let item = graph.item(files, id);
        if !f.sink || f.sortish || seeds[id] || item.is_test {
            continue;
        }
        let file = &files[graph.file_of(id)];
        for &(ci, callee) in graph.calls_from(id) {
            if !tainted[callee] {
                continue;
            }
            let call = &item.calls[ci];
            // Walk the witness chain to the iterating source for the report.
            let mut chain = vec![callee];
            chain.extend(graph.witness_path(&witness, callee));
            let source = *chain.last().unwrap_or(&callee);
            let src_item = graph.item(files, source);
            let src_file = &files[graph.file_of(source)];
            let path = chain
                .iter()
                .map(|&c| graph.item(files, c).name.as_str())
                .collect::<Vec<_>>()
                .join(" -> ");
            findings.push(finding_at(
                "nondet-flow",
                &file.rel_path,
                call.line,
                call.col,
                format!(
                    "`{}` serializes output but calls `{}`, which reaches hash-ordered \
                     iteration in `{}` ({}:{}) via {path}; sort before serializing or \
                     canonicalize the order at the source",
                    item.name, call.name, src_item.name, src_file.rel_path, src_item.line
                ),
            ));
        }
    }
}
