//! Fixture: both sides of the request/reply pair carry a justified allow
//! (the report lands on each struct's sender field).

use crossbeam::channel::{Receiver, Sender};

pub struct Client {
    // pmr-lint: allow(channel-cycle): the client drains resp_rx before every send, so the reply queue is empty when it parks
    req_tx: Sender<u32>,
    resp_rx: Receiver<u64>,
}

pub struct Server {
    req_rx: Receiver<u32>,
    // pmr-lint: allow(channel-cycle): replies go to an unbounded queue; the server can never park on resp_tx
    resp_tx: Sender<u64>,
}

impl Client {
    pub fn call(&self, v: u32) -> u64 {
        self.req_tx.send(v).ok();
        self.resp_rx.recv().unwrap_or(0)
    }
}

impl Server {
    pub fn serve(&self) {
        while let Ok(v) = self.req_rx.recv() {
            self.resp_tx.send(u64::from(v)).ok();
        }
    }
}
