//! Fixture: the cross-function flow carries a justified allow at the call
//! site the report lands on.

use std::collections::HashMap;
use std::io::Write;

fn first_key(m: &HashMap<u32, f64>) -> Option<u32> {
    let mut found = None;
    for k in m.keys() {
        if found.is_none() {
            found = Some(*k);
        }
    }
    found
}

pub fn report(m: &HashMap<u32, f64>, out: &mut dyn Write) {
    // pmr-lint: allow(nondet-flow): diagnostic-only output, explicitly exempt from the byte-identity contract
    if let Some(k) = first_key(m) {
        writeln!(out, "first={k}").ok();
    }
}
