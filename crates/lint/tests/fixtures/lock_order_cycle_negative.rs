//! Fixture: both methods honor one global order — debits before credits.

use parking_lot::Mutex;

pub struct Ledger {
    debits: Mutex<u64>,
    credits: Mutex<u64>,
}

impl Ledger {
    pub fn transfer(&self) -> u64 {
        let d = self.debits.lock();
        let c = self.credits.lock();
        *d + *c
    }

    pub fn audit(&self) -> u64 {
        let d = self.debits.lock();
        let c = self.credits.lock();
        *d - *c
    }
}
