//! Violation silenced by a justified allow directive.

pub fn first(xs: &[u32]) -> u32 {
    // pmr-lint: allow(lib-unwrap): fixture — caller guarantees a non-empty slice
    *xs.first().unwrap()
}
