//! Fixture: the reply direction is non-blocking (`try_send`), so the wait
//! cycle cannot close.

use crossbeam::channel::{Receiver, Sender};

pub struct Client {
    req_tx: Sender<u32>,
    resp_rx: Receiver<u64>,
}

pub struct Server {
    req_rx: Receiver<u32>,
    resp_tx: Sender<u64>,
}

impl Client {
    pub fn call(&self, v: u32) -> u64 {
        self.req_tx.send(v).ok();
        self.resp_rx.recv().unwrap_or(0)
    }
}

impl Server {
    pub fn serve(&self) {
        while let Ok(v) = self.req_rx.recv() {
            let _ = self.resp_tx.try_send(u64::from(v));
        }
    }
}
