//! Fixture: the reversed order carries a justified inline allow (at the
//! cycle's earliest witness edge, where the report lands).

use parking_lot::Mutex;

pub struct Ledger {
    debits: Mutex<u64>,
    credits: Mutex<u64>,
}

impl Ledger {
    pub fn transfer(&self) -> u64 {
        let d = self.debits.lock();
        // pmr-lint: allow(lock-order-cycle): audit only runs at shutdown, after every transfer thread has joined
        let c = self.credits.lock();
        *d + *c
    }

    pub fn audit(&self) -> u64 {
        let c = self.credits.lock();
        let d = self.debits.lock();
        *d - *c
    }
}
