//! Violation silenced by a justified allow directive.
use std::time::Instant;

pub fn stamp() -> f64 {
    // pmr-lint: allow(wall-clock): fixture — feeds a debug log line, never a result artifact
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
