//! Deliberate violation: OS entropy instead of an explicit seed.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
