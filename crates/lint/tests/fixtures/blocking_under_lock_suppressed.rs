//! Fixture: the violation carries a justified inline allow.

use crossbeam::channel::Sender;
use parking_lot::Mutex;

pub struct Hub {
    seq: Mutex<u64>,
    tx: Sender<u64>,
}

impl Hub {
    pub fn publish(&self) {
        let guard = self.seq.lock();
        // pmr-lint: allow(blocking-under-lock): the consumer never takes seq, so the send cannot wait on this guard
        self.tx.send(*guard).ok();
    }
}
