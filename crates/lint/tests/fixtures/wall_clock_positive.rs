//! Deliberate violation: a wall-clock read outside the timing layer.
use std::time::Instant;

pub fn stamp() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
