//! Fixture: the guard is dropped (its block ends) before the send blocks.

use crossbeam::channel::Sender;
use parking_lot::Mutex;

pub struct Hub {
    seq: Mutex<u64>,
    tx: Sender<u64>,
}

impl Hub {
    pub fn publish(&self) {
        let value = {
            let guard = self.seq.lock();
            *guard
        };
        self.tx.send(value).ok();
    }
}
