//! Fixture: the callee canonicalizes the hash order (sorts) before
//! returning, damping the taint — the serializing caller is clean.

use std::collections::HashMap;
use std::io::Write;

fn first_key(m: &HashMap<u32, f64>) -> Option<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys.first().copied()
}

pub fn report(m: &HashMap<u32, f64>, out: &mut dyn Write) {
    if let Some(k) = first_key(m) {
        writeln!(out, "first={k}").ok();
    }
}
