//! Clean: values are pulled into a canonical order before summation.
use std::collections::HashMap;

pub fn total(m: HashMap<u32, f64>) -> f64 {
    let mut vs: Vec<f64> = m.values().copied().collect();
    vs.sort_by(f64::total_cmp);
    vs.iter().sum::<f64>()
}
