//! Fixture: the iteration and the serialization live in *different* fns.
//! `nondet-iter` sees no sink next to the iteration and no iteration next
//! to the sink; only the call-graph taint pass connects them.

use std::collections::HashMap;
use std::io::Write;

fn first_key(m: &HashMap<u32, f64>) -> Option<u32> {
    let mut found = None;
    for k in m.keys() {
        if found.is_none() {
            found = Some(*k);
        }
    }
    found
}

pub fn report(m: &HashMap<u32, f64>, out: &mut dyn Write) {
    if let Some(k) = first_key(m) {
        writeln!(out, "first={k}").ok();
    }
}
