//! Fixture: a blocking channel send while a parking_lot guard is live.

use crossbeam::channel::Sender;
use parking_lot::Mutex;

pub struct Hub {
    seq: Mutex<u64>,
    tx: Sender<u64>,
}

impl Hub {
    pub fn publish(&self) {
        let guard = self.seq.lock();
        self.tx.send(*guard).ok();
    }
}
