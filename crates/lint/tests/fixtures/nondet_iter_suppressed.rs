//! Violation silenced by a justified allow directive.
use std::collections::HashMap;

pub fn export(m: HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    // pmr-lint: allow(nondet-iter): fixture — the caller re-sorts before serializing
    for k in m.keys() {
        out.push(*k);
    }
    out
}
