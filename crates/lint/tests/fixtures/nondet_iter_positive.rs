//! Deliberate violation: hash-ordered iteration feeds a Vec without a sort.
use std::collections::HashMap;

pub fn export(m: HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}
