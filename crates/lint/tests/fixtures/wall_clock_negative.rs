//! Clean: a logical clock; no wall-clock read anywhere.

pub fn tick(counter: &mut u64) -> u64 {
    *counter += 1;
    *counter
}
