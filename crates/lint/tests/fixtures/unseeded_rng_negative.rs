//! Clean: every random decision flows from an explicit seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
