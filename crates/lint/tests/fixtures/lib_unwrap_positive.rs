//! Deliberate violation: a panicking unwrap on a library path.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
