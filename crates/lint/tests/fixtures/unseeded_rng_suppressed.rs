//! Violation silenced by a justified allow directive.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // pmr-lint: allow(unseeded-rng): fixture — result is discarded, never recorded
    rng.gen()
}
