//! Fixture: a request/reply pair where both sides block in both
//! directions — a full forward queue plus an un-drained reply queue parks
//! both threads.

use crossbeam::channel::{Receiver, Sender};

pub struct Client {
    req_tx: Sender<u32>,
    resp_rx: Receiver<u64>,
}

pub struct Server {
    req_rx: Receiver<u32>,
    resp_tx: Sender<u64>,
}

impl Client {
    pub fn call(&self, v: u32) -> u64 {
        self.req_tx.send(v).ok();
        self.resp_rx.recv().unwrap_or(0)
    }
}

impl Server {
    pub fn serve(&self) {
        while let Ok(v) = self.req_rx.recv() {
            self.resp_tx.send(u64::from(v)).ok();
        }
    }
}
