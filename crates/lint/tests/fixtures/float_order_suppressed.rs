//! Violation silenced by a justified multi-rule allow directive.
use std::collections::HashMap;

pub fn total(m: HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() // pmr-lint: allow(float-order, nondet-iter): fixture — the sum is compared with a tolerance, not serialized
}
