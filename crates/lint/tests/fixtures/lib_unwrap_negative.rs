//! Clean: the absent case is handled, not panicked on.

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
