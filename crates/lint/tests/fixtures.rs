//! Fixture-driven end-to-end tests: one deliberately violating, one clean
//! and one suppressed source per rule, linted under a library-looking path.
//! The fixtures live in `tests/fixtures/`, a directory `workspace_files`
//! deliberately skips so the live workspace stays `--deny-all`-clean.

use std::path::Path;

use pmr_lint::{
    analyze_source, find_workspace_root, lint_source, lint_workspace, rel_path, workspace_files,
    Finding,
};

/// A path the linter treats as library code (every rule active).
const LIB_PATH: &str = "crates/fixture/src/lib.rs";

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

/// Assert the positive fixture trips `rule`, and that the negative and
/// suppressed variants lint completely clean.
fn check_rule(rule: &str, stem: &str) {
    let positive = lint_source(LIB_PATH, &fixture(&format!("{stem}_positive.rs")));
    assert!(
        rules_of(&positive).contains(&rule),
        "{stem}_positive.rs must trip {rule}, got {positive:?}"
    );
    let negative = lint_source(LIB_PATH, &fixture(&format!("{stem}_negative.rs")));
    assert!(negative.is_empty(), "{stem}_negative.rs must be clean, got {negative:?}");
    let suppressed = lint_source(LIB_PATH, &fixture(&format!("{stem}_suppressed.rs")));
    assert!(suppressed.is_empty(), "{stem}_suppressed.rs must be clean, got {suppressed:?}");
}

#[test]
fn nondet_iter_fixtures() {
    check_rule("nondet-iter", "nondet_iter");
}

#[test]
fn unseeded_rng_fixtures() {
    check_rule("unseeded-rng", "unseeded_rng");
}

#[test]
fn wall_clock_fixtures() {
    check_rule("wall-clock", "wall_clock");
}

#[test]
fn lib_unwrap_fixtures() {
    check_rule("lib-unwrap", "lib_unwrap");
}

#[test]
fn float_order_fixtures() {
    check_rule("float-order", "float_order");
}

#[test]
fn blocking_under_lock_fixtures() {
    check_rule("blocking-under-lock", "blocking_under_lock");
}

#[test]
fn lock_order_cycle_fixtures() {
    check_rule("lock-order-cycle", "lock_order_cycle");
}

#[test]
fn channel_cycle_fixtures() {
    check_rule("channel-cycle", "channel_cycle");
}

#[test]
fn nondet_flow_fixtures() {
    check_rule("nondet-flow", "nondet_flow");
}

/// The cross-function gap the taint pass exists to close: the iteration
/// and the serialization live in different fns, so the per-statement
/// `nondet-iter` rule stays silent — only `nondet-flow` connects them
/// through the call graph.
#[test]
fn nondet_flow_catches_the_hop_nondet_iter_misses() {
    let findings = lint_source(LIB_PATH, &fixture("nondet_flow_positive.rs"));
    let rules = rules_of(&findings);
    assert!(rules.contains(&"nondet-flow"), "the flow pass must fire: {findings:?}");
    assert!(
        !rules.contains(&"nondet-iter"),
        "the per-statement rule must stay silent on the split version: {findings:?}"
    );
}

/// The wall-clock positive fixture is sanctioned inside the timing layer —
/// the same source, a different path, no finding.
#[test]
fn wall_clock_fixture_is_clean_in_the_timing_layer() {
    let src = fixture("wall_clock_positive.rs");
    assert!(lint_source("crates/core/src/timing.rs", &src).is_empty());
    assert!(lint_source("crates/bench/src/bin/calibrate.rs", &src).is_empty());
}

/// The violating fixtures are panic/determinism hazards on a library path,
/// but the same code is fine in an integration test or binary (except the
/// rules that apply everywhere).
#[test]
fn lib_unwrap_fixture_is_clean_outside_library_code() {
    let src = fixture("lib_unwrap_positive.rs");
    assert!(lint_source("crates/fixture/tests/it.rs", &src).is_empty());
    assert!(lint_source("crates/fixture/src/bin/tool.rs", &src).is_empty());
}

/// Parser round trip over every workspace `.rs` file plus the fixtures:
/// the item parser never panics, and every recovered span stays inside
/// the file's token stream.
#[test]
fn parser_round_trips_the_whole_workspace() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root exists");
    let mut paths = workspace_files(&root);
    let fixture_dir = here.join("tests/fixtures");
    let mut fixtures: Vec<_> = std::fs::read_dir(&fixture_dir)
        .expect("fixture dir exists")
        .flatten()
        .map(|e| e.path())
        .collect();
    fixtures.sort();
    paths.extend(fixtures);
    let mut fns_seen = 0usize;
    for path in paths {
        let source = std::fs::read_to_string(&path).expect("workspace file reads");
        let rel = rel_path(&root, &path);
        let analysis = analyze_source(&rel, &source); // must not panic
        let n_toks = analysis.lexed.toks.len();
        for f in &analysis.parsed.fns {
            fns_seen += 1;
            assert!(f.sig_start < n_toks, "{rel}: fn `{}` sig token in bounds", f.name);
            if let Some((open, close)) = f.body {
                assert!(open <= close, "{rel}: fn `{}` body open <= close", f.name);
                assert!(close < n_toks, "{rel}: fn `{}` body close in bounds", f.name);
            }
            for c in &f.calls {
                assert!(c.tok < n_toks, "{rel}: call `{}` token in bounds", c.name);
            }
        }
        for field in &analysis.parsed.fields {
            assert!(!field.owner.is_empty(), "{rel}: field `{}` has an owner", field.name);
        }
    }
    assert!(fns_seen > 500, "the workspace parse recovered {fns_seen} fns — suspiciously few");
}

/// The contract CI enforces with `--deny-all`: the live workspace has no
/// findings — every violation has been fixed or carries a justified allow.
#[test]
fn live_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root exists");
    let findings = lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "the workspace must lint clean under --deny-all; fix or add a justified \
         `// pmr-lint: allow(...)` for each of:\n{findings:#?}"
    );
}
