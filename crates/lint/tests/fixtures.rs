//! Fixture-driven end-to-end tests: one deliberately violating, one clean
//! and one suppressed source per rule, linted under a library-looking path.
//! The fixtures live in `tests/fixtures/`, a directory `workspace_files`
//! deliberately skips so the live workspace stays `--deny-all`-clean.

use std::path::Path;

use pmr_lint::{find_workspace_root, lint_source, lint_workspace, Finding};

/// A path the linter treats as library code (every rule active).
const LIB_PATH: &str = "crates/fixture/src/lib.rs";

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

/// Assert the positive fixture trips `rule`, and that the negative and
/// suppressed variants lint completely clean.
fn check_rule(rule: &str, stem: &str) {
    let positive = lint_source(LIB_PATH, &fixture(&format!("{stem}_positive.rs")));
    assert!(
        rules_of(&positive).contains(&rule),
        "{stem}_positive.rs must trip {rule}, got {positive:?}"
    );
    let negative = lint_source(LIB_PATH, &fixture(&format!("{stem}_negative.rs")));
    assert!(negative.is_empty(), "{stem}_negative.rs must be clean, got {negative:?}");
    let suppressed = lint_source(LIB_PATH, &fixture(&format!("{stem}_suppressed.rs")));
    assert!(suppressed.is_empty(), "{stem}_suppressed.rs must be clean, got {suppressed:?}");
}

#[test]
fn nondet_iter_fixtures() {
    check_rule("nondet-iter", "nondet_iter");
}

#[test]
fn unseeded_rng_fixtures() {
    check_rule("unseeded-rng", "unseeded_rng");
}

#[test]
fn wall_clock_fixtures() {
    check_rule("wall-clock", "wall_clock");
}

#[test]
fn lib_unwrap_fixtures() {
    check_rule("lib-unwrap", "lib_unwrap");
}

#[test]
fn float_order_fixtures() {
    check_rule("float-order", "float_order");
}

/// The wall-clock positive fixture is sanctioned inside the timing layer —
/// the same source, a different path, no finding.
#[test]
fn wall_clock_fixture_is_clean_in_the_timing_layer() {
    let src = fixture("wall_clock_positive.rs");
    assert!(lint_source("crates/core/src/timing.rs", &src).is_empty());
    assert!(lint_source("crates/bench/src/bin/calibrate.rs", &src).is_empty());
}

/// The violating fixtures are panic/determinism hazards on a library path,
/// but the same code is fine in an integration test or binary (except the
/// rules that apply everywhere).
#[test]
fn lib_unwrap_fixture_is_clean_outside_library_code() {
    let src = fixture("lib_unwrap_positive.rs");
    assert!(lint_source("crates/fixture/tests/it.rs", &src).is_empty());
    assert!(lint_source("crates/fixture/src/bin/tool.rs", &src).is_empty());
}

/// The contract CI enforces with `--deny-all`: the live workspace has no
/// findings — every violation has been fixed or carries a justified allow.
#[test]
fn live_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root exists");
    let findings = lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "the workspace must lint clean under --deny-all; fix or add a justified \
         `// pmr-lint: allow(...)` for each of:\n{findings:#?}"
    );
}
