//! Simulation configuration and scale presets.

use serde::{Deserialize, Serialize};

use pmr_text::Language;

/// How large a corpus to generate, relative to the paper's dataset
/// (60 users, 2.07M tweets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalePreset {
    /// Tiny corpus for unit tests and CI smoke runs (~2k tweets).
    Smoke,
    /// Laptop-scale default (~50–80k tweets), the scale at which
    /// EXPERIMENTS.md records results.
    Default,
    /// Approaches the paper's magnitudes (~1M+ tweets). Slow.
    Full,
}

impl ScalePreset {
    /// Multiplier applied to per-user tweet-volume targets, relative to
    /// `Smoke`.
    fn volume_factor(self) -> f64 {
        match self {
            ScalePreset::Smoke => 1.0,
            ScalePreset::Default => 6.0,
            ScalePreset::Full => 120.0,
        }
    }
}

/// Per-user-band activity targets. The simulator plans, per user, how many
/// original tweets and retweets she posts and how many tweets she receives;
/// the bands mirror the structure of the paper's Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityBand {
    /// Number of users to generate in this band.
    pub users: usize,
    /// Range of target posting ratios |R∪T| / |E| (uniform).
    pub posting_ratio: (f64, f64),
    /// Range of target outgoing volumes |R∪T| (uniform, before scaling).
    pub outgoing: (usize, usize),
    /// Fraction of outgoing tweets that are retweets (uniform range).
    pub retweet_share: (f64, f64),
}

/// Full simulator configuration. Construct via [`SimConfig::preset`] and
/// tweak fields as needed; every field is plain data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Activity bands, one per intended user group. The paper's dataset has
    /// 20 IS users (ratio ≤ 0.13), 20 BU users (0.76–1.16), 9 IP users
    /// (ratio > 2) and 11 extra users (1.2–2.0) that only join "All Users".
    pub bands: Vec<ActivityBand>,
    /// Number of *background* users: accounts that are never evaluated but
    /// populate the rest of the social graph, exactly as the paper's 60
    /// users sit inside the full 2009 Twitter graph. They supply the
    /// low-volume followees that information producers need (IP users
    /// receive far less than they post) and the follower mass behind the
    /// `F` representation source.
    pub background_users: usize,
    /// Outgoing-volume range of background users (before scaling).
    pub background_outgoing: (usize, usize),
    /// Fraction of a background user's outgoing posts that are retweets.
    pub background_retweet_share: f64,
    /// Number of latent interest topics in the generative world.
    pub num_topics: usize,
    /// Dirichlet concentration of user interest profiles (small = focused).
    pub interest_alpha: f64,
    /// Topic words per topic per language.
    pub topic_words_per_language: usize,
    /// Multi-word collocations per topic per language (these reward models
    /// that capture word order, as token sequences do in real text).
    pub phrases_per_topic: usize,
    /// Shared (topic-neutral) vocabulary size per language.
    pub common_words_per_language: usize,
    /// Tweet length range in tokens.
    pub tweet_len: (usize, usize),
    /// Probability that the next emission is a topic collocation.
    pub p_phrase: f64,
    /// Probability that a tweet embeds one of its topic's *headlines* — a
    /// full 5–8 word sentence repeated verbatim across the platform (news
    /// headlines, memes, quoted one-liners: the RT culture of 2009
    /// Twitter). Verbatim repetition is what higher-order n-gram models
    /// feed on in real text.
    pub p_headline: f64,
    /// Headlines per topic per language.
    pub headlines_per_topic: usize,
    /// Probability that the next emission is a topic word (vs. common word).
    pub p_topic_word: f64,
    /// Probability of appending a topic-correlated hashtag to a tweet.
    pub p_hashtag: f64,
    /// Probability of a leading `@mention` (conversational tweet).
    pub p_mention: f64,
    /// Probability of embedding a URL.
    pub p_url: f64,
    /// Probability of appending an emoticon.
    pub p_emoticon: f64,
    /// Probability that any given word is noised (misspelling/elongation).
    pub p_noise: f64,
    /// Probability that a tweet carries one of its author's personal style
    /// tokens (slang, habitual tags, client signatures). Style tokens are
    /// what lets a user's past retweets match *future posts of the same
    /// authors* beyond pure topicality — the reason the paper finds R the
    /// strongest representation source.
    pub p_author_style: f64,
    /// Log-scale spread of per-(reader, author) retweet affinity: users
    /// repeatedly repost the same few accounts. 0 disables the effect.
    pub author_affinity_sigma: f64,
    /// Probability that an original tweet is off-interest "chatter" — a
    /// conversation or aside about a uniformly random topic. This is why
    /// the paper finds a user's tweets (T) noisier than her retweets (R):
    /// people chat; they retweet what genuinely interests them.
    pub p_chatter: f64,
    /// Per-language share of users, `(language, weight)`. Mirrors Table 3.
    pub language_mix: Vec<(Language, f64)>,
    /// Probability that a tweet is written in the user's secondary language.
    pub p_secondary_language: f64,
    /// Relative weight of cross-language content in the discovery retweet
    /// pool. Users overwhelmingly search and repost in their own language.
    pub cross_language_discount: f64,
    /// Sharpness of the retweet decision: weights exp(γ·similarity) are used
    /// to choose which incoming tweets a user reposts. Higher = retweets are
    /// more strongly concentrated on the user's interests.
    pub retweet_gamma: f64,
    /// How strongly retweet sharpness couples to posting activity, in
    /// [0, 1]. The paper's interpretation of its user-type result is that
    /// "the more information a user produces, the more reliable are the
    /// models that represent her interests": passive information seekers
    /// also repost viral or social content, diluting the interest signal.
    /// The effective sharpness is
    /// `γ · (1 − c + c · min(1, posting_ratio))` with coupling `c`.
    pub gamma_activity_coupling: f64,
    /// Fraction of a user's retweets drawn from her followee feed; the rest
    /// come from a global "discovery" pool (search/trending), which is how
    /// real users repost content their snapshot feed does not contain.
    pub retweet_from_feed: f64,
    /// Hard cap on the share of a user's feed she may retweet, so that
    /// never-retweeted incoming items (the evaluation's negatives) always
    /// remain available.
    pub max_feed_retweet_share: f64,
    /// Probability that a follow edge is reciprocated when interests are
    /// similar (scaled down for dissimilar pairs).
    pub p_reciprocal: f64,
    /// Length of the simulated timeline in abstract time units.
    pub horizon: u64,
}

impl SimConfig {
    /// The paper's band structure at the requested scale.
    pub fn preset(scale: ScalePreset, seed: u64) -> Self {
        let f = scale.volume_factor();
        let out = |lo: usize, hi: usize| {
            (((lo as f64 * f) as usize).max(8), ((hi as f64 * f) as usize).max(16))
        };
        SimConfig {
            seed,
            bands: vec![
                // IS: 20 users, low posting ratio, modest outgoing.
                ActivityBand {
                    users: 20,
                    posting_ratio: (0.04, 0.13),
                    outgoing: out(18, 48),
                    retweet_share: (0.45, 0.65),
                },
                // BU: 20 users, ratio near 1.
                ActivityBand {
                    users: 20,
                    posting_ratio: (0.76, 1.16),
                    outgoing: out(14, 60),
                    retweet_share: (0.5, 0.75),
                },
                // IP: 9 users, ratio > 2, heavy outgoing.
                ActivityBand {
                    users: 9,
                    posting_ratio: (2.2, 6.0),
                    outgoing: out(30, 130),
                    retweet_share: (0.7, 0.95),
                },
                // Extra: 11 users with ratios between BU and IP; they only
                // participate in the "All Users" group, as in the paper.
                ActivityBand {
                    users: 11,
                    posting_ratio: (1.2, 2.0),
                    outgoing: out(14, 50),
                    retweet_share: (0.5, 0.8),
                },
            ],
            background_users: match scale {
                ScalePreset::Smoke => 150,
                ScalePreset::Default => 240,
                ScalePreset::Full => 420,
            },
            background_outgoing: (((3.0 * f) as usize).max(2), ((15.0 * f) as usize).max(6)),
            background_retweet_share: 0.3,
            num_topics: 40,
            interest_alpha: 0.08,
            topic_words_per_language: 60,
            phrases_per_topic: 12,
            common_words_per_language: 160,
            tweet_len: (6, 18),
            p_phrase: 0.30,
            p_headline: 0.30,
            headlines_per_topic: 6,
            p_topic_word: 0.40,
            p_hashtag: 0.25,
            p_mention: 0.12,
            p_url: 0.08,
            p_emoticon: 0.10,
            p_noise: 0.06,
            p_chatter: 0.5,
            p_author_style: 0.45,
            author_affinity_sigma: 0.0,
            language_mix: vec![
                (Language::English, 0.827),
                (Language::Japanese, 0.034),
                (Language::Chinese, 0.017),
                (Language::Portuguese, 0.024),
                (Language::Thai, 0.017),
                (Language::French, 0.017),
                (Language::Korean, 0.017),
                (Language::German, 0.017),
                (Language::Indonesian, 0.017),
                (Language::Spanish, 0.013),
            ],
            p_secondary_language: 0.05,
            cross_language_discount: 0.1,
            retweet_gamma: 12.0,
            gamma_activity_coupling: 0.6,
            retweet_from_feed: 0.75,
            max_feed_retweet_share: 0.15,
            p_reciprocal: 0.35,
            horizon: 1_000_000,
        }
    }

    /// Number of *evaluated* users (sum of the bands; 60 in the presets).
    pub fn total_users(&self) -> usize {
        self.bands.iter().map(|b| b.users).sum()
    }

    /// Total population including background users.
    pub fn total_population(&self) -> usize {
        self.total_users() + self.background_users
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::preset(ScalePreset::Default, 42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sixty_users() {
        for scale in [ScalePreset::Smoke, ScalePreset::Default, ScalePreset::Full] {
            assert_eq!(SimConfig::preset(scale, 1).total_users(), 60);
        }
    }

    #[test]
    fn band_structure_mirrors_the_paper() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.bands[0].users, 20); // IS
        assert_eq!(cfg.bands[1].users, 20); // BU
        assert_eq!(cfg.bands[2].users, 9); // IP
        assert_eq!(cfg.bands[3].users, 11); // extra, All-Users-only
        assert!(cfg.bands[0].posting_ratio.1 <= 0.13);
        assert!(cfg.bands[2].posting_ratio.0 > 2.0);
    }

    #[test]
    fn language_mix_is_normalizable_and_english_dominant() {
        let cfg = SimConfig::default();
        let total: f64 = cfg.language_mix.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.9 && total <= 1.01, "weights should be near a distribution: {total}");
        let (lang, w) = cfg.language_mix[0];
        assert_eq!(lang, Language::English);
        assert!(w > 0.8);
    }

    #[test]
    fn scales_are_ordered() {
        let smoke = SimConfig::preset(ScalePreset::Smoke, 1);
        let full = SimConfig::preset(ScalePreset::Full, 1);
        assert!(full.bands[0].outgoing.1 > smoke.bands[0].outgoing.1 * 50);
    }
}
