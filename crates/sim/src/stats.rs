//! Dataset statistics — the paper's Table 2 and Table 3.

use serde::{Deserialize, Serialize};

use pmr_text::{clean, lang, Language};

use crate::corpus::Corpus;
use crate::usertype::{Partition, UserGroup};

/// Min/mean/max of a per-user quantity plus its group total, as reported in
/// every block of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeStats {
    /// Sum over the group's users.
    pub total: usize,
    /// Minimum per user.
    pub min: usize,
    /// Mean per user.
    pub mean: f64,
    /// Maximum per user.
    pub max: usize,
}

impl VolumeStats {
    fn from_counts(counts: &[usize]) -> VolumeStats {
        let Some((&first, rest)) = counts.split_first() else {
            return VolumeStats { total: 0, min: 0, mean: 0.0, max: 0 };
        };
        let total: usize = counts.iter().sum();
        let (min, max) = rest.iter().fold((first, first), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        VolumeStats { total, min, mean: total as f64 / counts.len() as f64, max }
    }
}

/// One column of Table 2: the statistics of a user group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupStats {
    /// The group.
    pub group: UserGroup,
    /// Number of users in the group.
    pub users: usize,
    /// Outgoing tweets `R ∪ T`.
    pub outgoing: VolumeStats,
    /// Retweets `R`.
    pub retweets: VolumeStats,
    /// Incoming tweets `E`.
    pub incoming: VolumeStats,
    /// Followers' tweets `F`.
    pub followers_tweets: VolumeStats,
}

/// The full Table 2: one [`GroupStats`] per experiment group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Columns in the paper's order: IS, BU, IP, All Users.
    pub groups: Vec<GroupStats>,
}

impl Table2 {
    /// Compute the table for a corpus under a measured partition.
    pub fn compute(corpus: &Corpus, partition: &Partition) -> Table2 {
        let order = [UserGroup::IS, UserGroup::BU, UserGroup::IP, UserGroup::All];
        let groups = order
            .into_iter()
            .map(|g| {
                let members = partition.members(g);
                let outgoing: Vec<usize> =
                    members.iter().map(|&u| corpus.outgoing_of(u).len()).collect();
                let retweets: Vec<usize> =
                    members.iter().map(|&u| corpus.retweets_of(u).len()).collect();
                let incoming: Vec<usize> =
                    members.iter().map(|&u| corpus.incoming_of(u).len()).collect();
                let followers: Vec<usize> =
                    members.iter().map(|&u| corpus.followers_tweets_of(u).len()).collect();
                GroupStats {
                    group: g,
                    users: members.len(),
                    outgoing: VolumeStats::from_counts(&outgoing),
                    retweets: VolumeStats::from_counts(&retweets),
                    incoming: VolumeStats::from_counts(&incoming),
                    followers_tweets: VolumeStats::from_counts(&followers),
                }
            })
            .collect();
        Table2 { groups }
    }

    /// The column for one group.
    pub fn group(&self, g: UserGroup) -> &GroupStats {
        // pmr-lint: allow(lib-unwrap): the constructor iterates UserGroup::ALL, so every group has a column
        self.groups.iter().find(|s| s.group == g).expect("all four groups are computed")
    }
}

/// One row of Table 3: a language with its tweet count and relative
/// frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanguageRow {
    /// The detected language.
    pub language: Language,
    /// Number of tweets assigned to it.
    pub tweets: usize,
    /// Share of the whole corpus.
    pub relative_frequency: f64,
}

/// Table 3: language distribution via the paper's pipeline — clean every
/// tweet of Twitter markup, pool per user, detect the user's prevalent
/// language, and assign all the user's tweets to it.
pub fn language_distribution(corpus: &Corpus) -> Vec<LanguageRow> {
    let tokenizer = pmr_text::Tokenizer::default();
    let mut counts: std::collections::HashMap<Language, usize> = std::collections::HashMap::new();
    let total = corpus.len();
    for u in corpus.user_ids() {
        let own: Vec<crate::tweet::TweetId> = corpus.outgoing_of(u);
        let cleaned: Vec<String> =
            own.iter().map(|&id| clean::clean_with(&tokenizer, &corpus.tweet(id).text)).collect();
        let pooled = cleaned.join(" ");
        let detected = lang::detect_language(&pooled);
        *counts.entry(detected).or_insert(0) += own.len();
    }
    // Tweets are assigned per author; the corpus total is the denominator,
    // as in the paper's "91% of all tweets" framing.
    let mut rows: Vec<LanguageRow> = counts
        .into_iter()
        .map(|(language, tweets)| LanguageRow {
            language,
            tweets,
            relative_frequency: tweets as f64 / total as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.tweets.cmp(&a.tweets).then(a.language.cmp(&b.language)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ScalePreset, SimConfig};
    use crate::generate::generate_corpus;
    use crate::usertype::partition_users;

    fn setup() -> (Corpus, Partition) {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
        let partition = partition_users(&corpus);
        (corpus, partition)
    }

    #[test]
    fn volume_stats_are_consistent() {
        let counts = [4usize, 10, 7];
        let v = VolumeStats::from_counts(&counts);
        assert_eq!(v.total, 21);
        assert_eq!(v.min, 4);
        assert_eq!(v.max, 10);
        assert!((v.mean - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counts_are_zero() {
        let v = VolumeStats::from_counts(&[]);
        assert_eq!(v.total, 0);
        assert_eq!(v.mean, 0.0);
    }

    #[test]
    fn table2_has_the_papers_shape() {
        let (corpus, partition) = setup();
        let t2 = Table2::compute(&corpus, &partition);
        assert_eq!(t2.groups.len(), 4);
        assert_eq!(t2.group(UserGroup::IS).users, 20);
        assert_eq!(t2.group(UserGroup::BU).users, 20);
        assert_eq!(t2.group(UserGroup::All).users, 60);
        // Structural relations from the paper's data: IS users receive far
        // more than they post; IP users the reverse.
        let is = t2.group(UserGroup::IS);
        assert!(is.incoming.total > is.outgoing.total * 3);
        let ip = t2.group(UserGroup::IP);
        assert!(ip.outgoing.total > ip.incoming.total);
        // Retweets are a subset of outgoing.
        for g in &t2.groups {
            assert!(g.retweets.total <= g.outgoing.total);
        }
    }

    #[test]
    fn all_users_totals_cover_named_groups() {
        let (corpus, partition) = setup();
        let t2 = Table2::compute(&corpus, &partition);
        let named: usize = [UserGroup::IS, UserGroup::BU, UserGroup::IP]
            .iter()
            .map(|&g| t2.group(g).outgoing.total)
            .sum();
        assert!(t2.group(UserGroup::All).outgoing.total >= named);
    }

    #[test]
    fn language_distribution_is_english_dominant() {
        let (corpus, _) = setup();
        let rows = language_distribution(&corpus);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].language, Language::English);
        assert!(rows[0].relative_frequency > 0.5, "{}", rows[0].relative_frequency);
        let covered: f64 = rows.iter().map(|r| r.relative_frequency).sum();
        assert!(covered <= 1.0 + 1e-9);
    }

    #[test]
    fn language_detection_recovers_ground_truth_for_most_users() {
        let (corpus, _) = setup();
        let tokenizer = pmr_text::Tokenizer::default();
        let mut correct = 0;
        for u in corpus.users.iter().filter(|u| !u.is_background) {
            let own = corpus.outgoing_of(u.id);
            let pooled: Vec<String> = own
                .iter()
                .map(|&id| clean::clean_with(&tokenizer, &corpus.tweet(id).text))
                .collect();
            let detected = lang::detect_language(&pooled.join(" "));
            if detected == u.language {
                correct += 1;
            }
        }
        assert!(correct >= 48, "language detector recovered only {correct}/60 users");
    }
}
