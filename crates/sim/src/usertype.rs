//! User categories: Information Seekers, Balanced Users, Information
//! Producers (§2 and §4 of the paper).
//!
//! The paper quantifies posting behavior with the *posting ratio*
//! `|R(u) ∪ T(u)| / |E(u)|` and builds four experiment groups:
//!
//! * **IS** — the 20 users with the lowest ratios (max 0.13 in their data);
//! * **BU** — the 20 users with ratios closest to 1 (0.76–1.16);
//! * **IP** — the users with ratios above 2 (9 in their data);
//! * **All Users** — the 60 users of the dataset, including 11 users with
//!   intermediate ratios that belong to no named group.
//!
//! [`partition_users`] applies the same procedure to a generated corpus; the
//! partition is *measured*, not copied from the simulator's band metadata —
//! a test asserts the two agree, but experiments only ever see the measured
//! groups, exactly as the paper only ever sees observed ratios.

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::user::UserId;

/// The three behavioral categories of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserType {
    /// Posting ratio < 0.5: receives at least twice what she posts.
    InformationSeeker,
    /// Posting ratio ≈ 1.
    BalancedUser,
    /// Posting ratio > 2: posts at least twice what she receives.
    InformationProducer,
}

impl UserType {
    /// Classify a raw posting ratio per the thresholds of §2. Ratios in the
    /// gray zones (0.5–2 but not near 1) return `None` in the strict reading;
    /// this method uses the inclusive reading where everything in (0.5, 2]
    /// is balanced, which is only used for descriptive statistics — the
    /// experiment groups come from [`partition_users`].
    pub fn from_ratio(ratio: f64) -> UserType {
        if ratio < 0.5 {
            UserType::InformationSeeker
        } else if ratio > 2.0 {
            UserType::InformationProducer
        } else {
            UserType::BalancedUser
        }
    }
}

/// The four experiment groups of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UserGroup {
    /// Information seekers (20 users).
    IS,
    /// Balanced users (20 users).
    BU,
    /// Information producers (ratio > 2; 9 users in the paper).
    IP,
    /// Everyone (60 users).
    All,
}

impl UserGroup {
    /// All groups, in the paper's reporting order.
    pub const ALL: [UserGroup; 4] = [UserGroup::All, UserGroup::IS, UserGroup::BU, UserGroup::IP];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UserGroup::IS => "IS",
            UserGroup::BU => "BU",
            UserGroup::IP => "IP",
            UserGroup::All => "All Users",
        }
    }
}

/// A user with her measured posting ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostingRatio {
    /// The user.
    pub user: UserId,
    /// `|R(u) ∪ T(u)| / |E(u)|`.
    pub ratio: f64,
}

/// The measured partition of a corpus into experiment groups.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The lowest-ratio third of evaluated users (20 at the paper's shape).
    pub is: Vec<UserId>,
    /// The third with ratios closest to 1, after removing IS (20 at the
    /// paper's shape).
    pub bu: Vec<UserId>,
    /// Users with ratio > 2 (after removing IS and BU).
    pub ip: Vec<UserId>,
    /// Users in no named group (they still count toward All).
    pub rest: Vec<UserId>,
    /// Measured ratios for every user.
    pub ratios: Vec<PostingRatio>,
    /// O(1) lookup behind [`Partition::ratio_of`]. Derived from `ratios`:
    /// rebuilt on deserialization, never serialized, probed only with `get`.
    ratio_index: std::collections::HashMap<UserId, f64>,
}

impl Partition {
    /// Assemble a partition, building the ratio lookup index.
    fn from_groups(
        is: Vec<UserId>,
        bu: Vec<UserId>,
        ip: Vec<UserId>,
        rest: Vec<UserId>,
        ratios: Vec<PostingRatio>,
    ) -> Partition {
        let ratio_index = ratios.iter().map(|r| (r.user, r.ratio)).collect();
        Partition { is, bu, ip, rest, ratios, ratio_index }
    }
    /// The members of an experiment group, in stable (id) order.
    pub fn members(&self, group: UserGroup) -> Vec<UserId> {
        let mut m = match group {
            UserGroup::IS => self.is.clone(),
            UserGroup::BU => self.bu.clone(),
            UserGroup::IP => self.ip.clone(),
            UserGroup::All => {
                let mut all: Vec<UserId> = self
                    .is
                    .iter()
                    .chain(&self.bu)
                    .chain(&self.ip)
                    .chain(&self.rest)
                    .copied()
                    .collect();
                all.sort();
                return all;
            }
        };
        m.sort();
        m
    }

    /// The measured ratio of a user. Returns 0 for a user outside the
    /// partitioned corpus (a caller bug, but not worth a panic).
    pub fn ratio_of(&self, u: UserId) -> f64 {
        self.ratio_index.get(&u).copied().unwrap_or(0.0)
    }
}

// Manual serde keeps the wire format identical to the original five-field
// derive — the ratio index is derived state and is rebuilt on load.
impl Serialize for Partition {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("is".to_owned(), self.is.serialize()),
            ("bu".to_owned(), self.bu.serialize()),
            ("ip".to_owned(), self.ip.serialize()),
            ("rest".to_owned(), self.rest.serialize()),
            ("ratios".to_owned(), self.ratios.serialize()),
        ])
    }
}

impl Deserialize for Partition {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::value::expect_object(v, "Partition")?;
        let field = |name: &str| serde::value::expect_field(obj, name, "Partition");
        Ok(Partition::from_groups(
            Vec::deserialize(field("is")?)?,
            Vec::deserialize(field("bu")?)?,
            Vec::deserialize(field("ip")?)?,
            Vec::deserialize(field("rest")?)?,
            Vec::deserialize(field("ratios")?)?,
        ))
    }
}

/// Apply the paper's group-selection procedure (§4) to a corpus. Only the
/// evaluated users participate; background users merely shape the graph.
pub fn partition_users(corpus: &Corpus) -> Partition {
    let ratios: Vec<PostingRatio> = corpus
        .evaluated_user_ids()
        .map(|u| PostingRatio { user: u, ratio: corpus.posting_ratio(u) })
        .collect();
    partition_ratios(ratios)
}

/// The paper's group-selection procedure over measured posting ratios.
///
/// The named groups each take one third of the evaluated population — the
/// paper's 20 IS + 20 BU out of 60, generalized as fractions so the same
/// procedure scales to arbitrarily sized corpora instead of silently
/// misclassifying everyone past the first 60 users.
pub fn partition_ratios(mut ratios: Vec<PostingRatio>) -> Partition {
    let group = ratios.len() / 3;
    ratios.sort_by(|a, b| a.ratio.total_cmp(&b.ratio).then(a.user.cmp(&b.user)));
    let is: Vec<UserId> = ratios.iter().take(group).map(|r| r.user).collect();
    let mut remaining: Vec<PostingRatio> = ratios.iter().skip(group).copied().collect();
    remaining.sort_by(|a, b| {
        (a.ratio - 1.0).abs().total_cmp(&(b.ratio - 1.0).abs()).then(a.user.cmp(&b.user))
    });
    let bu: Vec<UserId> = remaining.iter().take(group).map(|r| r.user).collect();
    let mut ip = Vec::new();
    let mut rest = Vec::new();
    for r in remaining.iter().skip(group) {
        if r.ratio > 2.0 {
            ip.push(r.user);
        } else {
            rest.push(r.user);
        }
    }
    Partition::from_groups(is, bu, ip, rest, ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ScalePreset, SimConfig};
    use crate::generate::generate_corpus;

    #[test]
    fn ratio_thresholds_match_section_2() {
        assert_eq!(UserType::from_ratio(0.1), UserType::InformationSeeker);
        assert_eq!(UserType::from_ratio(0.49), UserType::InformationSeeker);
        assert_eq!(UserType::from_ratio(1.0), UserType::BalancedUser);
        assert_eq!(UserType::from_ratio(2.0), UserType::BalancedUser);
        assert_eq!(UserType::from_ratio(2.01), UserType::InformationProducer);
    }

    #[test]
    fn partition_recovers_the_planned_bands() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
        let p = partition_users(&corpus);
        assert_eq!(p.is.len(), 20);
        assert_eq!(p.bu.len(), 20);
        assert_eq!(p.members(UserGroup::All).len(), 60);
        assert!(!p.ip.is_empty(), "IP group must not be empty");
        assert_eq!(p.ip.len() + p.rest.len(), 20);
        // Measured groups should agree with the simulator's band plan for
        // most users. The BU band's upper edge (1.16) abuts the extra
        // band's lower edge (1.2), so a handful of boundary users flip —
        // exactly like the paper's own BU/IP boundary, which forced its
        // authors to intervene manually (§4).
        let agree = |ids: &[UserId], band: usize| {
            ids.iter().filter(|u| corpus.user(**u).band == band).count()
        };
        assert!(agree(&p.is, 0) >= 18, "IS: {}", agree(&p.is, 0));
        assert!(agree(&p.bu, 1) >= 13, "BU: {}", agree(&p.bu, 1));
        assert!(agree(&p.ip, 2) >= p.ip.len().saturating_sub(2));
    }

    /// A synthetic ratio population: one third low (IS-like), one third
    /// near 1 (BU-like), one sixth above 2 (IP-like), one sixth in between.
    fn synthetic_ratios(n: usize) -> Vec<PostingRatio> {
        assert_eq!(n % 6, 0, "test helper wants a population divisible by 6");
        (0..n)
            .map(|i| {
                let ratio = match i % 6 {
                    0 | 1 => 0.05 + 0.3 * (i as f64 / n as f64),
                    2 | 3 => 0.9 + 0.2 * (i as f64 / n as f64),
                    4 => 2.5 + i as f64 / n as f64,
                    _ => 1.4 + 0.4 * (i as f64 / n as f64),
                };
                PostingRatio { user: UserId(i as u32), ratio }
            })
            .collect()
    }

    #[test]
    fn group_sizes_scale_with_the_population() {
        for n in [6usize, 60, 6000] {
            let p = partition_ratios(synthetic_ratios(n));
            assert_eq!(p.is.len(), n / 3, "IS at n={n}");
            assert_eq!(p.bu.len(), n / 3, "BU at n={n}");
            assert_eq!(p.ip.len() + p.rest.len(), n - 2 * (n / 3), "leftover at n={n}");
            assert_eq!(p.members(UserGroup::All).len(), n);
            assert!(!p.ip.is_empty(), "IP must not be empty at n={n}");
            for &u in &p.ip {
                assert!(p.ratio_of(u) > 2.0);
            }
            // IS really is the bottom third.
            let max_is = p.is.iter().map(|&u| p.ratio_of(u)).fold(0.0f64, f64::max);
            let min_rest =
                p.bu.iter()
                    .chain(&p.ip)
                    .chain(&p.rest)
                    .map(|&u| p.ratio_of(u))
                    .fold(f64::INFINITY, f64::min);
            assert!(max_is <= min_rest, "IS overlap at n={n}");
        }
    }

    #[test]
    fn ratio_of_matches_the_ratio_table() {
        let p = partition_ratios(synthetic_ratios(6000));
        for r in &p.ratios {
            assert_eq!(p.ratio_of(r.user), r.ratio);
        }
        assert_eq!(p.ratio_of(UserId(999_999)), 0.0, "unknown users read as 0");
    }

    #[test]
    fn partition_serialization_round_trips() {
        let p = partition_ratios(synthetic_ratios(60));
        let back = Partition::deserialize(&p.serialize()).expect("round trip");
        assert_eq!(back.is, p.is);
        assert_eq!(back.bu, p.bu);
        assert_eq!(back.ip, p.ip);
        assert_eq!(back.rest, p.rest);
        for r in &p.ratios {
            assert_eq!(back.ratio_of(r.user), r.ratio, "index must be rebuilt on load");
        }
    }

    #[test]
    fn groups_are_disjoint() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 7));
        let p = partition_users(&corpus);
        let mut seen = std::collections::HashSet::new();
        for u in p.is.iter().chain(&p.bu).chain(&p.ip).chain(&p.rest) {
            assert!(seen.insert(*u), "user {u:?} appears in two groups");
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn ip_ratios_exceed_two() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
        let p = partition_users(&corpus);
        for &u in &p.ip {
            assert!(p.ratio_of(u) > 2.0);
        }
    }

    #[test]
    fn is_ratios_are_the_lowest() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 42));
        let p = partition_users(&corpus);
        let max_is = p.is.iter().map(|&u| p.ratio_of(u)).fold(0.0f64, f64::max);
        let min_other =
            p.bu.iter()
                .chain(&p.ip)
                .chain(&p.rest)
                .map(|&u| p.ratio_of(u))
                .fold(f64::INFINITY, f64::min);
        assert!(max_is <= min_other);
    }
}
