//! Synthetic language models.
//!
//! Every language in the simulated world owns a vocabulary with three strata:
//!
//! * **common words** — topic-neutral filler following a Zipf-like frequency
//!   profile, seeded with the language's real function words so that the
//!   `pmr-text` detector genuinely recovers the language from surface text;
//! * **topic words** — per-topic content vocabulary (the recommendation
//!   signal);
//! * **topic phrases** — multi-word collocations with a fixed word order.
//!   These reward representation models that capture local and global
//!   context (token n-grams and n-gram graphs), mirroring the paper's
//!   finding that word order carries information topic models discard.
//!
//! Scripts are faithful to the real languages: Japanese text is written in
//! kana without spaces, Chinese in CJK ideographs without spaces, Thai in
//! Thai script without spaces, Korean in Hangul with spaces, and the Latin
//! languages in ASCII plus their signature diacritics (challenge C3).

use rand::Rng;

use pmr_text::lang::{function_words, signature_chars};
use pmr_text::Language;

/// A generated language: vocabulary strata plus per-topic hashtags.
#[derive(Debug, Clone)]
pub struct LanguageModel {
    /// The language this model renders.
    pub language: Language,
    /// Topic-neutral words, ordered from most to least frequent.
    pub common: Vec<String>,
    /// `topic_words[k]` = content words of topic `k`.
    pub topic_words: Vec<Vec<String>>,
    /// `phrases[k]` = fixed-order collocations (2–3 words) of topic `k`.
    pub phrases: Vec<Vec<Vec<String>>>,
    /// `headlines[k]` = full 5–8 word sentences of topic `k`, repeated
    /// verbatim across tweets (news headlines, memes).
    pub headlines: Vec<Vec<Vec<String>>>,
    /// `hashtags[k]` = hashtag surface forms correlated with topic `k`.
    pub hashtags: Vec<Vec<String>>,
}

impl LanguageModel {
    /// Generate a language model with `num_topics` topics.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        language: Language,
        num_topics: usize,
        common_words: usize,
        topic_words: usize,
        phrases_per_topic: usize,
    ) -> Self {
        Self::generate_with_headlines(
            rng,
            language,
            num_topics,
            common_words,
            topic_words,
            phrases_per_topic,
            phrases_per_topic / 2,
        )
    }

    /// [`LanguageModel::generate`] with an explicit headline count.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_with_headlines<R: Rng + ?Sized>(
        rng: &mut R,
        language: Language,
        num_topics: usize,
        common_words: usize,
        topic_words: usize,
        phrases_per_topic: usize,
        headlines_per_topic: usize,
    ) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut common: Vec<String> =
            function_words(language).iter().map(|w| (*w).to_owned()).collect();
        for w in &common {
            seen.insert(w.clone());
        }
        while common.len() < common_words {
            let w = synth_word(rng, language);
            if seen.insert(w.clone()) {
                common.push(w);
            }
        }
        // Polysemy: a shared content pool supplies a slice of every topic's
        // vocabulary, so single words are ambiguous across topics while
        // *sequences* (phrases, headlines) remain topic-specific — the
        // property of real language that rewards context-aware models.
        let shared_pool_size = (topic_words * num_topics) / 4;
        let mut shared_pool: Vec<String> = Vec::with_capacity(shared_pool_size);
        while shared_pool.len() < shared_pool_size {
            let w = synth_word(rng, language);
            if seen.insert(w.clone()) {
                shared_pool.push(w);
            }
        }
        let mut topic_word_table = Vec::with_capacity(num_topics);
        for _ in 0..num_topics {
            let unique_share = topic_words - topic_words * 2 / 5;
            let mut words = Vec::with_capacity(topic_words);
            while words.len() < unique_share {
                let w = synth_word(rng, language);
                if seen.insert(w.clone()) {
                    words.push(w);
                }
            }
            while words.len() < topic_words {
                let w = shared_pool[rng.gen_range(0..shared_pool.len())].clone();
                if !words.contains(&w) {
                    words.push(w);
                }
            }
            topic_word_table.push(words);
        }
        let phrases = topic_word_table
            .iter()
            .map(|words| {
                (0..phrases_per_topic)
                    .map(|_| {
                        // Real collocations span 2–5 tokens ("new york",
                        // "grand central station", "i can't believe it's
                        // not…"); the longer ones are what give
                        // higher-order n-gram models shared context.
                        let len = rng.gen_range(2..=5);
                        (0..len).map(|_| words[rng.gen_range(0..words.len())].clone()).collect()
                    })
                    .collect()
            })
            .collect();
        let headlines: Vec<Vec<Vec<String>>> = topic_word_table
            .iter()
            .map(|words| {
                (0..headlines_per_topic)
                    .map(|_| {
                        let len = rng.gen_range(5..=8);
                        (0..len)
                            .map(|_| {
                                // Mostly topic words with the occasional
                                // common word, like a real headline.
                                if rng.gen_bool(0.8) {
                                    words[rng.gen_range(0..words.len())].clone()
                                } else {
                                    common[rng.gen_range(0..common.len().min(40))].clone()
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let hashtags = topic_word_table
            .iter()
            .map(|words| {
                let n = 3.min(words.len());
                (0..n).map(|i| format!("#{}", ascii_fold(&words[i]))).collect()
            })
            .collect();
        LanguageModel {
            language,
            common,
            topic_words: topic_word_table,
            phrases,
            hashtags,
            headlines,
        }
    }

    /// Draw a common word with a Zipf-like bias toward the head of the list.
    pub fn common_word<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a str {
        let n = self.common.len();
        debug_assert!(n > 0);
        // Inverse-CDF of a 1/(r+1) profile: cheap and head-heavy.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let idx = ((n as f64 + 1.0).powf(u) - 1.0) as usize;
        &self.common[idx.min(n - 1)]
    }

    /// Draw a content word of topic `k`, head-biased.
    pub fn topic_word<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, k: usize) -> &'a str {
        let words = &self.topic_words[k];
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let idx = ((words.len() as f64 + 1.0).powf(u) - 1.0) as usize;
        &words[idx.min(words.len() - 1)]
    }

    /// Draw a collocation of topic `k`.
    pub fn phrase<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, k: usize) -> &'a [String] {
        let ps = &self.phrases[k];
        &ps[rng.gen_range(0..ps.len())]
    }

    /// Draw a verbatim headline of topic `k` (empty slice when the model
    /// was built without headlines).
    pub fn headline<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, k: usize) -> &'a [String] {
        let hs = &self.headlines[k];
        if hs.is_empty() {
            return &[];
        }
        &hs[rng.gen_range(0..hs.len())]
    }

    /// Draw a hashtag of topic `k`.
    pub fn hashtag<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, k: usize) -> &'a str {
        let hs = &self.hashtags[k];
        &hs[rng.gen_range(0..hs.len())]
    }
}

/// Fold a word to ASCII for hashtag surface forms (hashtags on Twitter are
/// predominantly ASCII even in non-Latin tweets).
fn ascii_fold(word: &str) -> String {
    let folded: String = word.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
    if folded.is_empty() {
        // Non-Latin scripts: derive a stable ASCII tag from the code points.
        let mut h: u32 = 0;
        for c in word.chars() {
            h = h.wrapping_mul(31).wrapping_add(c as u32);
        }
        format!("tag{}", h % 100_000)
    } else {
        folded
    }
}

/// Synthesize a single word in the given language's script.
pub fn synth_word<R: Rng + ?Sized>(rng: &mut R, language: Language) -> String {
    match language {
        Language::Japanese => {
            // Hiragana syllables.
            const KANA: &[char] = &[
                'あ', 'い', 'う', 'え', 'お', 'か', 'き', 'く', 'け', 'こ', 'さ', 'し', 'す', 'せ',
                'そ', 'た', 'ち', 'つ', 'て', 'と', 'な', 'に', 'ぬ', 'ね', 'の', 'は', 'ひ', 'ふ',
                'へ', 'ほ', 'ま', 'み', 'む', 'め', 'も', 'や', 'ゆ', 'よ', 'ら', 'り', 'る', 'れ',
                'ろ', 'わ', 'ん',
            ];
            (0..rng.gen_range(2..5)).map(|_| KANA[rng.gen_range(0..KANA.len())]).collect()
        }
        Language::Chinese => {
            // CJK Unified Ideographs from a compact frequent-range slice.
            (0..rng.gen_range(1..4))
                // pmr-lint: allow(lib-unwrap): 0x4E00..0x55D0 is entirely inside the CJK block, no surrogates
                .map(|_| char::from_u32(0x4E00 + rng.gen_range(0..2000)).expect("valid CJK"))
                .collect()
        }
        Language::Korean => {
            // Precomposed Hangul syllables.
            (0..rng.gen_range(1..4))
                // pmr-lint: allow(lib-unwrap): 0xAC00..0xB3D0 is entirely inside the Hangul syllable block
                .map(|_| char::from_u32(0xAC00 + rng.gen_range(0..2000)).expect("valid Hangul"))
                .collect()
        }
        Language::Thai => {
            const THAI: &[char] = &[
                'ก', 'ข', 'ค', 'ง', 'จ', 'ฉ', 'ช', 'ซ', 'ญ', 'ด', 'ต', 'ถ', 'ท', 'ธ', 'น', 'บ',
                'ป', 'ผ', 'ฝ', 'พ', 'ฟ', 'ภ', 'ม', 'ย', 'ร', 'ล', 'ว', 'ศ', 'ส', 'ห', 'อ', 'ฮ',
                'า', 'ิ', 'ี', 'ุ', 'ู', 'เ', 'แ', 'โ', 'ไ',
            ];
            (0..rng.gen_range(2..6)).map(|_| THAI[rng.gen_range(0..THAI.len())]).collect()
        }
        latin => {
            let mut w = latin_word(rng);
            let sigs = signature_chars(latin);
            if !sigs.is_empty() && rng.gen_bool(0.35) {
                // Replace a random vowel with a signature diacritic so the
                // detector has something to key on, as real orthography does.
                let pos = rng.gen_range(0..w.chars().count());
                let sig = sigs[rng.gen_range(0..sigs.len())];
                w = w.chars().enumerate().map(|(i, c)| if i == pos { sig } else { c }).collect();
            }
            w
        }
    }
}

/// A pronounceable ASCII word from onset–nucleus(–coda) syllables.
///
/// The onset inventory includes consonant clusters and the nucleus includes
/// diphthongs so that the character n-gram space is rich, as in real
/// orthography — with a tiny syllable inventory, character 4-grams would
/// collide across topics far more than they do in natural language,
/// unfairly crippling the character-based models.
fn latin_word<R: Rng + ?Sized>(rng: &mut R) -> String {
    const ONSETS: &[&str] = &[
        "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
        "br", "ch", "cl", "cr", "dr", "fl", "gr", "kl", "pl", "pr", "qu", "sh", "sk", "sl", "sp",
        "st", "th", "tr",
    ];
    const NUCLEI: &[&str] =
        &["a", "e", "i", "o", "u", "ai", "au", "ea", "ei", "ia", "ie", "oa", "ou"];
    const CODAS: &[&str] = &["", "", "", "n", "r", "s", "t", "l", "m", "x"];
    let syllables = rng.gen_range(2..=3);
    let mut w = String::with_capacity(syllables * 4);
    for i in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        // Codas only close the final syllable, keeping words pronounceable.
        if i == syllables - 1 {
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(lang: Language) -> LanguageModel {
        let mut rng = StdRng::seed_from_u64(5);
        LanguageModel::generate(&mut rng, lang, 4, 30, 10, 5)
    }

    #[test]
    fn strata_have_requested_sizes() {
        let m = model(Language::English);
        assert_eq!(m.common.len(), 30);
        assert_eq!(m.topic_words.len(), 4);
        assert!(m.topic_words.iter().all(|t| t.len() == 10));
        assert!(m.phrases.iter().all(|p| p.len() == 5));
        assert!(m.hashtags.iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn function_words_lead_the_common_stratum() {
        let m = model(Language::English);
        assert!(m.common.contains(&"the".to_owned()));
        let m = model(Language::Portuguese);
        assert!(m.common.contains(&"que".to_owned()));
    }

    #[test]
    fn topic_vocabularies_are_polysemous_but_not_common() {
        let m = model(Language::English);
        // Polysemy: some words are shared across topics (drawn from the
        // shared content pool), but common (function/filler) words never
        // appear in topic vocabularies.
        let mut seen = std::collections::HashSet::new();
        let mut duplicates = 0;
        for t in &m.topic_words {
            // Within a topic, words are unique.
            let unique: std::collections::HashSet<&String> = t.iter().collect();
            assert_eq!(unique.len(), t.len(), "duplicate word inside a topic");
            for w in t {
                if !seen.insert(w.clone()) {
                    duplicates += 1;
                }
            }
        }
        assert!(duplicates > 0, "topics should share some vocabulary (polysemy)");
        for w in &m.common {
            assert!(!seen.contains(w), "common word {w} leaked into topics");
        }
    }

    #[test]
    fn scripts_match_languages() {
        let mut rng = StdRng::seed_from_u64(9);
        let jp = synth_word(&mut rng, Language::Japanese);
        assert!(jp.chars().all(|c| ('\u{3040}'..='\u{30FF}').contains(&c)));
        let zh = synth_word(&mut rng, Language::Chinese);
        assert!(zh.chars().all(|c| ('\u{4E00}'..='\u{9FFF}').contains(&c)));
        let ko = synth_word(&mut rng, Language::Korean);
        assert!(ko.chars().all(|c| ('\u{AC00}'..='\u{D7AF}').contains(&c)));
        let th = synth_word(&mut rng, Language::Thai);
        assert!(th.chars().all(|c| ('\u{0E00}'..='\u{0E7F}').contains(&c)));
        let en = synth_word(&mut rng, Language::English);
        assert!(en.chars().all(|c| c.is_ascii_lowercase()));
    }

    #[test]
    fn hashtags_are_ascii_with_marker() {
        for lang in [Language::English, Language::Japanese, Language::Thai] {
            let m = model(lang);
            for tags in &m.hashtags {
                for tag in tags {
                    assert!(tag.starts_with('#'));
                    assert!(tag[1..].chars().all(|c| c.is_ascii_alphanumeric()), "{tag}");
                }
            }
        }
    }

    #[test]
    fn zipf_draws_are_head_heavy() {
        let m = model(Language::English);
        let mut rng = StdRng::seed_from_u64(17);
        let mut head = 0;
        let n = 3000;
        for _ in 0..n {
            let w = m.common_word(&mut rng);
            let idx = m.common.iter().position(|c| c == w).unwrap();
            if idx < m.common.len() / 3 {
                head += 1;
            }
        }
        assert!(head * 2 > n, "expected >half of draws from the top third, got {head}/{n}");
    }
}
