//! The generated corpus and its per-user views.
//!
//! [`Corpus`] exposes exactly the observables the paper's experimental
//! framework consumes: per-user original tweets `T(u)`, retweets `R(u)`,
//! incoming feed `E(u)` (all (re)tweets of followees), followers' tweets
//! `F(u)` and reciprocal-connection tweets `C(u) = E(u) ∩ F(u)` (§2), always
//! in timestamp order.

use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::graph::SocialGraph;
use crate::tweet::{Tweet, TweetId};
use crate::user::{User, UserId};

/// A fully generated corpus: users, tweets, social graph and per-user
/// timeline indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// The configuration the corpus was generated from.
    pub config: SimConfig,
    /// All users; `users[i].id == UserId(i)`.
    pub users: Vec<User>,
    /// All tweets; `tweets[i].id == TweetId(i)`.
    pub tweets: Vec<Tweet>,
    /// Follow edges.
    pub graph: SocialGraph,
    /// Per-user original tweets, time-ordered.
    pub(crate) originals: Vec<Vec<TweetId>>,
    /// Per-user retweets, time-ordered.
    pub(crate) retweets: Vec<Vec<TweetId>>,
}

impl Corpus {
    /// Look up a tweet by id.
    pub fn tweet(&self, id: TweetId) -> &Tweet {
        &self.tweets[id.index()]
    }

    /// Look up a user by id.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    /// All user ids, including background users.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.users.len() as u32).map(UserId)
    }

    /// Ids of the *evaluated* users — the 60-user dataset of the paper.
    /// Background users exist only to populate the surrounding graph.
    pub fn evaluated_user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users.iter().filter(|u| !u.is_background).map(|u| u.id)
    }

    /// `T(u)`: the user's original tweets (never includes retweets),
    /// time-ordered.
    pub fn originals_of(&self, u: UserId) -> &[TweetId] {
        &self.originals[u.index()]
    }

    /// `R(u)`: the user's retweets, time-ordered.
    pub fn retweets_of(&self, u: UserId) -> &[TweetId] {
        &self.retweets[u.index()]
    }

    /// `R(u) ∪ T(u)`: everything the user posted, merged in time order.
    pub fn outgoing_of(&self, u: UserId) -> Vec<TweetId> {
        let mut all: Vec<TweetId> =
            self.originals[u.index()].iter().chain(&self.retweets[u.index()]).copied().collect();
        self.sort_by_time(&mut all);
        all
    }

    /// `E(u)`: all (re)tweets of the user's followees, time-ordered.
    pub fn incoming_of(&self, u: UserId) -> Vec<TweetId> {
        let mut all = Vec::new();
        for &v in self.graph.followees(u) {
            all.extend_from_slice(&self.originals[v.index()]);
            all.extend_from_slice(&self.retweets[v.index()]);
        }
        self.sort_by_time(&mut all);
        all
    }

    /// `F(u)`: all (re)tweets of the user's followers, time-ordered.
    pub fn followers_tweets_of(&self, u: UserId) -> Vec<TweetId> {
        let mut all = Vec::new();
        for &v in self.graph.followers(u) {
            all.extend_from_slice(&self.originals[v.index()]);
            all.extend_from_slice(&self.retweets[v.index()]);
        }
        self.sort_by_time(&mut all);
        all
    }

    /// `C(u) = E(u) ∩ F(u)`: all (re)tweets of reciprocal connections.
    pub fn reciprocal_tweets_of(&self, u: UserId) -> Vec<TweetId> {
        let mut all = Vec::new();
        for v in self.graph.reciprocal(u) {
            all.extend_from_slice(&self.originals[v.index()]);
            all.extend_from_slice(&self.retweets[v.index()]);
        }
        self.sort_by_time(&mut all);
        all
    }

    /// The user's measured posting ratio `|R(u) ∪ T(u)| / |E(u)|` (§2).
    pub fn posting_ratio(&self, u: UserId) -> f64 {
        let outgoing = self.originals[u.index()].len() + self.retweets[u.index()].len();
        let incoming = self.incoming_of(u).len();
        if incoming == 0 {
            f64::INFINITY
        } else {
            outgoing as f64 / incoming as f64
        }
    }

    /// Total number of tweets in the corpus.
    pub fn len(&self) -> usize {
        self.tweets.len()
    }

    /// Whether the corpus has no tweets.
    pub fn is_empty(&self) -> bool {
        self.tweets.is_empty()
    }

    fn sort_by_time(&self, ids: &mut [TweetId]) {
        ids.sort_by_key(|id| (self.tweets[id.index()].timestamp, *id));
    }
}
