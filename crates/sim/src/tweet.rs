//! Tweet and identifier types.

use serde::{Deserialize, Serialize};

use pmr_text::Language;

use crate::user::UserId;

/// Dense tweet identifier (index into [`crate::Corpus::tweets`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TweetId(pub u32);

impl TweetId {
    /// The tweet's index in the corpus table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Abstract simulation time. Monotone within a user's timeline; the paper
/// only ever uses timestamps for ordering (recency split, CHR baseline), so
/// units are irrelevant.
pub type Timestamp = u64;

/// A single microblog post.
///
/// `topics` is the *generative ground truth* — the latent topic mixture the
/// text was produced from. It exists so the simulator's retweet decision and
/// the test suite can measure interest alignment; representation models must
/// never read it (they only see `text`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    /// Identifier, equal to the tweet's index in the corpus table.
    pub id: TweetId,
    /// The posting user. For a retweet this is the *reposter*.
    pub author: UserId,
    /// Posting time.
    pub timestamp: Timestamp,
    /// Raw surface text, as a representation model would receive it.
    pub text: String,
    /// `Some(original)` if this post is a retweet of `original`.
    pub retweet_of: Option<TweetId>,
    /// Ground-truth latent topic mixture (simulator-private; see above).
    pub topics: Vec<(usize, f32)>,
    /// Ground-truth language the text was generated in (simulator-private;
    /// the `pmr-text` detector must *recover* languages from `text`).
    pub language: Language,
}

impl Tweet {
    /// Whether this post is a retweet.
    pub fn is_retweet(&self) -> bool {
        self.retweet_of.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retweet_flag_follows_origin() {
        let t = Tweet {
            id: TweetId(0),
            author: UserId(0),
            timestamp: 0,
            text: String::new(),
            retweet_of: None,
            topics: vec![],
            language: Language::English,
        };
        assert!(!t.is_retweet());
        let rt = Tweet { retweet_of: Some(TweetId(0)), ..t };
        assert!(rt.is_retweet());
    }
}
