//! The corpus generation pipeline.
//!
//! Generation proceeds in five deterministic stages, all derived from
//! [`SimConfig::seed`]:
//!
//! 1. **Languages** — one [`LanguageModel`] per language in the mix, sharing
//!    a single world-level topic space.
//! 2. **Users** — activity plans sampled from the configured bands, interest
//!    profiles from a sparse Dirichlet, languages from the Table 3 mix.
//! 3. **Graph** — [`SocialGraph::build`] shapes follow edges from interest
//!    homophily and feed-volume targets.
//! 4. **Original tweets** — each user posts her planned originals at uniform
//!    random times, each about a topic drawn from her interests.
//! 5. **Retweets** — each user reposts incoming (and discovered) tweets with
//!    probability sharply increasing in interest alignment; this is the
//!    ground-truth "relevant = retweeted" signal of the evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmr_text::Language;

use crate::config::SimConfig;
use crate::corpus::Corpus;
use crate::graph::SocialGraph;
use crate::interests::{dirichlet, sample_topic};
use crate::language::{synth_word, LanguageModel};
use crate::textgen::render_tweet;
use crate::tweet::{Timestamp, Tweet, TweetId};
use crate::user::{User, UserId};

/// Generate a corpus from a configuration. Deterministic in `cfg`.
pub fn generate_corpus(cfg: &SimConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let models = build_language_models(&mut rng, cfg);
    let users = build_users(&mut rng, cfg);
    let graph = SocialGraph::build(&mut rng, &users);
    let mut tweets = generate_originals(&mut rng, cfg, &users, &graph, &models);
    generate_retweets(&mut rng, cfg, &users, &graph, &mut tweets);
    let (originals, retweets) = index_timelines(&users, &tweets);
    Corpus { config: cfg.clone(), users, tweets, graph, originals, retweets }
}

pub(crate) fn build_language_models(rng: &mut StdRng, cfg: &SimConfig) -> Vec<LanguageModel> {
    cfg.language_mix
        .iter()
        .map(|&(lang, _)| {
            LanguageModel::generate_with_headlines(
                rng,
                lang,
                cfg.num_topics,
                cfg.common_words_per_language,
                cfg.topic_words_per_language,
                cfg.phrases_per_topic,
                cfg.headlines_per_topic,
            )
        })
        .collect()
}

pub(crate) fn model_for(models: &[LanguageModel], lang: Language) -> &LanguageModel {
    models.iter().find(|m| m.language == lang).unwrap_or(&models[0])
}

pub(crate) fn style_tokens(rng: &mut StdRng, lang: pmr_text::Language) -> Vec<String> {
    (0..rng.gen_range(2..=4)).map(|_| synth_word(rng, lang)).collect()
}

pub(crate) fn chatter_topics(rng: &mut StdRng, num_topics: usize) -> Vec<usize> {
    (0..rng.gen_range(2..=3)).map(|_| rng.gen_range(0..num_topics)).collect()
}

fn build_users(rng: &mut StdRng, cfg: &SimConfig) -> Vec<User> {
    let mut users = Vec::with_capacity(cfg.total_population());
    for (band_idx, band) in cfg.bands.iter().enumerate() {
        for _ in 0..band.users {
            let id = UserId(users.len() as u32);
            let ratio = rng.gen_range(band.posting_ratio.0..=band.posting_ratio.1);
            let outgoing = rng.gen_range(band.outgoing.0..=band.outgoing.1);
            let share = rng.gen_range(band.retweet_share.0..=band.retweet_share.1);
            let planned_retweets = ((outgoing as f64) * share).round() as usize;
            let planned_tweets = outgoing.saturating_sub(planned_retweets).max(1);
            let planned_incoming = ((outgoing as f64) / ratio).round().max(4.0) as usize;
            let language = sample_language(rng, cfg);
            let secondary_language = sample_language(rng, cfg);
            let interests = dirichlet(rng, cfg.num_topics, cfg.interest_alpha);
            let style_tokens = style_tokens(rng, language);
            let chatter = chatter_topics(rng, cfg.num_topics);
            users.push(User {
                id,
                handle: format!("user{}", id.0),
                interests,
                language,
                secondary_language,
                planned_tweets,
                planned_retweets,
                planned_incoming,
                band: band_idx,
                is_background: false,
                style_tokens,
                chatter_topics: chatter,
            });
        }
    }
    for _ in 0..cfg.background_users {
        let id = UserId(users.len() as u32);
        let outgoing = rng.gen_range(cfg.background_outgoing.0..=cfg.background_outgoing.1).max(1);
        let planned_retweets = ((outgoing as f64) * cfg.background_retweet_share).round() as usize;
        let planned_tweets = outgoing.saturating_sub(planned_retweets).max(1);
        let language = sample_language(rng, cfg);
        let secondary_language = sample_language(rng, cfg);
        let interests = dirichlet(rng, cfg.num_topics, cfg.interest_alpha);
        let style_tokens = style_tokens(rng, language);
        let chatter = chatter_topics(rng, cfg.num_topics);
        users.push(User {
            id,
            handle: format!("user{}", id.0),
            interests,
            language,
            secondary_language,
            planned_tweets,
            planned_retweets,
            planned_incoming: 0,
            band: cfg.bands.len(),
            is_background: true,
            style_tokens,
            chatter_topics: chatter,
        });
    }
    users
}

pub(crate) fn sample_language(rng: &mut StdRng, cfg: &SimConfig) -> Language {
    let total: f64 = cfg.language_mix.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(lang, w) in &cfg.language_mix {
        if x < w {
            return lang;
        }
        x -= w;
    }
    cfg.language_mix.last().map(|&(l, _)| l).unwrap_or(Language::English)
}

fn generate_originals(
    rng: &mut StdRng,
    cfg: &SimConfig,
    users: &[User],
    graph: &SocialGraph,
    models: &[LanguageModel],
) -> Vec<Tweet> {
    // Originals live in the first 98% of the horizon so that retweet delays
    // stay inside it.
    let latest = cfg.horizon.saturating_mul(98) / 100;
    /// A tweet before id assignment: (timestamp, author, text, topics, language).
    type Draft = (Timestamp, UserId, String, Vec<(usize, f32)>, Language);
    let mut drafts: Vec<Draft> = Vec::new();
    for u in users {
        for _ in 0..u.planned_tweets {
            let ts: Timestamp = rng.gen_range(0..=latest);
            let lang = if rng.gen_bool(cfg.p_secondary_language) {
                u.secondary_language
            } else {
                u.language
            };
            let model = model_for(models, lang);
            // Conversational tweets (those opening with a mention) are
            // chatter by nature; standalone tweets drift to chatter themes
            // with probability `p_chatter`.
            let conversational = rng.gen_bool(cfg.p_mention);
            let topic = if (conversational || rng.gen_bool(cfg.p_chatter))
                && !u.chatter_topics.is_empty()
            {
                // Off-interest chatter: recurring personal themes, not a
                // uniform draw — concentration is what makes chatter
                // actually pollute a user model.
                u.chatter_topics[rng.gen_range(0..u.chatter_topics.len())]
            } else {
                sample_topic(rng, &u.interests)
            };
            // Conversational tweets open with a mention of a followee.
            let mention_handle;
            let mention = if conversational && !graph.followees(u.id).is_empty() {
                let fs = graph.followees(u.id);
                let v = fs[rng.gen_range(0..fs.len())];
                mention_handle = users[v.index()].handle.clone();
                Some(mention_handle.as_str())
            } else {
                None
            };
            let text = render_tweet(rng, cfg, model, topic, mention, &u.style_tokens);
            // A tweet is mostly about one topic, with a secondary shading.
            let mut topics = vec![(topic, 0.85f32)];
            let side = sample_topic(rng, &u.interests);
            if side != topic {
                topics.push((side, 0.15));
            } else {
                topics[0].1 = 1.0;
            }
            drafts.push((ts, u.id, text, topics, lang));
        }
    }
    drafts.sort_by_key(|d| (d.0, d.1));
    drafts
        .into_iter()
        .enumerate()
        .map(|(i, (timestamp, author, text, topics, language))| Tweet {
            id: TweetId(i as u32),
            author,
            timestamp,
            text,
            retweet_of: None,
            topics,
            language,
        })
        .collect()
}

fn generate_retweets(
    rng: &mut StdRng,
    cfg: &SimConfig,
    users: &[User],
    graph: &SocialGraph,
    tweets: &mut Vec<Tweet>,
) {
    let num_originals = tweets.len();
    // Author popularity (follower count) weights the discovery pool: trending
    // content on real platforms is skewed toward popular accounts.
    let popularity: Vec<f64> =
        users.iter().map(|u| 1.0 + graph.followers(u.id).len() as f64).collect();
    for u in users {
        // Activity-coupled sharpness: see `SimConfig::gamma_activity_coupling`.
        let ratio = if u.planned_incoming == 0 {
            1.0
        } else {
            (u.planned_outgoing() as f64 / u.planned_incoming as f64).min(1.0)
        };
        let c = cfg.gamma_activity_coupling;
        let gamma_eff = cfg.retweet_gamma * (1.0 - c + c * ratio);
        // Feed pool: originals authored by followees.
        let feed: Vec<usize> =
            (0..num_originals).filter(|&i| graph.follows(u.id, tweets[i].author)).collect();
        let want_feed = ((u.planned_retweets as f64) * cfg.retweet_from_feed).round() as usize;
        let n_feed = want_feed.min(((feed.len() as f64) * cfg.max_feed_retweet_share) as usize);
        let feed_weights: Vec<f64> = feed
            .iter()
            .map(|&i| {
                let align = u.interest_alignment(&tweets[i].topics) as f64;
                let lang = if tweets[i].language == u.language {
                    1.0
                } else {
                    cfg.cross_language_discount
                };
                (gamma_eff * align).exp() * lang * affinity(cfg, u.id, tweets[i].author)
            })
            .collect();
        let chosen_feed = weighted_sample_without_replacement(rng, &feed, &feed_weights, n_feed);
        // Discovery pool: everything else not authored by u.
        let n_disc = u.planned_retweets.saturating_sub(chosen_feed.len());
        let feed_set: std::collections::HashSet<usize> = feed.iter().copied().collect();
        let discovery: Vec<usize> = (0..num_originals)
            .filter(|&i| tweets[i].author != u.id && !feed_set.contains(&i))
            .collect();
        let disc_weights: Vec<f64> = discovery
            .iter()
            .map(|&i| {
                let align = u.interest_alignment(&tweets[i].topics) as f64;
                let lang = if tweets[i].language == u.language {
                    1.0
                } else {
                    cfg.cross_language_discount
                };
                (gamma_eff * align).exp()
                    * popularity[tweets[i].author.index()]
                    * lang
                    * affinity(cfg, u.id, tweets[i].author)
            })
            .collect();
        let chosen_disc =
            weighted_sample_without_replacement(rng, &discovery, &disc_weights, n_disc);
        for orig_idx in chosen_feed.into_iter().chain(chosen_disc) {
            let delay: Timestamp = rng.gen_range(1..=(cfg.horizon / 50).max(1));
            let orig = &tweets[orig_idx];
            let rt = Tweet {
                id: TweetId(tweets.len() as u32),
                author: u.id,
                timestamp: orig.timestamp.saturating_add(delay),
                text: format!("rt @{}: {}", users[orig.author.index()].handle, orig.text),
                retweet_of: Some(orig.id),
                topics: orig.topics.clone(),
                language: orig.language,
            };
            tweets.push(rt);
        }
    }
}

/// Persistent per-(reader, author) retweet affinity: a deterministic
/// log-normal factor that makes users repeatedly repost the same few
/// accounts, as real users do. Derived from a hash so it is stable across
/// the whole generation pass.
pub(crate) fn affinity(cfg: &SimConfig, reader: UserId, author: UserId) -> f64 {
    if cfg.author_affinity_sigma == 0.0 {
        return 1.0;
    }
    let mut h: u64 = cfg.seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [reader.0 as u64, author.0 as u64] {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    // Map the hash to a standard normal via Box–Muller on two halves.
    let u1 = ((h >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
    let u2 = ((h & 0x7FF) as f64 + 0.5) / 2048.0;
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (cfg.author_affinity_sigma * z).exp()
}

/// Weighted sampling without replacement (Efraimidis–Spirakis): draw `k`
/// items with probability proportional to `weights`, via keys `u^(1/w)`.
pub(crate) fn weighted_sample_without_replacement(
    rng: &mut StdRng,
    items: &[usize],
    weights: &[f64],
    k: usize,
) -> Vec<usize> {
    debug_assert_eq!(items.len(), weights.len());
    let mut keyed: Vec<(f64, usize)> = items
        .iter()
        .zip(weights)
        .map(|(&item, &w)| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let key = if w <= 0.0 { f64::NEG_INFINITY } else { u.ln() / w };
            (key, item)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    keyed.truncate(k);
    keyed.into_iter().map(|(_, item)| item).collect()
}

pub(crate) fn index_timelines(
    users: &[User],
    tweets: &[Tweet],
) -> (Vec<Vec<TweetId>>, Vec<Vec<TweetId>>) {
    let mut originals = vec![Vec::new(); users.len()];
    let mut retweets = vec![Vec::new(); users.len()];
    for t in tweets {
        if t.is_retweet() {
            retweets[t.author.index()].push(t.id);
        } else {
            originals[t.author.index()].push(t.id);
        }
    }
    for list in originals.iter_mut().chain(retweets.iter_mut()) {
        list.sort_by_key(|id| (tweets[id.index()].timestamp, *id));
    }
    (originals, retweets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScalePreset;

    fn smoke_corpus() -> Corpus {
        generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 1234))
    }

    #[test]
    fn corpus_has_planned_shape() {
        let c = smoke_corpus();
        assert_eq!(c.evaluated_user_ids().count(), 60);
        assert_eq!(c.users.len(), c.config.total_population());
        assert!(c.len() > 1000, "smoke corpus too small: {}", c.len());
        for (i, t) in c.tweets.iter().enumerate() {
            assert_eq!(t.id.index(), i, "tweet ids must be dense");
        }
    }

    #[test]
    fn retweets_reference_earlier_originals() {
        let c = smoke_corpus();
        for t in &c.tweets {
            if let Some(orig) = t.retweet_of {
                let o = c.tweet(orig);
                assert!(o.retweet_of.is_none(), "retweets of retweets are not generated");
                assert!(t.timestamp > o.timestamp, "retweet must postdate the original");
                assert_ne!(t.author, o.author, "users do not retweet themselves");
            }
        }
    }

    #[test]
    fn retweet_counts_are_near_plan() {
        let c = smoke_corpus();
        for u in &c.users {
            let got = c.retweets_of(u.id).len();
            assert!(got <= u.planned_retweets, "user {:?} has more retweets than planned", u.id);
            // The feed cap can reduce counts, but discovery backfills.
            assert!(
                got + 2 >= u.planned_retweets.min(4),
                "user {:?} got {got} of {} planned retweets",
                u.id,
                u.planned_retweets
            );
        }
    }

    #[test]
    fn retweets_align_with_interests() {
        let c = smoke_corpus();
        // The average interest alignment of retweeted content must exceed
        // the average alignment of non-retweeted incoming content — this is
        // the recommendation signal the whole study rests on.
        let mut rt_align = 0.0f64;
        let mut rt_n = 0usize;
        let mut other_align = 0.0f64;
        let mut other_n = 0usize;
        for u in &c.users {
            let retweeted: std::collections::HashSet<TweetId> =
                c.retweets_of(u.id).iter().map(|&id| c.tweet(id).retweet_of.unwrap()).collect();
            for id in c.incoming_of(u.id) {
                let t = c.tweet(id);
                if t.is_retweet() {
                    continue;
                }
                let a = c.user(u.id).interest_alignment(&t.topics) as f64;
                if retweeted.contains(&t.id) {
                    rt_align += a;
                    rt_n += 1;
                } else {
                    other_align += a;
                    other_n += 1;
                }
            }
        }
        assert!(rt_n > 0 && other_n > 0);
        let rt_avg = rt_align / rt_n as f64;
        let other_avg = other_align / other_n as f64;
        assert!(
            rt_avg > other_avg + 0.1,
            "retweeted content must be interest-aligned: {rt_avg:.3} vs {other_avg:.3}"
        );
    }

    #[test]
    fn posting_ratios_recover_the_bands() {
        let c = smoke_corpus();
        // Band 0 (IS plan) should measure clearly lower ratios than band 2
        // (IP plan).
        let avg_ratio = |band: usize| {
            let us: Vec<&User> = c.users.iter().filter(|u| u.band == band).collect();
            us.iter().map(|u| c.posting_ratio(u.id)).sum::<f64>() / us.len() as f64
        };
        let is = avg_ratio(0);
        let bu = avg_ratio(1);
        let ip = avg_ratio(2);
        assert!(is < bu && bu < ip, "ratios must order IS < BU < IP: {is:.2} {bu:.2} {ip:.2}");
        assert!(is < 0.5, "IS ratios too high: {is:.2}");
        assert!(ip > 1.5, "IP ratios too low: {ip:.2}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SimConfig::preset(ScalePreset::Smoke, 77);
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.tweets.iter().zip(&b.tweets) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.timestamp, y.timestamp);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 1));
        let b = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 2));
        assert!(
            a.tweets.iter().zip(&b.tweets).any(|(x, y)| x.text != y.text),
            "seeds must change the corpus"
        );
    }

    #[test]
    fn languages_cover_the_mix() {
        let c = smoke_corpus();
        let evaluated: Vec<_> = c.users.iter().filter(|u| !u.is_background).collect();
        let english = evaluated.iter().filter(|u| u.language == Language::English).count();
        assert!(english > 40, "English must dominate: {english}/60");
        assert!(
            c.users.iter().any(|u| u.language != Language::English),
            "some non-English users expected"
        );
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<usize> = (0..100).collect();
        let weights: Vec<f64> = (0..100).map(|i| if i < 10 { 100.0 } else { 1.0 }).collect();
        let mut heavy_hits = 0;
        for _ in 0..30 {
            let chosen = weighted_sample_without_replacement(&mut rng, &items, &weights, 10);
            heavy_hits += chosen.iter().filter(|&&i| i < 10).count();
        }
        assert!(heavy_hits > 150, "heavy items should dominate: {heavy_hits}/300");
    }

    #[test]
    fn weighted_sampling_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<usize> = (0..20).collect();
        let weights = vec![1.0; 20];
        let chosen = weighted_sample_without_replacement(&mut rng, &items, &weights, 20);
        let set: std::collections::HashSet<usize> = chosen.iter().copied().collect();
        assert_eq!(set.len(), 20);
    }
}
