//! User interest profiles.
//!
//! Interests are sparse Dirichlet-distributed topic mixtures: a small
//! concentration parameter makes each user care about a handful of topics,
//! which is what gives content-based recommendation signal to recover.

use rand::Rng;

/// Draw a symmetric Dirichlet(α) sample of dimension `k` via normalized
/// Gamma(α, 1) variates (Marsaglia–Tsang for α ≥ 1, boosting for α < 1).
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, k: usize, alpha: f64) -> Vec<f32> {
    assert!(k > 0, "dimension must be positive");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut sample: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = sample.iter().sum();
    if sum <= f64::MIN_POSITIVE {
        // Degenerate draw (all ~0, possible for tiny α): fall back to a
        // point mass on a uniformly chosen topic.
        let winner = rng.gen_range(0..k);
        sample.iter_mut().for_each(|v| *v = 0.0);
        sample[winner] = 1.0;
        return sample.into_iter().map(|v| v as f32).collect();
    }
    sample.into_iter().map(|v| (v / sum) as f32).collect()
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang 2000).
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Cosine similarity of two dense interest vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Sample a topic index from a dense distribution.
pub fn sample_topic<R: Rng + ?Sized>(rng: &mut R, dist: &[f32]) -> usize {
    let total: f32 = dist.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..dist.len().max(1));
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in dist.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        for alpha in [0.05, 0.5, 1.0, 5.0] {
            let d = dirichlet(&mut rng, 20, alpha);
            let sum: f32 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "alpha={alpha} sum={sum}");
            assert!(d.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut top_small = 0.0;
        let mut top_large = 0.0;
        for _ in 0..50 {
            let d = dirichlet(&mut rng, 30, 0.05);
            top_small += d.iter().cloned().fold(0.0f32, f32::max);
            let d = dirichlet(&mut rng, 30, 5.0);
            top_large += d.iter().cloned().fold(0.0f32, f32::max);
        }
        assert!(top_small > top_large, "sparse draws should have larger max mass");
    }

    #[test]
    fn gamma_has_roughly_correct_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape={shape} empirical mean={mean}"
            );
        }
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn sample_topic_respects_point_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = vec![0.0, 0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_topic(&mut rng, &dist), 2);
        }
    }

    #[test]
    fn sample_topic_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = vec![0.5, 0.5];
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[sample_topic(&mut rng, &dist)] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
