//! Time-ordered event-stream export of a corpus.
//!
//! The batch experiments consume a corpus through per-user timeline views;
//! an *online* consumer (the `pmr-serve` replay engine) instead wants the
//! corpus as the event stream a production ingest pipeline would see: every
//! post — original or retweet — in global arrival order. [`Corpus::
//! event_stream`] flattens the tweet table into that stream, ordered by
//! `(timestamp, tweet id)` so the order is total and identical on every
//! run regardless of how the corpus was generated or filtered.

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::tweet::{Timestamp, TweetId};
use crate::user::UserId;

/// One observed post in arrival order: either an original tweet or a
/// retweet (`retweet_of` names the reposted original).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEvent {
    /// Arrival time of the post.
    pub at: Timestamp,
    /// The posted tweet (for a retweet, the repost itself — not the
    /// original).
    pub tweet: TweetId,
    /// The posting user (for a retweet, the reposter).
    pub author: UserId,
    /// `Some(original)` when the post is a retweet.
    pub retweet_of: Option<TweetId>,
}

impl Corpus {
    /// Every post of the corpus as a single time-ordered event stream.
    ///
    /// Ties on the timestamp are broken by tweet id, making the order a
    /// deterministic total order — the replay contract of `pmr-serve`
    /// depends on every consumer observing the same sequence.
    pub fn event_stream(&self) -> Vec<StreamEvent> {
        let mut events: Vec<StreamEvent> = self
            .tweets
            .iter()
            .map(|t| StreamEvent {
                at: t.timestamp,
                tweet: t.id,
                author: t.author,
                retweet_of: t.retweet_of,
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.tweet));
        events
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ScalePreset, SimConfig};
    use crate::generate::generate_corpus;

    #[test]
    fn stream_is_totally_ordered_and_complete() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 7));
        let stream = corpus.event_stream();
        assert_eq!(stream.len(), corpus.len(), "every tweet appears exactly once");
        for pair in stream.windows(2) {
            assert!(
                (pair[0].at, pair[0].tweet) < (pair[1].at, pair[1].tweet),
                "stream order must be strictly increasing"
            );
        }
        for e in &stream {
            let t = corpus.tweet(e.tweet);
            assert_eq!(t.author, e.author);
            assert_eq!(t.retweet_of, e.retweet_of);
            if let Some(orig) = e.retweet_of {
                assert!(
                    corpus.tweet(orig).timestamp <= e.at,
                    "a retweet never precedes its original"
                );
            }
        }
    }

    #[test]
    fn stream_is_reproducible() {
        let a = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 11)).event_stream();
        let b = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 11)).event_stream();
        assert_eq!(a, b);
    }
}
