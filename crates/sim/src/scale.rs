//! Production-scale streaming corpus generation.
//!
//! The legacy pipeline ([`crate::generate::generate_corpus`]) threads one
//! master RNG sequentially through every stage and materializes the whole
//! tweet table — perfect for the paper-shaped 60-user corpus, hopeless at
//! the ROADMAP's 10^5–10^6 users. This module is the scale substrate:
//!
//! * **Plan/render split.** Generation is factored into a cheap *planning*
//!   pass that stores ~tens of bytes per event (timestamps, authors, latent
//!   topics) and a *rendering* pass that produces surface text on demand.
//!   Text — the dominant cost of a materialized corpus — never exists all
//!   at once; peak memory is the plan tables plus one chunk of rendered
//!   events.
//! * **Derived seeds instead of one RNG stream.** Every planning and
//!   rendering decision draws from an RNG seeded by
//!   [`derive_seed`]`(master, stream, item)` — a splitmix64-style mix of
//!   the master seed, a stage constant and the user/tweet index. Any chunk
//!   can therefore be rendered independently, in any order, on any thread,
//!   and still produce byte-identical text; streaming and materialized
//!   output agree *by construction* (and a proptest pins it).
//! * **Timestamp-ordered chunks.** [`StreamGenerator::render_chunk`] emits
//!   the corpus as consecutive slices of the global `(timestamp, tweet id)`
//!   event order — the exact order [`crate::Corpus::event_stream`] would
//!   produce — so a consumer (pmr-serve's ingest adapter) can pipeline
//!   chunk rendering across workers and still ingest a deterministic
//!   stream.
//! * **Power-law graphs.** [`GraphShape::PowerLaw`] draws followees from a
//!   Zipf-like attractiveness distribution over a seeded rank permutation,
//!   yielding a handful of celebrity accounts holding a large share of all
//!   follower edges — the shape that stresses pmr-serve's hot-shard
//!   fan-out and backpressure paths.
//!
//! The legacy generator is untouched: paper experiments keep their exact
//! corpora, and this pipeline is pinned against *itself* (streaming ≡
//! materialized) rather than against the legacy byte stream.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use serde::{Deserialize, Serialize};

use pmr_text::Language;

use crate::config::SimConfig;
use crate::corpus::Corpus;
use crate::generate::{
    affinity, build_language_models, chatter_topics, index_timelines, model_for, sample_language,
    style_tokens, weighted_sample_without_replacement,
};
use crate::graph::SocialGraph;
use crate::interests::{dirichlet, sample_topic};
use crate::language::LanguageModel;
use crate::stream::StreamEvent;
use crate::textgen::render_tweet;
use crate::tweet::{Timestamp, Tweet, TweetId};
use crate::user::{User, UserId};

/// Seed-stream constants: each generation stage draws from its own derived
/// seed space so stages never share (or reorder) RNG state.
const S_LANG: u64 = 1;
const S_USER: u64 = 2;
const S_GRAPH: u64 = 3;
const S_ORIG: u64 = 4;
const S_RT: u64 = 5;
const S_TEXT: u64 = 6;
const S_PERM: u64 = 7;

/// Mix `(master, stream, item)` into an independent RNG seed
/// (splitmix64-style finalizer). Collisions across distinct inputs are as
/// unlikely as any 64-bit hash; what matters is determinism and stage
/// independence.
fn derive_seed(master: u64, stream: u64, item: u64) -> u64 {
    let mut z = master
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ item.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rng_for(master: u64, stream: u64, item: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream, item))
}

/// How follow edges are shaped at scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphShape {
    /// The legacy homophily/volume builder ([`SocialGraph::build`]).
    /// Quadratic in the population — small corpora only.
    Homophily,
    /// Zipf-like follower counts: followees are drawn with probability
    /// proportional to `(rank + 1)^-exponent` over a seeded random rank
    /// permutation of the population, so celebrity status is independent
    /// of user id (and therefore of shard placement downstream).
    PowerLaw {
        /// Attractiveness decay; ~1.0–1.2 gives realistic heavy heads.
        exponent: f64,
        /// Per-user followee-count range (uniform).
        followees: (usize, usize),
    },
}

/// Configuration of a scale run: the paper's text/topic/activity knobs
/// ([`SimConfig`]) stretched over an arbitrary population.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Text, topic, language and activity parameters (and the master seed).
    /// The band user-counts are reinterpreted as *proportions* of
    /// `evaluated_users`; `background_users` is ignored in favor of
    /// `users`.
    pub base: SimConfig,
    /// Total population.
    pub users: usize,
    /// Users carrying band activity plans (the measured subpopulation; 60
    /// at the paper's shape). Everyone else gets a background plan.
    pub evaluated_users: usize,
    /// Follow-graph shape.
    pub graph: GraphShape,
    /// Events per rendered chunk — the streaming unit of work and the
    /// upper bound on rendered-but-unconsumed text.
    pub chunk_events: usize,
    /// Discovery retweets sample `oversample × n` candidate originals from
    /// the popularity-weighted author distribution before the weighted
    /// pick (the scale replacement for the legacy all-corpus scan).
    pub discovery_oversample: usize,
}

impl ScaleConfig {
    /// A benchmark tier: paper-shaped 60 evaluated users inside a
    /// power-law population of `users`.
    pub fn tier(users: usize, seed: u64) -> ScaleConfig {
        let mut base = SimConfig::preset(crate::config::ScalePreset::Smoke, seed);
        // Background accounts post lightly at scale; the event count grows
        // linearly in the population, not in the per-user volume.
        base.background_outgoing = (2, 8);
        ScaleConfig {
            base,
            users,
            evaluated_users: 60.min(users / 2).max(1),
            graph: GraphShape::PowerLaw { exponent: 1.05, followees: (4, 12) },
            chunk_events: 8192,
            discovery_oversample: 4,
        }
    }

    /// A tiny configuration for tests: small enough to materialize and
    /// diff, with every code path (power-law graph, chunked rendering,
    /// retweet discovery) still exercised.
    pub fn smoke(seed: u64) -> ScaleConfig {
        let mut cfg = ScaleConfig::tier(220, seed);
        cfg.chunk_events = 512;
        cfg
    }

    /// Per-band evaluated-user counts, scaled proportionally from the
    /// paper's 20/20/9/11-of-60 shape (exact at the paper's shape; the
    /// rounding remainder goes to the earliest bands).
    pub fn scaled_bands(&self) -> Vec<usize> {
        let total_base: usize = self.base.bands.iter().map(|b| b.users).sum::<usize>().max(1);
        let mut counts: Vec<usize> =
            self.base.bands.iter().map(|b| b.users * self.evaluated_users / total_base).collect();
        let mut leftover = self.evaluated_users - counts.iter().sum::<usize>();
        let mut i = 0;
        while leftover > 0 && !counts.is_empty() {
            let slot = i % counts.len();
            counts[slot] += 1;
            leftover -= 1;
            i += 1;
        }
        counts
    }

    /// The [`SimConfig`] a materialized corpus of this scale reports:
    /// bands resized to the scaled counts, background count set to the
    /// remainder, so `total_population()` equals `users`.
    pub fn resolved_sim_config(&self) -> SimConfig {
        let mut cfg = self.base.clone();
        for (band, count) in cfg.bands.iter_mut().zip(self.scaled_bands()) {
            band.users = count;
        }
        cfg.background_users = self.users - self.evaluated_users;
        cfg
    }
}

/// One planned original tweet: everything rendering needs except the text.
#[derive(Debug, Clone, Copy)]
struct OriginalPlan {
    ts: Timestamp,
    author: u32,
    /// Per-author sequence number; keys the render seed.
    seq: u32,
    topic: u16,
    /// Secondary topic shading; equal to `topic` means a single-topic
    /// tweet (mirroring the legacy generator's collapse rule).
    side: u16,
    /// Mentioned user id, `u32::MAX` for none.
    mention: u32,
    lang: Language,
}

/// One planned retweet: the reposter and the position of the reposted
/// original in the plan table.
#[derive(Debug, Clone, Copy)]
struct RetweetPlan {
    ts: Timestamp,
    reposter: u32,
    /// Index into [`StreamGenerator::originals`].
    orig: u32,
}

/// A user's derived activity plan. Recomputed from the user's derived seed
/// wherever needed — never stored for the whole population.
#[derive(Debug, Clone)]
struct UserPlan {
    interests: Vec<f32>,
    language: Language,
    secondary_language: Language,
    planned_tweets: usize,
    planned_retweets: usize,
    planned_incoming: usize,
    band: usize,
    is_background: bool,
    style_tokens: Vec<String>,
    chatter_topics: Vec<usize>,
}

/// One event of the scale stream, rendered into pmr-serve's ingest format:
/// the [`StreamEvent`] plus the posted text. For retweets, `origin_text`
/// carries the reposted original's text so a streaming consumer can
/// featurize the observation without a corpus-wide feature table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestRecord {
    /// The event in the corpus's global `(timestamp, tweet id)` order.
    pub event: StreamEvent,
    /// Surface text of the posted tweet (for a retweet, the full
    /// `rt @handle: …` surface form).
    pub text: String,
    /// The reposted original's text, for retweets.
    pub origin_text: Option<String>,
}

/// The planned scale corpus: renders its event stream in timestamp-ordered
/// chunks, each independently computable (and therefore parallelizable)
/// from derived seeds.
pub struct StreamGenerator {
    cfg: ScaleConfig,
    /// Exclusive end index of each band's user-id range.
    band_ends: Vec<u32>,
    models: Vec<LanguageModel>,
    /// Follow graph in CSR form: user `u` follows
    /// `followee_targets[offsets[u]..offsets[u+1]]`.
    followee_offsets: Vec<u32>,
    followee_targets: Vec<UserId>,
    follower_counts: Vec<u32>,
    /// Author-contiguous original plans.
    originals: Vec<OriginalPlan>,
    /// Per-author `(start, len)` span into `originals`.
    author_spans: Vec<(u32, u32)>,
    /// Tweet id of the original at plan position `p`.
    orig_id_by_pos: Vec<u32>,
    /// Plan position of the original with tweet id `i`.
    orig_pos_by_id: Vec<u32>,
    /// Retweet plans in id order (`TweetId = originals + index`).
    retweets: Vec<RetweetPlan>,
    /// Retweet indices sorted by `(ts, id)`.
    rt_order: Vec<u32>,
    /// Per-chunk starting cursors `(next original id, next rt_order
    /// position)`; `len = chunks + 1`.
    chunk_bounds: Vec<(u32, u32)>,
}

impl StreamGenerator {
    /// Run the planning passes: language models, graph, original and
    /// retweet plans, and chunk boundaries. Deterministic in `cfg`.
    pub fn plan(cfg: ScaleConfig) -> StreamGenerator {
        assert!(cfg.users >= 2, "a scale corpus needs at least two users");
        assert!(
            cfg.evaluated_users >= 1 && cfg.evaluated_users <= cfg.users,
            "evaluated users must be a nonempty subpopulation"
        );
        let mut band_ends = Vec::new();
        let mut acc = 0usize;
        for count in cfg.scaled_bands() {
            acc += count;
            band_ends.push(acc as u32);
        }
        let models = build_language_models(&mut rng_for(cfg.base.seed, S_LANG, 0), &cfg.base);
        let mut gen = StreamGenerator {
            cfg,
            band_ends,
            models,
            followee_offsets: Vec::new(),
            followee_targets: Vec::new(),
            follower_counts: Vec::new(),
            originals: Vec::new(),
            author_spans: Vec::new(),
            orig_id_by_pos: Vec::new(),
            orig_pos_by_id: Vec::new(),
            retweets: Vec::new(),
            rt_order: Vec::new(),
            chunk_bounds: Vec::new(),
        };
        gen.plan_graph();
        gen.plan_originals();
        gen.plan_retweets();
        gen.plan_chunks();
        gen
    }

    /// Total population.
    pub fn num_users(&self) -> usize {
        self.cfg.users
    }

    /// Ids of the users carrying band activity plans.
    pub fn evaluated_user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.cfg.evaluated_users as u32).map(UserId)
    }

    /// Total events (originals + retweets) the stream will emit.
    pub fn num_events(&self) -> usize {
        self.originals.len() + self.retweets.len()
    }

    /// Number of timestamp-ordered chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunk_bounds.len().saturating_sub(1)
    }

    /// The configuration this generator was planned from.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Follower counts per user (the power-law head lives here).
    pub fn follower_counts(&self) -> &[u32] {
        &self.follower_counts
    }

    /// Accounts `u` follows.
    pub fn followees(&self, u: UserId) -> &[UserId] {
        let lo = self.followee_offsets[u.index()] as usize;
        let hi = self.followee_offsets[u.index() + 1] as usize;
        &self.followee_targets[lo..hi]
    }

    /// Follower adjacency lists (the transpose of the stored followee
    /// CSR), for consumers that fan events out to followers. O(edges) —
    /// intended for the tiers that actually get served, not for planning.
    pub fn build_followers(&self) -> Vec<Vec<UserId>> {
        let mut followers: Vec<Vec<UserId>> = (0..self.cfg.users)
            .map(|u| Vec::with_capacity(self.follower_counts[u] as usize))
            .collect();
        for u in 0..self.cfg.users {
            for &v in self.followees(UserId(u as u32)) {
                followers[v.index()].push(UserId(u as u32));
            }
        }
        followers
    }

    fn band_of(&self, u: u32) -> Option<usize> {
        if u >= *self.band_ends.last().unwrap_or(&0) {
            return None;
        }
        Some(self.band_ends.partition_point(|&end| end <= u))
    }

    fn user_plan(&self, u: u32) -> UserPlan {
        let cfg = &self.cfg.base;
        let mut rng = rng_for(cfg.seed, S_USER, u as u64);
        let band = self.band_of(u);
        let (planned_tweets, planned_retweets, planned_incoming) = match band {
            Some(b) => {
                let band = &cfg.bands[b];
                let ratio = rng.gen_range(band.posting_ratio.0..=band.posting_ratio.1);
                let outgoing = rng.gen_range(band.outgoing.0..=band.outgoing.1);
                let share = rng.gen_range(band.retweet_share.0..=band.retweet_share.1);
                let planned_retweets = ((outgoing as f64) * share).round() as usize;
                let planned_tweets = outgoing.saturating_sub(planned_retweets).max(1);
                let planned_incoming = ((outgoing as f64) / ratio).round().max(4.0) as usize;
                (planned_tweets, planned_retweets, planned_incoming)
            }
            None => {
                let outgoing =
                    rng.gen_range(cfg.background_outgoing.0..=cfg.background_outgoing.1).max(1);
                let planned_retweets =
                    ((outgoing as f64) * cfg.background_retweet_share).round() as usize;
                let planned_tweets = outgoing.saturating_sub(planned_retweets).max(1);
                (planned_tweets, planned_retweets, 0)
            }
        };
        let language = sample_language(&mut rng, cfg);
        let secondary_language = sample_language(&mut rng, cfg);
        let interests = dirichlet(&mut rng, cfg.num_topics, cfg.interest_alpha);
        let style = style_tokens(&mut rng, language);
        let chatter = chatter_topics(&mut rng, cfg.num_topics);
        UserPlan {
            interests,
            language,
            secondary_language,
            planned_tweets,
            planned_retweets,
            planned_incoming,
            band: band.unwrap_or(self.cfg.base.bands.len()),
            is_background: band.is_none(),
            style_tokens: style,
            chatter_topics: chatter,
        }
    }

    fn plan_graph(&mut self) {
        let n = self.cfg.users;
        match self.cfg.graph {
            GraphShape::Homophily => {
                let users = self.users_vec();
                let graph =
                    SocialGraph::build(&mut rng_for(self.cfg.base.seed, S_GRAPH, 0), &users);
                self.import_graph(&graph);
            }
            GraphShape::PowerLaw { exponent, followees } => {
                let seed = self.cfg.base.seed;
                let mut rank_to_user: Vec<u32> = (0..n as u32).collect();
                rank_to_user.shuffle(&mut rng_for(seed, S_PERM, 0));
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0f64;
                for r in 0..n {
                    acc += (r as f64 + 1.0).powf(-exponent);
                    cdf.push(acc);
                }
                let total = acc;
                self.followee_offsets = Vec::with_capacity(n + 1);
                self.followee_offsets.push(0);
                self.followee_targets = Vec::new();
                self.follower_counts = vec![0u32; n];
                let (lo, hi) = followees;
                for u in 0..n {
                    let mut rng = rng_for(seed, S_GRAPH, u as u64);
                    let k = rng.gen_range(lo..=hi).min(n - 1);
                    let mut picked: Vec<UserId> = Vec::with_capacity(k);
                    // Rejection sampling; the attempt cap only matters for
                    // degenerate tiny populations.
                    let mut attempts = 0usize;
                    while picked.len() < k && attempts < k * 30 + 30 {
                        attempts += 1;
                        let x = rng.gen_range(0.0..total);
                        let r = cdf.partition_point(|&c| c <= x).min(n - 1);
                        let v = UserId(rank_to_user[r]);
                        if v.index() == u || picked.contains(&v) {
                            continue;
                        }
                        self.follower_counts[v.index()] += 1;
                        picked.push(v);
                    }
                    self.followee_targets.extend_from_slice(&picked);
                    self.followee_offsets.push(self.followee_targets.len() as u32);
                }
            }
        }
    }

    fn import_graph(&mut self, graph: &SocialGraph) {
        let n = self.cfg.users;
        self.followee_offsets = Vec::with_capacity(n + 1);
        self.followee_offsets.push(0);
        self.followee_targets = Vec::new();
        self.follower_counts = vec![0u32; n];
        for u in 0..n {
            let id = UserId(u as u32);
            self.followee_targets.extend_from_slice(graph.followees(id));
            self.followee_offsets.push(self.followee_targets.len() as u32);
            self.follower_counts[u] = graph.followers(id).len() as u32;
        }
    }

    fn plan_originals(&mut self) {
        let cfg = &self.cfg.base;
        let latest = cfg.horizon.saturating_mul(98) / 100;
        let n = self.cfg.users;
        self.author_spans = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let plan = self.user_plan(u);
            let mut rng = rng_for(cfg.seed, S_ORIG, u as u64);
            let start = self.originals.len() as u32;
            let followees = {
                let lo = self.followee_offsets[u as usize] as usize;
                let hi = self.followee_offsets[u as usize + 1] as usize;
                &self.followee_targets[lo..hi]
            };
            for seq in 0..plan.planned_tweets as u32 {
                let ts: Timestamp = rng.gen_range(0..=latest);
                let lang = if rng.gen_bool(cfg.p_secondary_language) {
                    plan.secondary_language
                } else {
                    plan.language
                };
                let conversational = rng.gen_bool(cfg.p_mention);
                let topic = if (conversational || rng.gen_bool(cfg.p_chatter))
                    && !plan.chatter_topics.is_empty()
                {
                    plan.chatter_topics[rng.gen_range(0..plan.chatter_topics.len())]
                } else {
                    sample_topic(&mut rng, &plan.interests)
                };
                let mention = if conversational && !followees.is_empty() {
                    followees[rng.gen_range(0..followees.len())].0
                } else {
                    u32::MAX
                };
                let side = sample_topic(&mut rng, &plan.interests);
                self.originals.push(OriginalPlan {
                    ts,
                    author: u,
                    seq,
                    topic: topic as u16,
                    side: side as u16,
                    mention,
                    lang,
                });
            }
            self.author_spans.push((start, self.originals.len() as u32 - start));
        }
        // Assign dense ids in the global (ts, author, seq) order — the
        // same order the legacy generator's stable (ts, author) sort
        // produces, so id order and event order coincide for originals.
        let mut order: Vec<u32> = (0..self.originals.len() as u32).collect();
        order.sort_by_key(|&p| {
            let o = &self.originals[p as usize];
            (o.ts, o.author, o.seq)
        });
        self.orig_pos_by_id = order;
        self.orig_id_by_pos = vec![0u32; self.originals.len()];
        for (id, &pos) in self.orig_pos_by_id.iter().enumerate() {
            self.orig_id_by_pos[pos as usize] = id as u32;
        }
    }

    /// Interest alignment of a plan's topic pair against an interest
    /// vector — [`User::interest_alignment`] over the plan encoding.
    fn alignment(interests: &[f32], o: &OriginalPlan) -> f32 {
        let pairs: [(usize, f32); 2] = if o.side == o.topic {
            [(o.topic as usize, 1.0), (o.topic as usize, 0.0)]
        } else {
            [(o.topic as usize, 0.85), (o.side as usize, 0.15)]
        };
        let mut dot = 0.0f32;
        let mut t_norm = 0.0f32;
        for &(k, w) in &pairs {
            dot += interests.get(k).copied().unwrap_or(0.0) * w;
            t_norm += w * w;
        }
        let i_norm: f32 = interests.iter().map(|w| w * w).sum();
        if t_norm == 0.0 || i_norm == 0.0 {
            return 0.0;
        }
        dot / (t_norm.sqrt() * i_norm.sqrt())
    }

    fn retweet_weight(
        &self,
        plan: &UserPlan,
        reader: u32,
        o: &OriginalPlan,
        gamma_eff: f64,
        popularity: Option<f64>,
    ) -> f64 {
        let cfg = &self.cfg.base;
        let align = Self::alignment(&plan.interests, o) as f64;
        let lang = if o.lang == plan.language { 1.0 } else { cfg.cross_language_discount };
        (gamma_eff * align).exp()
            * lang
            * popularity.unwrap_or(1.0)
            * affinity(cfg, UserId(reader), UserId(o.author))
    }

    fn plan_retweets(&mut self) {
        let cfg = &self.cfg.base;
        let n = self.cfg.users;
        // Popularity-weighted author distribution for discovery sampling.
        let mut author_cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for u in 0..n {
            acc += 1.0 + self.follower_counts[u] as f64;
            author_cdf.push(acc);
        }
        let author_total = acc;
        let delay_max = (cfg.horizon / 50).max(1);
        let mut retweets = Vec::new();
        for u in 0..n as u32 {
            let plan = self.user_plan(u);
            if plan.planned_retweets == 0 {
                continue;
            }
            let mut rng = rng_for(cfg.seed, S_RT, u as u64);
            let ratio = if plan.planned_incoming == 0 {
                1.0
            } else {
                ((plan.planned_tweets + plan.planned_retweets) as f64
                    / plan.planned_incoming as f64)
                    .min(1.0)
            };
            let c = cfg.gamma_activity_coupling;
            let gamma_eff = cfg.retweet_gamma * (1.0 - c + c * ratio);
            // Feed pool: plan positions of all followee originals.
            let mut feed: Vec<usize> = Vec::new();
            for &v in self.followees(UserId(u)) {
                let (start, len) = self.author_spans[v.index()];
                feed.extend((start..start + len).map(|p| p as usize));
            }
            let want_feed =
                ((plan.planned_retweets as f64) * cfg.retweet_from_feed).round() as usize;
            let n_feed = want_feed.min(((feed.len() as f64) * cfg.max_feed_retweet_share) as usize);
            let feed_weights: Vec<f64> = feed
                .iter()
                .map(|&p| self.retweet_weight(&plan, u, &self.originals[p], gamma_eff, None))
                .collect();
            let chosen_feed =
                weighted_sample_without_replacement(&mut rng, &feed, &feed_weights, n_feed);
            // Discovery pool: a popularity-weighted *sample* of the rest of
            // the corpus (the legacy generator scans every original, which
            // does not survive 10^6 users).
            let n_disc = plan.planned_retweets.saturating_sub(chosen_feed.len());
            let target = n_disc * self.cfg.discovery_oversample.max(1);
            let mut candidates: Vec<usize> = Vec::with_capacity(target);
            let mut attempts = 0usize;
            while candidates.len() < target && attempts < target * 10 + 20 {
                attempts += 1;
                let x = rng.gen_range(0.0..author_total);
                let a = author_cdf.partition_point(|&cum| cum <= x).min(n - 1);
                if a == u as usize {
                    continue;
                }
                let (start, len) = self.author_spans[a];
                if len == 0 {
                    continue;
                }
                let p = (start + rng.gen_range(0..len)) as usize;
                if candidates.contains(&p) || feed.contains(&p) {
                    continue;
                }
                candidates.push(p);
            }
            let disc_weights: Vec<f64> = candidates
                .iter()
                .map(|&p| {
                    let o = &self.originals[p];
                    let pop = 1.0 + self.follower_counts[o.author as usize] as f64;
                    self.retweet_weight(&plan, u, o, gamma_eff, Some(pop))
                })
                .collect();
            let chosen_disc =
                weighted_sample_without_replacement(&mut rng, &candidates, &disc_weights, n_disc);
            for p in chosen_feed.into_iter().chain(chosen_disc) {
                let delay: Timestamp = rng.gen_range(1..=delay_max);
                retweets.push(RetweetPlan {
                    ts: self.originals[p].ts.saturating_add(delay),
                    reposter: u,
                    orig: p as u32,
                });
            }
        }
        self.retweets = retweets;
        let n_orig = self.originals.len() as u64;
        let mut rt_order: Vec<u32> = (0..self.retweets.len() as u32).collect();
        rt_order.sort_by_key(|&i| (self.retweets[i as usize].ts, n_orig + i as u64));
        self.rt_order = rt_order;
    }

    /// Whether the next event of the merged stream (at cursors `oc` into
    /// the id-ordered originals, `rc` into `rt_order`) is an original.
    fn next_is_original(&self, oc: usize, rc: usize) -> bool {
        if rc >= self.rt_order.len() {
            return true;
        }
        if oc >= self.originals.len() {
            return false;
        }
        let o_ts = self.originals[self.orig_pos_by_id[oc] as usize].ts;
        let r_idx = self.rt_order[rc] as usize;
        let r_ts = self.retweets[r_idx].ts;
        (o_ts, oc as u64) < (r_ts, (self.originals.len() + r_idx) as u64)
    }

    fn plan_chunks(&mut self) {
        let chunk = self.cfg.chunk_events.max(1);
        let n_orig = self.originals.len();
        let n_rt = self.retweets.len();
        let mut bounds = vec![(0u32, 0u32)];
        let mut oc = 0usize;
        let mut rc = 0usize;
        let mut emitted = 0usize;
        while oc < n_orig || rc < n_rt {
            if self.next_is_original(oc, rc) {
                oc += 1;
            } else {
                rc += 1;
            }
            emitted += 1;
            if emitted.is_multiple_of(chunk) {
                bounds.push((oc as u32, rc as u32));
            }
        }
        if *bounds.last().unwrap_or(&(0, 0)) != (n_orig as u32, n_rt as u32) {
            bounds.push((n_orig as u32, n_rt as u32));
        }
        self.chunk_bounds = bounds;
    }

    /// Render one original's surface text from its derived seed. `styles`
    /// caches per-author style tokens within a rendering unit (a chunk).
    fn render_original(&self, o: &OriginalPlan, styles: &mut HashMap<u32, Vec<String>>) -> String {
        let style = styles.entry(o.author).or_insert_with(|| self.user_plan(o.author).style_tokens);
        let model = model_for(&self.models, o.lang);
        let item = ((o.author as u64) << 32) | o.seq as u64;
        let mut rng = rng_for(self.cfg.base.seed, S_TEXT, item);
        let mention_handle = (o.mention != u32::MAX).then(|| format!("user{}", o.mention));
        render_tweet(
            &mut rng,
            &self.cfg.base,
            model,
            o.topic as usize,
            mention_handle.as_deref(),
            style,
        )
    }

    fn topics_of(o: &OriginalPlan) -> Vec<(usize, f32)> {
        if o.side == o.topic {
            vec![(o.topic as usize, 1.0)]
        } else {
            vec![(o.topic as usize, 0.85), (o.side as usize, 0.15)]
        }
    }

    /// Render chunk `i`: the `i`-th consecutive slice of the global
    /// `(timestamp, tweet id)` event order, with surface text. Pure in
    /// `&self` — chunks can render on any thread in any order and the
    /// concatenation over `0..num_chunks()` is always the same stream.
    pub fn render_chunk(&self, chunk: usize) -> Vec<IngestRecord> {
        let (mut oc, mut rc) = {
            let (a, b) = self.chunk_bounds[chunk];
            (a as usize, b as usize)
        };
        let (end_oc, end_rc) = {
            let (a, b) = self.chunk_bounds[chunk + 1];
            (a as usize, b as usize)
        };
        let mut styles: HashMap<u32, Vec<String>> = HashMap::new();
        let mut out = Vec::with_capacity((end_oc - oc) + (end_rc - rc));
        while oc < end_oc || rc < end_rc {
            // Within a chunk the cursors stop exactly at the precomputed
            // bounds, so the merge predicate needs no end clamping beyond
            // the global one.
            if rc >= end_rc || (oc < end_oc && self.next_is_original(oc, rc)) {
                let pos = self.orig_pos_by_id[oc] as usize;
                let o = &self.originals[pos];
                let text = self.render_original(o, &mut styles);
                out.push(IngestRecord {
                    event: StreamEvent {
                        at: o.ts,
                        tweet: TweetId(oc as u32),
                        author: UserId(o.author),
                        retweet_of: None,
                    },
                    text,
                    origin_text: None,
                });
                oc += 1;
            } else {
                let idx = self.rt_order[rc] as usize;
                let r = &self.retweets[idx];
                let o = &self.originals[r.orig as usize];
                let origin_text = self.render_original(o, &mut styles);
                let text = format!("rt @user{}: {}", o.author, origin_text);
                out.push(IngestRecord {
                    event: StreamEvent {
                        at: r.ts,
                        tweet: TweetId((self.originals.len() + idx) as u32),
                        author: UserId(r.reposter),
                        retweet_of: Some(TweetId(self.orig_id_by_pos[r.orig as usize])),
                    },
                    text,
                    origin_text: Some(origin_text),
                });
                rc += 1;
            }
        }
        out
    }

    /// The whole stream, rendered chunk by chunk on the calling thread.
    pub fn events(&self) -> impl Iterator<Item = IngestRecord> + '_ {
        (0..self.num_chunks()).flat_map(|c| self.render_chunk(c))
    }

    /// Full [`User`] table (plans re-derived per user).
    fn users_vec(&self) -> Vec<User> {
        (0..self.cfg.users as u32)
            .map(|u| {
                let plan = self.user_plan(u);
                User {
                    id: UserId(u),
                    handle: format!("user{u}"),
                    interests: plan.interests,
                    language: plan.language,
                    secondary_language: plan.secondary_language,
                    planned_tweets: plan.planned_tweets,
                    planned_retweets: plan.planned_retweets,
                    planned_incoming: plan.planned_incoming,
                    band: plan.band,
                    is_background: plan.is_background,
                    style_tokens: plan.style_tokens,
                    chatter_topics: plan.chatter_topics,
                }
            })
            .collect()
    }

    /// The follow graph as a full [`SocialGraph`].
    pub fn social_graph(&self) -> SocialGraph {
        let followees: Vec<Vec<UserId>> =
            (0..self.cfg.users).map(|u| self.followees(UserId(u as u32)).to_vec()).collect();
        SocialGraph::from_adjacency(followees, self.build_followers())
    }

    /// Materialize the full corpus this generator streams — the batch-mode
    /// twin the proptests pin the streaming path against. O(corpus) memory;
    /// smoke scale only.
    pub fn materialize(&self) -> Corpus {
        let users = self.users_vec();
        let graph = self.social_graph();
        let n_orig = self.originals.len();
        let mut styles: HashMap<u32, Vec<String>> = HashMap::new();
        let mut tweets = Vec::with_capacity(self.num_events());
        for id in 0..n_orig {
            let o = &self.originals[self.orig_pos_by_id[id] as usize];
            tweets.push(Tweet {
                id: TweetId(id as u32),
                author: UserId(o.author),
                timestamp: o.ts,
                text: self.render_original(o, &mut styles),
                retweet_of: None,
                topics: Self::topics_of(o),
                language: o.lang,
            });
        }
        for (idx, r) in self.retweets.iter().enumerate() {
            let o = &self.originals[r.orig as usize];
            let origin_text = self.render_original(o, &mut styles);
            tweets.push(Tweet {
                id: TweetId((n_orig + idx) as u32),
                author: UserId(r.reposter),
                timestamp: r.ts,
                text: format!("rt @user{}: {}", o.author, origin_text),
                retweet_of: Some(TweetId(self.orig_id_by_pos[r.orig as usize])),
                topics: Self::topics_of(o),
                language: o.lang,
            });
        }
        let (originals, retweets) = index_timelines(&users, &tweets);
        Corpus { config: self.cfg.resolved_sim_config(), users, tweets, graph, originals, retweets }
    }
}

impl std::fmt::Debug for StreamGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamGenerator")
            .field("users", &self.cfg.users)
            .field("originals", &self.originals.len())
            .field("retweets", &self.retweets.len())
            .field("chunks", &self.num_chunks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_gen(seed: u64) -> StreamGenerator {
        StreamGenerator::plan(ScaleConfig::smoke(seed))
    }

    #[test]
    fn stream_matches_materialized_event_stream() {
        let gen = smoke_gen(42);
        let corpus = gen.materialize();
        let expected = corpus.event_stream();
        let got: Vec<IngestRecord> = gen.events().collect();
        assert_eq!(got.len(), expected.len());
        for (rec, ev) in got.iter().zip(&expected) {
            assert_eq!(rec.event, *ev);
            assert_eq!(rec.text, corpus.tweet(ev.tweet).text, "text must be byte-identical");
            match ev.retweet_of {
                None => assert!(rec.origin_text.is_none()),
                Some(orig) => {
                    assert_eq!(rec.origin_text.as_deref(), Some(corpus.tweet(orig).text.as_str()));
                }
            }
        }
    }

    #[test]
    fn chunk_size_never_changes_the_stream() {
        let mut cfg_a = ScaleConfig::smoke(7);
        cfg_a.chunk_events = 64;
        let mut cfg_b = ScaleConfig::smoke(7);
        cfg_b.chunk_events = 4096;
        let a: Vec<IngestRecord> = StreamGenerator::plan(cfg_a).events().collect();
        let b: Vec<IngestRecord> = StreamGenerator::plan(cfg_b).events().collect();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn chunks_render_independently() {
        let gen = smoke_gen(11);
        // Rendering chunks out of order (or repeatedly) must agree with
        // the sequential stream — this is what makes parallel rendering
        // deterministic.
        let sequential: Vec<IngestRecord> = gen.events().collect();
        let mut reordered: Vec<IngestRecord> = Vec::new();
        let mut chunks: Vec<usize> = (0..gen.num_chunks()).collect();
        chunks.reverse();
        let mut rendered: Vec<Vec<IngestRecord>> =
            chunks.iter().map(|&c| gen.render_chunk(c)).collect();
        rendered.reverse();
        for chunk in rendered {
            reordered.extend(chunk);
        }
        assert_eq!(sequential, reordered);
    }

    #[test]
    fn stream_is_totally_ordered_and_within_horizon() {
        let gen = smoke_gen(3);
        let events: Vec<IngestRecord> = gen.events().collect();
        assert_eq!(events.len(), gen.num_events());
        for pair in events.windows(2) {
            assert!(
                (pair[0].event.at, pair[0].event.tweet) < (pair[1].event.at, pair[1].event.tweet),
                "stream order must be strictly increasing"
            );
        }
        for rec in &events {
            assert!(rec.event.at <= gen.config().base.horizon);
        }
    }

    #[test]
    fn retweets_postdate_their_originals() {
        let gen = smoke_gen(5);
        let corpus = gen.materialize();
        let mut seen_retweet = false;
        for t in &corpus.tweets {
            if let Some(orig) = t.retweet_of {
                seen_retweet = true;
                let o = corpus.tweet(orig);
                assert!(o.retweet_of.is_none());
                assert!(t.timestamp > o.timestamp);
                assert_ne!(t.author, o.author);
            }
        }
        assert!(seen_retweet, "smoke scale config must produce retweets");
    }

    #[test]
    fn power_law_follower_tail_is_head_heavy() {
        // Distribution test: the top-1% of accounts must hold a
        // disproportionate share of all follower edges. With exponent 1.05
        // over 5000 users the head share is ~40%+; assert a conservative
        // floor so seed jitter never flakes.
        let gen = StreamGenerator::plan(ScaleConfig::tier(5000, 13));
        let mut counts: Vec<u64> = gen.follower_counts().iter().map(|&c| c as u64).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let head_n = (counts.len() / 100).max(1);
        let head: u64 = counts.iter().take(head_n).sum();
        let share = head as f64 / total.max(1) as f64;
        assert!(
            share >= 0.25,
            "top-1% of accounts hold only {:.1}% of edges; expected a heavy head",
            share * 100.0
        );
        // And the head must contain genuine celebrities relative to the
        // mean degree.
        let mean = total as f64 / counts.len() as f64;
        assert!(
            counts[0] as f64 > mean * 20.0,
            "largest account has {} followers vs mean {mean:.1}; tail is not heavy",
            counts[0]
        );
    }

    #[test]
    fn evaluated_users_keep_the_paper_band_shape() {
        let cfg = ScaleConfig::smoke(1);
        assert_eq!(cfg.scaled_bands(), vec![20, 20, 9, 11]);
        let gen = StreamGenerator::plan(cfg);
        assert_eq!(gen.evaluated_user_ids().count(), 60);
        let corpus = gen.materialize();
        assert_eq!(corpus.evaluated_user_ids().count(), 60);
        assert_eq!(corpus.users.len(), 220);
        assert_eq!(corpus.config.total_population(), 220);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<IngestRecord> = smoke_gen(1).events().take(50).collect();
        let b: Vec<IngestRecord> = smoke_gen(2).events().take(50).collect();
        assert_ne!(a, b, "seeds must change the stream");
    }

    #[test]
    fn derive_seed_separates_streams_and_items() {
        let a = derive_seed(42, S_USER, 0);
        let b = derive_seed(42, S_USER, 1);
        let c = derive_seed(42, S_ORIG, 0);
        let d = derive_seed(43, S_USER, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The streaming pin: for any seed, the chunked stream is
        /// event-for-event and byte-for-byte identical to the materialized
        /// corpus's event stream — same discipline as the IndexedVectorizer
        /// pin against the reference vectorizer.
        #[test]
        fn streaming_equals_materialized_for_any_seed(seed in 0u64..10_000) {
            let gen = StreamGenerator::plan(ScaleConfig::smoke(seed));
            let corpus = gen.materialize();
            let expected = corpus.event_stream();
            let mut count = 0usize;
            for (rec, ev) in gen.events().zip(&expected) {
                prop_assert_eq!(&rec.event, ev);
                prop_assert_eq!(&rec.text, &corpus.tweet(ev.tweet).text);
                count += 1;
            }
            prop_assert_eq!(count, expected.len());
        }
    }
}
