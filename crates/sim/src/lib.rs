//! # pmr-sim
//!
//! Synthetic Twitter substrate for content-based personalized microblog
//! recommendation experiments.
//!
//! The EDBT 2019 study runs on a gated dataset: ~30% of the public Twitter
//! firehose for Jun–Dec 2009 joined with the KAIST WWW 2010 social-graph
//! snapshot. Neither is redistributable, so this crate *simulates* the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * a **social graph** with unilateral follow edges and reciprocal
//!   connections, shaped by interest similarity and popularity
//!   ([`graph`]);
//! * **users** with latent interest profiles, posting-activity targets and
//!   dominant languages ([`user`], [`interests`]);
//! * **multilingual short texts** with the four Twitter challenges of the
//!   paper — sparsity (C1), noise (C2), multilingualism incl. scripts
//!   without word separators (C3), and non-standard language: elongation,
//!   hashtags, mentions, URLs, emoticons (C4) ([`language`], [`textgen`]);
//! * an **interest-driven retweet process**: the probability that a user
//!   reposts an incoming tweet grows with the similarity between her latent
//!   interests and the tweet's latent topic mixture ([`generate`]). This is
//!   the mechanism that makes "relevant = retweeted" (the paper's evaluation
//!   assumption) hold *by construction*, so content-based rankers are
//!   rewarded exactly insofar as they recover user interests;
//! * the paper's **user-type partitioning** (IS / BU / IP / All Users) via
//!   posting ratios ([`usertype`]) and the **dataset statistics** of its
//!   Table 2 ([`stats`]).
//!
//! Everything is deterministic given a seed. Scale is configurable; the
//! default is laptop-sized (×~25 smaller than the paper's 2.07M tweets) and
//! `ScalePreset::Full` approaches the paper's magnitudes.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod corpus;
pub mod generate;
pub mod graph;
pub mod interests;
pub mod language;
pub mod scale;
pub mod stats;
pub mod stream;
pub mod textgen;
pub mod tweet;
pub mod user;
pub mod usertype;

pub use config::{ScalePreset, SimConfig};
pub use corpus::Corpus;
pub use generate::generate_corpus;
pub use graph::SocialGraph;
pub use scale::{GraphShape, IngestRecord, ScaleConfig, StreamGenerator};
pub use stats::{GroupStats, Table2};
pub use stream::StreamEvent;
pub use tweet::{Timestamp, Tweet, TweetId};
pub use user::{User, UserId};
pub use usertype::{partition_ratios, partition_users, PostingRatio, UserGroup, UserType};
