//! Tweet text generation.
//!
//! A tweet is rendered from a latent topic (drawn from the author's
//! interests) in the author's language, with the paper's four Twitter
//! challenges injected:
//!
//! * **C1 sparsity** — 6–18 tokens per tweet;
//! * **C2 noise** — random misspellings (adjacent transposition or character
//!   duplication);
//! * **C3 multilingualism** — the ten languages of Table 3, three of which
//!   are rendered without word separators;
//! * **C4 non-standard language** — emphatic lengthening, hashtags,
//!   mentions, URLs and emoticons.

use rand::Rng;

use pmr_text::Language;

use crate::config::SimConfig;
use crate::language::LanguageModel;

/// Emoticon surface forms sampled into tweets (a subset of the `pmr-text`
/// lexicon, spanning all nine classes).
const EMOTICONS: &[&str] = &[":)", ":(", ";)", ":d", "<3", ":o", ":/", ":s", "xd", ":-)", ":-("];

/// Generate the surface text of one tweet.
///
/// `topic` is the latent topic the tweet is "about"; `mention` is an
/// optional handle to open the tweet with (conversational tweets); `style`
/// is the author's personal token pool, sprinkled in with
/// [`SimConfig::p_author_style`].
pub fn render_tweet<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &SimConfig,
    model: &LanguageModel,
    topic: usize,
    mention: Option<&str>,
    style: &[String],
) -> String {
    let len = rng.gen_range(cfg.tweet_len.0..=cfg.tweet_len.1);
    let mut words: Vec<String> = Vec::with_capacity(len + 4);
    // RT culture: some tweets quote a topic headline verbatim.
    if rng.gen_bool(cfg.p_headline) {
        words.extend(model.headline(rng, topic).iter().cloned());
    }
    while words.len() < len {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < cfg.p_phrase {
            for w in model.phrase(rng, topic) {
                words.push(w.clone());
            }
        } else if roll < cfg.p_phrase + cfg.p_topic_word {
            words.push(model.topic_word(rng, topic).to_owned());
        } else {
            words.push(model.common_word(rng).to_owned());
        }
    }
    // Never truncate mid-headline: keep at least the embedded quote.
    if !style.is_empty() && rng.gen_bool(cfg.p_author_style) {
        let tok = style[rng.gen_range(0..style.len())].clone();
        let pos = rng.gen_range(0..=words.len());
        words.insert(pos, tok);
    }
    // C2/C4 noise on individual words.
    for w in words.iter_mut() {
        if rng.gen_bool(cfg.p_noise) {
            *w = noise_word(rng, w);
        }
    }
    let mut parts: Vec<String> = Vec::with_capacity(words.len() + 4);
    if let Some(handle) = mention {
        parts.push(format!("@{handle}"));
    }
    parts.push(join_words(&words, model.language));
    if rng.gen_bool(cfg.p_url) {
        parts.push(format!("http://t.co/{}", random_slug(rng)));
    }
    if rng.gen_bool(cfg.p_hashtag) {
        parts.push(model.hashtag(rng, topic).to_owned());
        if rng.gen_bool(0.3) {
            parts.push(model.hashtag(rng, topic).to_owned());
        }
    }
    if rng.gen_bool(cfg.p_emoticon) {
        parts.push(EMOTICONS[rng.gen_range(0..EMOTICONS.len())].to_owned());
    }
    parts.join(" ")
}

/// Join content words according to the language's script conventions:
/// space-separated for most languages, concatenated for Chinese, Japanese
/// and Thai (challenge C3).
fn join_words(words: &[String], language: Language) -> String {
    if language.uses_spaces() {
        words.join(" ")
    } else {
        words.concat()
    }
}

/// Apply one unit of noise to a word: adjacent transposition, character
/// duplication, or emphatic lengthening of the final character.
fn noise_word<R: Rng + ?Sized>(rng: &mut R, word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 2 {
        return word.to_owned();
    }
    match rng.gen_range(0..3) {
        0 => {
            // Transpose two adjacent characters.
            let i = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.clone();
            c.swap(i, i + 1);
            c.into_iter().collect()
        }
        1 => {
            // Duplicate one character.
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            c.insert(i, chars[i]);
            c.into_iter().collect()
        }
        _ => {
            // Emphatic lengthening: repeat the last character 2–4 extra times.
            let mut c = chars.clone();
            if let Some(&last) = c.last() {
                for _ in 0..rng.gen_range(2..=4) {
                    c.push(last);
                }
            }
            c.into_iter().collect()
        }
    }
}

/// Random 6-character URL slug.
fn random_slug<R: Rng + ?Sized>(rng: &mut R) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..6).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScalePreset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(lang: Language) -> (SimConfig, LanguageModel, StdRng) {
        let cfg = SimConfig::preset(ScalePreset::Smoke, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let model = LanguageModel::generate(&mut rng, lang, cfg.num_topics, 50, 20, 6);
        (cfg, model, rng)
    }

    #[test]
    fn renders_nonempty_text() {
        let (cfg, model, mut rng) = setup(Language::English);
        for topic in 0..4 {
            let t = render_tweet(&mut rng, &cfg, &model, topic, None, &[]);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn mention_leads_the_tweet() {
        let (cfg, model, mut rng) = setup(Language::English);
        let t = render_tweet(&mut rng, &cfg, &model, 0, Some("alice"), &[]);
        assert!(t.starts_with("@alice "), "got: {t}");
    }

    #[test]
    fn no_space_scripts_concatenate() {
        let (mut cfg, model, mut rng) = setup(Language::Japanese);
        // Force pure word content for the assertion.
        cfg.p_url = 0.0;
        cfg.p_hashtag = 0.0;
        cfg.p_emoticon = 0.0;
        cfg.p_noise = 0.0;
        let t = render_tweet(&mut rng, &cfg, &model, 0, None, &[]);
        assert!(!t.contains(' '), "Japanese words must not be space-separated: {t}");
    }

    #[test]
    fn topic_words_appear_for_their_topic() {
        let (mut cfg, model, mut rng) = setup(Language::English);
        cfg.p_noise = 0.0;
        let t = render_tweet(&mut rng, &cfg, &model, 2, None, &[]);
        let topic2: std::collections::HashSet<&str> =
            model.topic_words[2].iter().map(|s| s.as_str()).collect();
        let hits = t.split_whitespace().filter(|w| topic2.contains(w)).count();
        assert!(hits > 0, "expected topic-2 vocabulary in: {t}");
    }

    #[test]
    fn style_tokens_appear() {
        let (mut cfg, model, mut rng) = setup(Language::English);
        cfg.p_author_style = 1.0;
        cfg.p_noise = 0.0;
        let style = vec!["zzyzx".to_owned()];
        let t = render_tweet(&mut rng, &cfg, &model, 0, None, &style);
        assert!(t.contains("zzyzx"), "style token missing: {t}");
    }

    #[test]
    fn noise_changes_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut changed = 0;
        for _ in 0..50 {
            if noise_word(&mut rng, "example") != "example" {
                changed += 1;
            }
        }
        assert!(changed > 40);
    }

    #[test]
    fn noise_preserves_single_chars() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(noise_word(&mut rng, "a"), "a");
    }
}
