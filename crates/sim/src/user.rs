//! User types and per-user generation plans.

use serde::{Deserialize, Serialize};

use pmr_text::Language;

/// Dense user identifier (index into [`crate::Corpus::users`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// The user's index in the corpus table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulated user: latent interests, languages and activity plan.
///
/// The `interests` vector is generative ground truth, used by the retweet
/// process and by tests; representation models must never read it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Identifier, equal to the user's index in the corpus table.
    pub id: UserId,
    /// Screen name (used for `@mention` surface forms).
    pub handle: String,
    /// Latent interest distribution over the simulator's topics (sums to 1).
    pub interests: Vec<f32>,
    /// Dominant language of the user's tweets.
    pub language: Language,
    /// Secondary language, occasionally used ([`crate::SimConfig::p_secondary_language`]).
    pub secondary_language: Language,
    /// Planned number of original tweets.
    pub planned_tweets: usize,
    /// Planned number of retweets.
    pub planned_retweets: usize,
    /// Planned incoming volume |E(u)| the graph builder aims for.
    pub planned_incoming: usize,
    /// Index of the activity band this user was drawn from (0=IS, 1=BU,
    /// 2=IP, 3=extra in the default preset). Generation metadata only — the
    /// *experiment* groups users by measured posting ratio, like the paper.
    pub band: usize,
    /// Background users populate the social graph (as the full 2009 Twitter
    /// graph surrounds the paper's 60 users) but are never evaluated.
    pub is_background: bool,
    /// Personal style tokens (slang, habitual tags): sprinkled into the
    /// user's tweets with [`crate::SimConfig::p_author_style`].
    pub style_tokens: Vec<String>,
    /// Recurring off-interest "chatter" themes (everyday life,
    /// conversations). Original tweets drift to these with
    /// [`crate::SimConfig::p_chatter`]; retweets never do — which is why
    /// the paper finds a user's retweets a cleaner interest signal than
    /// her own tweets.
    pub chatter_topics: Vec<usize>,
}

impl User {
    /// Planned outgoing volume |R ∪ T|.
    pub fn planned_outgoing(&self) -> usize {
        self.planned_tweets + self.planned_retweets
    }

    /// Cosine similarity between this user's interests and a topic mixture.
    ///
    /// Interests are a dense distribution, `topics` a sparse one. This is the
    /// quantity the retweet process thresholds on.
    pub fn interest_alignment(&self, topics: &[(usize, f32)]) -> f32 {
        let mut dot = 0.0f32;
        let mut t_norm = 0.0f32;
        for &(k, w) in topics {
            dot += self.interests.get(k).copied().unwrap_or(0.0) * w;
            t_norm += w * w;
        }
        let i_norm: f32 = self.interests.iter().map(|w| w * w).sum();
        if t_norm == 0.0 || i_norm == 0.0 {
            return 0.0;
        }
        dot / (t_norm.sqrt() * i_norm.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_with_interests(interests: Vec<f32>) -> User {
        User {
            id: UserId(0),
            handle: "u0".into(),
            interests,
            language: Language::English,
            secondary_language: Language::English,
            planned_tweets: 0,
            planned_retweets: 0,
            planned_incoming: 0,
            band: 0,
            is_background: false,
            style_tokens: Vec::new(),
            chatter_topics: Vec::new(),
        }
    }

    #[test]
    fn alignment_is_high_on_matching_topic() {
        let u = user_with_interests(vec![0.9, 0.05, 0.05]);
        let aligned = u.interest_alignment(&[(0, 1.0)]);
        let misaligned = u.interest_alignment(&[(2, 1.0)]);
        assert!(aligned > misaligned);
        assert!(aligned > 0.9);
    }

    #[test]
    fn alignment_handles_empty_and_out_of_range() {
        let u = user_with_interests(vec![1.0, 0.0]);
        assert_eq!(u.interest_alignment(&[]), 0.0);
        assert_eq!(u.interest_alignment(&[(99, 1.0)]), 0.0);
    }

    #[test]
    fn planned_outgoing_sums_plans() {
        let mut u = user_with_interests(vec![1.0]);
        u.planned_tweets = 3;
        u.planned_retweets = 4;
        assert_eq!(u.planned_outgoing(), 7);
    }
}
