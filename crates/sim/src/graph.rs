//! The simulated social graph.
//!
//! Twitter's follow relation is unilateral: `u` may follow `v` without `v`
//! following back; when both directions exist the users are *reciprocally
//! connected* (§2 of the paper). The builder shapes edges by two forces that
//! also shape the real graph — interest homophily (users follow accounts
//! similar to their tastes) and volume (a user keeps following accounts
//! until her feed carries the traffic she wants to consume). Posting ratios
//! (and therefore the IS/BU/IP partition) emerge from the volume targets.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use serde::{Deserialize, Serialize};

use crate::interests::cosine;
use crate::user::{User, UserId};

/// Out-degree at which a node's followee list gains a hash-set index.
/// Below this, a linear scan of the adjacency `Vec` is faster than hashing;
/// above it, the index keeps [`SocialGraph::follows`] and the
/// [`SocialGraph::add_edge`] dedup check O(1) instead of O(degree) — the
/// difference between linear and quadratic edge insertion for celebrity
/// accounts with ~10^5 followees.
const INDEX_THRESHOLD: usize = 8;

/// Directed follow edges stored in both orientations.
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    followees: Vec<Vec<UserId>>,
    followers: Vec<Vec<UserId>>,
    /// Lazily allocated per-node followee index (only for nodes whose
    /// out-degree crossed [`INDEX_THRESHOLD`]). Derived state: rebuilt on
    /// deserialization, never serialized, and only ever probed with
    /// `contains`/`insert`/`remove` — iteration order must not matter.
    index: Vec<Option<HashSet<UserId>>>,
}

impl SocialGraph {
    /// An empty graph over `n` users.
    pub fn with_users(n: usize) -> Self {
        SocialGraph {
            followees: vec![Vec::new(); n],
            followers: vec![Vec::new(); n],
            index: vec![None; n],
        }
    }

    /// Assemble a graph directly from both adjacency orientations (the
    /// deserialization path and the scale pipeline's CSR import).
    /// `followers` must be the exact transpose of `followees`.
    pub(crate) fn from_adjacency(followees: Vec<Vec<UserId>>, followers: Vec<Vec<UserId>>) -> Self {
        let index = followees
            .iter()
            .map(|list| {
                (list.len() >= INDEX_THRESHOLD)
                    .then(|| list.iter().copied().collect::<HashSet<UserId>>())
            })
            .collect();
        SocialGraph { followees, followers, index }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.followees.len()
    }

    /// Whether the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.followees.is_empty()
    }

    /// Accounts `u` follows — the set `e(u)` of the paper.
    pub fn followees(&self, u: UserId) -> &[UserId] {
        &self.followees[u.index()]
    }

    /// Accounts following `u` — the set `f(u)` of the paper.
    pub fn followers(&self, u: UserId) -> &[UserId] {
        &self.followers[u.index()]
    }

    /// Users reciprocally connected with `u`: followees ∩ followers.
    pub fn reciprocal(&self, u: UserId) -> Vec<UserId> {
        let fers: std::collections::HashSet<UserId> =
            self.followers[u.index()].iter().copied().collect();
        self.followees[u.index()].iter().copied().filter(|v| fers.contains(v)).collect()
    }

    /// Whether the edge `a → b` exists. O(1) for indexed (high out-degree)
    /// nodes, O(degree) linear scan below [`INDEX_THRESHOLD`].
    pub fn follows(&self, a: UserId, b: UserId) -> bool {
        match &self.index[a.index()] {
            Some(set) => set.contains(&b),
            None => self.followees[a.index()].contains(&b),
        }
    }

    /// Insert the edge `a → b` (idempotent; self-loops rejected).
    pub fn add_edge(&mut self, a: UserId, b: UserId) {
        if a == b || self.follows(a, b) {
            return;
        }
        self.followees[a.index()].push(b);
        self.followers[b.index()].push(a);
        match &mut self.index[a.index()] {
            Some(set) => {
                set.insert(b);
            }
            slot => {
                if self.followees[a.index()].len() >= INDEX_THRESHOLD {
                    *slot = Some(self.followees[a.index()].iter().copied().collect());
                }
            }
        }
    }

    /// Remove the edge `a → b` if present.
    pub fn remove_edge(&mut self, a: UserId, b: UserId) {
        self.followees[a.index()].retain(|&v| v != b);
        self.followers[b.index()].retain(|&v| v != a);
        if let Some(set) = &mut self.index[a.index()] {
            set.remove(&b);
        }
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.followees.iter().map(Vec::len).sum()
    }

    /// Build a graph over `users` honoring each evaluated user's planned
    /// incoming volume as closely as the population's outgoing plans allow.
    ///
    /// Evaluated users pick followees greedily by homophily but skip
    /// candidates whose volume would overshoot the feed target — this is how
    /// information producers end up following a few quiet accounts, giving
    /// them the high posting ratios of the paper's IP group. Background
    /// users follow a handful of accounts each, which supplies evaluated
    /// users with followers (the `F` source) and reciprocal connections.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, users: &[User]) -> Self {
        let n = users.len();
        let mut graph = SocialGraph::with_users(n);
        // Background users follow first so that evaluated users can prefer
        // following back, which seeds reciprocal connections.
        for i in 0..n {
            if !users[i].is_background {
                continue;
            }
            let u = users[i].id;
            let k = rng.gen_range(3..=10usize);
            let scored = score_candidates(rng, &graph, users, i, 0.15);
            for &(_, j) in scored.iter().take(k) {
                graph.add_edge(u, users[j].id);
            }
        }
        // Evaluated users with the largest feeds select next.
        let mut order: Vec<usize> = (0..n).filter(|&i| !users[i].is_background).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(users[i].planned_incoming));
        for &i in &order {
            let u = users[i].id;
            let target = users[i].planned_incoming;
            let budget = (target as f64 * 1.15) as usize + 1;
            let scored = score_candidates(rng, &graph, users, i, 0.4);
            let mut incoming = 0usize;
            for &(_, j) in &scored {
                if incoming >= target {
                    break;
                }
                let volume = users[j].planned_outgoing();
                // Skip oversized candidates — a smaller account may fit
                // further down the ranking.
                if incoming + volume > budget {
                    continue;
                }
                graph.add_edge(u, users[j].id);
                incoming += volume;
            }
            // The paper filters out users with fewer than three followees;
            // top up with the quietest unfollowed accounts so that tight
            // feed budgets still yield a valid user.
            if graph.followees(u).len() < 3 {
                let mut by_volume: Vec<usize> = (0..users.len()).filter(|&j| j != i).collect();
                by_volume.sort_by_key(|&j| users[j].planned_outgoing());
                for &j in &by_volume {
                    if graph.followees(u).len() >= 3 {
                        break;
                    }
                    graph.add_edge(u, users[j].id);
                }
            }
        }
        graph.repair(rng, users);
        graph
    }

    /// Post-build repair for evaluated users: every one must have ≥ 3
    /// followers, ≥ 3 followees (the paper filters out anyone below that)
    /// and ≥ 1 reciprocal connection (so the C source is never empty).
    fn repair<R: Rng + ?Sized>(&mut self, rng: &mut R, users: &[User]) {
        let n = users.len();
        for i in 0..n {
            if users[i].is_background {
                continue;
            }
            let u = users[i].id;
            // Followers: ask random background users to follow u.
            while self.followers(u).len() < 3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    self.add_edge(users[j].id, u);
                }
            }
            // Reciprocal: follow back an interest-similar *low-volume*
            // follower so the feed target is not wrecked.
            if self.reciprocal(u).is_empty() {
                let mut candidates: Vec<UserId> = self.followers(u).to_vec();
                candidates.sort_by_key(|v| users[v.index()].planned_outgoing());
                candidates.truncate(5);
                let best = candidates.into_iter().max_by(|&a, &b| {
                    let sa = cosine(&users[i].interests, &users[a.index()].interests);
                    let sb = cosine(&users[i].interests, &users[b.index()].interests);
                    sa.total_cmp(&sb)
                });
                // Unreachable in practice — the follower loop above
                // guarantees candidates — but a skip beats a panic.
                let Some(best) = best else { continue };
                let added = !self.follows(u, best);
                self.add_edge(u, best);
                // Swap out the followee of closest volume so the follow-back
                // does not inflate the feed beyond its planned size.
                if added && self.followees(u).len() > 3 {
                    let v = users[best.index()].planned_outgoing() as i64;
                    let swap = self
                        .followees(u)
                        .iter()
                        .copied()
                        .filter(|&w| w != best)
                        .min_by_key(|w| (users[w.index()].planned_outgoing() as i64 - v).abs());
                    if let Some(w) = swap {
                        self.remove_edge(u, w);
                    }
                }
            }
        }
        // A final shuffle of adjacency lists removes any order artifacts.
        for list in self.followees.iter_mut().chain(self.followers.iter_mut()) {
            list.shuffle(rng);
        }
    }
}

// Manual serde keeps the wire format identical to the original two-field
// derive — the followee index is derived state and is rebuilt on load.
impl Serialize for SocialGraph {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("followees".to_owned(), self.followees.serialize()),
            ("followers".to_owned(), self.followers.serialize()),
        ])
    }
}

impl Deserialize for SocialGraph {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::value::expect_object(v, "SocialGraph")?;
        let followees = Vec::<Vec<UserId>>::deserialize(serde::value::expect_field(
            obj,
            "followees",
            "SocialGraph",
        )?)?;
        let followers = Vec::<Vec<UserId>>::deserialize(serde::value::expect_field(
            obj,
            "followers",
            "SocialGraph",
        )?)?;
        Ok(SocialGraph::from_adjacency(followees, followers))
    }
}

/// Score every other user as a followee candidate for user `i`:
/// interest homophily + a follow-back bonus + uniform jitter, sorted
/// descending.
fn score_candidates<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    users: &[User],
    i: usize,
    follow_back_bonus: f32,
) -> Vec<(f32, usize)> {
    let u = users[i].id;
    let mut scored: Vec<(f32, usize)> = (0..users.len())
        .filter(|&j| j != i)
        .map(|j| {
            let homophily = cosine(&users[i].interests, &users[j].interests);
            let follow_back = if graph.follows(users[j].id, u) { follow_back_bonus } else { 0.0 };
            // Real follow graphs are language-assortative: people mostly
            // follow accounts they can read.
            let same_lang = if users[i].language == users[j].language { 0.35 } else { 0.0 };
            // Substantial jitter keeps feeds diverse: real users follow
            // plenty of accounts outside their core interests (news,
            // celebrities, acquaintances), which is what makes a feed's
            // never-retweeted items separable from its retweeted ones.
            let jitter: f32 = rng.gen_range(0.0..1.0);
            (homophily + follow_back + same_lang + jitter, j)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_text::Language;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk_users(n: usize, seed: u64) -> Vec<User> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let interests = crate::interests::dirichlet(&mut rng, 8, 0.2);
                User {
                    id: UserId(i as u32),
                    handle: format!("u{i}"),
                    interests,
                    language: Language::English,
                    secondary_language: Language::English,
                    planned_tweets: 20 + (i % 7) * 10,
                    planned_retweets: 10 + (i % 5) * 5,
                    planned_incoming: 60 + (i % 11) * 40,
                    band: 0,
                    is_background: i % 3 == 0,
                    style_tokens: Vec::new(),
                    chatter_topics: Vec::new(),
                }
            })
            .collect()
    }

    #[test]
    fn edges_are_idempotent_and_loop_free() {
        let mut g = SocialGraph::with_users(3);
        g.add_edge(UserId(0), UserId(1));
        g.add_edge(UserId(0), UserId(1));
        g.add_edge(UserId(2), UserId(2));
        assert_eq!(g.edge_count(), 1);
        assert!(g.follows(UserId(0), UserId(1)));
        assert!(!g.follows(UserId(1), UserId(0)));
        assert!(!g.follows(UserId(2), UserId(2)));
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = SocialGraph::with_users(2);
        g.add_edge(UserId(0), UserId(1));
        g.remove_edge(UserId(0), UserId(1));
        assert_eq!(g.edge_count(), 0);
        assert!(g.followers(UserId(1)).is_empty());
    }

    #[test]
    fn reciprocal_is_intersection() {
        let mut g = SocialGraph::with_users(3);
        g.add_edge(UserId(0), UserId(1));
        g.add_edge(UserId(1), UserId(0));
        g.add_edge(UserId(0), UserId(2));
        assert_eq!(g.reciprocal(UserId(0)), vec![UserId(1)]);
    }

    #[test]
    fn celebrity_edge_insertion_is_near_linear() {
        // Regression guard for the O(deg) `Vec::contains` dedup that made
        // edge insertion quadratic: 10^5 edges out of (and into) one node
        // finished in ~tens of milliseconds with the hash index, versus
        // minutes with the linear scan. The generous bound only trips on a
        // quadratic regression, not on a slow machine.
        const N: u32 = 100_000;
        let mut g = SocialGraph::with_users(N as usize + 1);
        let celeb = UserId(0);
        // pmr-lint: allow(wall-clock): measuring insertion complexity is this test's purpose
        let start = std::time::Instant::now();
        for i in 1..=N {
            g.add_edge(UserId(i), celeb); // fan-in
            g.add_edge(celeb, UserId(i)); // fan-out (the quadratic direction)
        }
        assert_eq!(g.followers(celeb).len(), N as usize);
        assert_eq!(g.followees(celeb).len(), N as usize);
        assert!(g.follows(celeb, UserId(N)));
        assert!(!g.follows(celeb, celeb));
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_secs() < 10,
            "2x10^5 celebrity edges took {elapsed:?}; insertion has gone superlinear"
        );
    }

    #[test]
    fn indexed_and_scanned_nodes_agree_after_removal() {
        // Cross the index threshold, then remove edges: `follows` must stay
        // consistent between the indexed node and an unindexed one.
        let mut g = SocialGraph::with_users(40);
        for i in 1..30 {
            g.add_edge(UserId(0), UserId(i));
        }
        g.add_edge(UserId(1), UserId(2));
        g.remove_edge(UserId(0), UserId(7));
        g.remove_edge(UserId(1), UserId(2));
        assert!(!g.follows(UserId(0), UserId(7)));
        assert!(!g.follows(UserId(1), UserId(2)));
        assert!(g.follows(UserId(0), UserId(8)));
        g.add_edge(UserId(0), UserId(7));
        assert!(g.follows(UserId(0), UserId(7)));
        assert_eq!(g.followees(UserId(0)).len(), 29);
    }

    #[test]
    fn serialization_round_trips_and_rebuilds_the_index() {
        let users = mk_users(25, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let g = SocialGraph::build(&mut rng, &users);
        let back = SocialGraph::deserialize(&g.serialize()).expect("round trip");
        for u in &users {
            assert_eq!(g.followees(u.id), back.followees(u.id));
            assert_eq!(g.followers(u.id), back.followers(u.id));
            for v in &users {
                assert_eq!(g.follows(u.id, v.id), back.follows(u.id, v.id));
            }
        }
    }

    #[test]
    fn build_meets_paper_filters() {
        let users = mk_users(30, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let g = SocialGraph::build(&mut rng, &users);
        for u in users.iter().filter(|u| !u.is_background) {
            assert!(g.followees(u.id).len() >= 3, "user {:?} has too few followees", u.id);
            assert!(g.followers(u.id).len() >= 3, "user {:?} has too few followers", u.id);
            assert!(!g.reciprocal(u.id).is_empty(), "user {:?} has no reciprocal", u.id);
        }
    }

    #[test]
    fn build_tracks_incoming_targets() {
        let users = mk_users(40, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let g = SocialGraph::build(&mut rng, &users);
        // Incoming volume should correlate with the plan: evaluated users
        // with large targets end up with more feed traffic than users with
        // small ones.
        let feed = |u: &User| -> usize {
            g.followees(u.id).iter().map(|v| users[v.index()].planned_outgoing()).sum()
        };
        let mut evaluated: Vec<&User> = users.iter().filter(|u| !u.is_background).collect();
        evaluated.sort_by_key(|u| u.planned_incoming);
        let k = evaluated.len() / 3;
        let small_avg: f64 = evaluated[..k].iter().map(|u| feed(u) as f64).sum::<f64>() / k as f64;
        let large_avg: f64 =
            evaluated[evaluated.len() - k..].iter().map(|u| feed(u) as f64).sum::<f64>() / k as f64;
        assert!(
            large_avg > small_avg,
            "large-feed users should receive more: {large_avg} vs {small_avg}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let users = mk_users(20, 5);
        let g1 = SocialGraph::build(&mut StdRng::seed_from_u64(6), &users);
        let g2 = SocialGraph::build(&mut StdRng::seed_from_u64(6), &users);
        for u in &users {
            assert_eq!(g1.followees(u.id), g2.followees(u.id));
        }
    }
}
