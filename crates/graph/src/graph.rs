//! N-gram graph construction and the update (merge) operator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pmr_text::vocab::{TermId, Vocabulary};

/// Packs an undirected edge into a single key with the smaller endpoint in
/// the high half, making `(a, b)` and `(b, a)` identical.
fn edge_key(a: TermId, b: TermId) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Unpack an edge key into its endpoints.
fn edge_endpoints(key: u64) -> (TermId, TermId) {
    ((key >> 32) as TermId, (key & 0xFFFF_FFFF) as TermId)
}

/// A shared interning space so that graphs built from different documents
/// use the same vertex ids and can be compared edge-by-edge.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphSpace {
    vocab: Vocabulary,
}

impl GraphSpace {
    /// An empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct n-grams interned so far.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// Whether no n-gram has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// The surface form of a vertex.
    pub fn gram(&self, id: TermId) -> &str {
        self.vocab.term(id)
    }

    /// Build the graph of a document from its ordered n-gram sequence.
    ///
    /// Every pair of grams at positions `i < j ≤ i + window` is connected;
    /// each co-occurrence adds 1 to the edge weight. This is the windowed
    /// co-occurrence rule of Giannakopoulos et al. with window size `n`.
    pub fn graph_from_grams<S: AsRef<str>>(&mut self, grams: &[S], window: usize) -> NGramGraph {
        assert!(window >= 1, "window must be at least 1");
        let ids: Vec<TermId> = grams.iter().map(|g| self.vocab.intern(g.as_ref())).collect();
        let mut edges: HashMap<u64, f32> = HashMap::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len().min(i + window + 1) {
                *edges.entry(edge_key(ids[i], ids[j])).or_insert(0.0) += 1.0;
            }
        }
        NGramGraph { edges, merged_docs: 1 }
    }
}

/// An undirected weighted n-gram graph (a document model or, after merging,
/// a user model).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NGramGraph {
    edges: HashMap<u64, f32>,
    /// How many document graphs this graph aggregates (1 for a plain
    /// document model). Drives the learning factor of the update operator.
    merged_docs: usize,
}

impl NGramGraph {
    /// An empty graph (merging into it behaves as the identity).
    pub fn new() -> Self {
        NGramGraph { edges: HashMap::new(), merged_docs: 0 }
    }

    /// Number of edges — the graph size `|G|` used by all similarities.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// How many document graphs were merged into this one.
    pub fn merged_docs(&self) -> usize {
        self.merged_docs
    }

    /// The weight of the edge between two grams (0 if absent).
    pub fn weight(&self, a: TermId, b: TermId) -> f32 {
        self.edges.get(&edge_key(a, b)).copied().unwrap_or(0.0)
    }

    /// Whether the edge between two grams exists.
    pub fn contains(&self, a: TermId, b: TermId) -> bool {
        self.edges.contains_key(&edge_key(a, b))
    }

    /// Iterate over `(endpoint_a, endpoint_b, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (TermId, TermId, f32)> + '_ {
        self.edges.iter().map(|(&k, &w)| {
            let (a, b) = edge_endpoints(k);
            (a, b, w)
        })
    }

    /// Raw edge map access for the similarity kernels.
    pub(crate) fn raw(&self) -> &HashMap<u64, f32> {
        &self.edges
    }

    /// The update operator (Giannakopoulos & Palpanas 2010): merge a
    /// document graph into this (user) graph with learning factor
    /// `l = 1 / (merged_docs + 1)`, so that after merging `k` documents
    /// every edge weight is the running average of its per-document weights
    /// (documents lacking an edge contribute 0).
    pub fn merge(&mut self, doc: &NGramGraph) {
        let l = 1.0 / (self.merged_docs as f32 + 1.0);
        // Existing edges move toward the document's weight (0 if absent).
        for (key, w) in self.edges.iter_mut() {
            let dw = doc.edges.get(key).copied().unwrap_or(0.0);
            *w += (dw - *w) * l;
        }
        // New edges appear with their averaged share.
        for (key, &dw) in &doc.edges {
            self.edges.entry(*key).or_insert(dw * l);
        }
        self.edges.retain(|_, w| *w != 0.0);
        self.merged_docs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grams(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn edge_keys_are_symmetric() {
        assert_eq!(edge_key(3, 7), edge_key(7, 3));
        assert_ne!(edge_key(3, 7), edge_key(3, 8));
        assert_eq!(edge_endpoints(edge_key(3, 7)), (3, 7));
    }

    #[test]
    fn window_one_connects_adjacent_grams() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams(&grams("a b c"), 1);
        assert_eq!(g.size(), 2); // a-b, b-c
        let a = 0;
        let b = 1;
        let c = 2;
        assert!(g.contains(a, b));
        assert!(g.contains(b, c));
        assert!(!g.contains(a, c));
    }

    #[test]
    fn window_two_reaches_one_further() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams(&grams("a b c"), 2);
        assert_eq!(g.size(), 3); // a-b, a-c, b-c
    }

    #[test]
    fn repeated_cooccurrence_increases_weight() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams(&grams("a b a b"), 1);
        // Adjacent pairs: (a,b), (b,a), (a,b) — all the same undirected edge.
        assert_eq!(g.weight(0, 1), 3.0);
    }

    #[test]
    fn same_gram_twice_in_window_forms_self_edge() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams(&grams("a a"), 1);
        assert_eq!(g.weight(0, 0), 1.0);
    }

    #[test]
    fn order_matters_through_shared_space() {
        // "bob sues" vs "sues bob": same grams, different *edges* only if
        // window < distance; with bigram tokens the graphs coincide, but
        // with the grams of a longer phrase they differ.
        let mut space = GraphSpace::new();
        let g1 = space.graph_from_grams(&grams("bob sues jim"), 1);
        let g2 = space.graph_from_grams(&grams("jim sues bob"), 1);
        // Both contain bob-sues and sues-jim edges (undirected), so these
        // tiny graphs coincide; global context shows up through *window*
        // composition:
        let g3 = space.graph_from_grams(&grams("bob sues jim hard"), 1);
        assert!(g1.size() == g2.size());
        assert!(g3.size() > g1.size());
    }

    #[test]
    fn merge_averages_weights() {
        let mut space = GraphSpace::new();
        let d1 = space.graph_from_grams(&grams("a b"), 1); // a-b: 1
        let d2 = space.graph_from_grams(&grams("a b a b"), 1); // a-b: 3
        let mut user = NGramGraph::new();
        user.merge(&d1);
        assert_eq!(user.weight(0, 1), 1.0);
        user.merge(&d2);
        assert_eq!(user.weight(0, 1), 2.0); // average of 1 and 3
        assert_eq!(user.merged_docs(), 2);
    }

    #[test]
    fn merge_dilutes_edges_missing_from_new_docs() {
        let mut space = GraphSpace::new();
        let d1 = space.graph_from_grams(&grams("a b"), 1);
        let d2 = space.graph_from_grams(&grams("c d"), 1);
        let mut user = NGramGraph::new();
        user.merge(&d1);
        user.merge(&d2);
        // a-b averaged over 2 docs: (1 + 0)/2; c-d likewise.
        assert_eq!(user.weight(0, 1), 0.5);
        assert_eq!(user.weight(2, 3), 0.5);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut space = GraphSpace::new();
        let d = space.graph_from_grams(&grams("a b c"), 2);
        let mut user = NGramGraph::new();
        user.merge(&d);
        assert_eq!(user.size(), d.size());
        for (a, b, w) in d.edges() {
            assert_eq!(user.weight(a, b), w);
        }
    }

    #[test]
    fn empty_gram_sequences_yield_empty_graphs() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams::<String>(&[], 3);
        assert!(g.is_empty());
        let g = space.graph_from_grams(&grams("solo"), 3);
        assert!(g.is_empty(), "a single gram has no co-occurrences");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After merging k single-doc graphs, every edge weight equals the
        /// arithmetic mean of its per-document weights.
        #[test]
        fn merge_is_running_average(
            docs in proptest::collection::vec(
                proptest::collection::vec("[ab]{1,2}", 2..8), 1..6),
            window in 1usize..3,
        ) {
            let mut space = GraphSpace::new();
            let doc_graphs: Vec<NGramGraph> =
                docs.iter().map(|d| space.graph_from_grams(d, window)).collect();
            let mut user = NGramGraph::new();
            for g in &doc_graphs {
                user.merge(g);
            }
            let k = doc_graphs.len() as f32;
            for (a, b, w) in user.edges() {
                let mean: f32 =
                    doc_graphs.iter().map(|g| g.weight(a, b)).sum::<f32>() / k;
                prop_assert!((w - mean).abs() < 1e-4, "edge ({a},{b}): {w} vs {mean}");
            }
        }

        /// Graph size is bounded by the number of windowed pairs.
        #[test]
        fn size_is_bounded(dgrams in proptest::collection::vec("[a-d]{1,2}", 0..20), window in 1usize..4) {
            let mut space = GraphSpace::new();
            let g = space.graph_from_grams(&dgrams, window);
            let max_pairs: usize = (0..dgrams.len())
                .map(|i| dgrams.len().min(i + window + 1) - i - 1)
                .sum();
            prop_assert!(g.size() <= max_pairs);
        }
    }
}
