//! Graph similarity measures (§3.2).
//!
//! * **CoS** — containment similarity: the share of common edges,
//!   `Σ_{e∈G_i} μ(e, G_j) / min(|G_i|, |G_j|)`;
//! * **VS** — value similarity: weight-aware,
//!   `Σ_{e∈G_i∩G_j} min(w_e^i, w_e^j) / max(w_e^i, w_e^j) / max(|G_i|, |G_j|)`;
//! * **NS** — normalized value similarity: like VS but dividing by
//!   `min(|G_i|, |G_j|)` to soften size imbalance.

use serde::{Deserialize, Serialize};

use crate::graph::NGramGraph;

/// The three graph similarity measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphSimilarity {
    /// Containment similarity.
    Containment,
    /// Value similarity.
    Value,
    /// Normalized value similarity.
    NormalizedValue,
}

impl GraphSimilarity {
    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GraphSimilarity::Containment => "CoS",
            GraphSimilarity::Value => "VS",
            GraphSimilarity::NormalizedValue => "NS",
        }
    }

    /// Similarity between two graphs.
    pub fn compare(self, a: &NGramGraph, b: &NGramGraph) -> f64 {
        match self {
            GraphSimilarity::Containment => containment(a, b),
            GraphSimilarity::Value => value(a, b),
            GraphSimilarity::NormalizedValue => normalized_value(a, b),
        }
    }
}

/// Iterate over the common edges, summing `min(w_a, w_b) / max(w_a, w_b)`.
/// Iterates the smaller edge map and probes the larger.
///
/// The per-edge terms are collected and sorted by edge key before the f64
/// accumulation: float addition is not associative, so summing in hash-map
/// iteration order would let the process-random hash seed pick the final
/// bits. Rankings survive that noise (which is why the batch sweep, which
/// persists only rank-derived APs, never noticed), but `pmr-serve` logs raw
/// scores and diffs them byte-for-byte across processes.
fn value_sum(a: &NGramGraph, b: &NGramGraph) -> f64 {
    let (small, large) = if a.size() <= b.size() { (a, b) } else { (b, a) };
    let mut terms: Vec<(u64, f64)> = Vec::new();
    for (key, &ws) in small.raw() {
        if let Some(&wl) = large.raw().get(key) {
            let (ws, wl) = (ws.abs() as f64, wl.abs() as f64);
            let hi = ws.max(wl);
            if hi > 0.0 {
                terms.push((*key, ws.min(wl) / hi));
            }
        }
    }
    terms.sort_unstable_by_key(|&(key, _)| key);
    let mut sum = 0.0f64;
    for &(_, term) in &terms {
        sum += term;
    }
    sum
}

/// Number of edges shared by the two graphs.
fn common_edges(a: &NGramGraph, b: &NGramGraph) -> usize {
    let (small, large) = if a.size() <= b.size() { (a, b) } else { (b, a) };
    small.raw().keys().filter(|k| large.raw().contains_key(k)).count()
}

/// Containment similarity.
pub fn containment(a: &NGramGraph, b: &NGramGraph) -> f64 {
    let denom = a.size().min(b.size());
    if denom == 0 {
        return 0.0;
    }
    common_edges(a, b) as f64 / denom as f64
}

/// Value similarity.
pub fn value(a: &NGramGraph, b: &NGramGraph) -> f64 {
    let denom = a.size().max(b.size());
    if denom == 0 {
        return 0.0;
    }
    value_sum(a, b) / denom as f64
}

/// Normalized value similarity.
pub fn normalized_value(a: &NGramGraph, b: &NGramGraph) -> f64 {
    let denom = a.size().min(b.size());
    if denom == 0 {
        return 0.0;
    }
    value_sum(a, b) / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphSpace;

    fn grams(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn identical_graphs_score_one() {
        let mut space = GraphSpace::new();
        let g = space.graph_from_grams(&grams("a b c d"), 2);
        for s in
            [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
        {
            assert!((s.compare(&g, &g) - 1.0).abs() < 1e-9, "{}", s.name());
        }
    }

    #[test]
    fn disjoint_graphs_score_zero() {
        let mut space = GraphSpace::new();
        let a = space.graph_from_grams(&grams("a b"), 1);
        let b = space.graph_from_grams(&grams("c d"), 1);
        for s in
            [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
        {
            assert_eq!(s.compare(&a, &b), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn empty_graphs_score_zero() {
        let g = NGramGraph::new();
        let mut space = GraphSpace::new();
        let h = space.graph_from_grams(&grams("a b"), 1);
        for s in
            [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
        {
            assert_eq!(s.compare(&g, &h), 0.0);
            assert_eq!(s.compare(&g, &g), 0.0);
        }
    }

    #[test]
    fn containment_ignores_weights() {
        let mut space = GraphSpace::new();
        let a = space.graph_from_grams(&grams("a b a b a b"), 1); // heavy a-b
        let b = space.graph_from_grams(&grams("a b"), 1); // light a-b
        assert!((containment(&a, &b) - 1.0).abs() < 1e-9);
        // VS sees the weight imbalance (1 vs 5).
        assert!(value(&a, &b) < 1.0);
    }

    #[test]
    fn ns_softens_size_imbalance() {
        let mut space = GraphSpace::new();
        // Small graph fully contained in a big one.
        let small = space.graph_from_grams(&grams("a b"), 1);
        let big = space.graph_from_grams(&grams("a b c d e f g h"), 1);
        assert!(normalized_value(&small, &big) > value(&small, &big));
    }

    #[test]
    fn vs_matches_hand_computation() {
        let mut space = GraphSpace::new();
        let a = space.graph_from_grams(&grams("x y x y"), 1); // x-y weight 3
        let b = space.graph_from_grams(&grams("x y z"), 1); // x-y weight 1, y-z weight 1
                                                            // Common edge x-y: min/max = 1/3. |Ga|=1, |Gb|=2.
        assert!((value(&a, &b) - (1.0 / 3.0) / 2.0).abs() < 1e-9);
        assert!((normalized_value(&a, &b) - (1.0 / 3.0) / 1.0).abs() < 1e-9);
        assert!((containment(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(GraphSimilarity::Containment.name(), "CoS");
        assert_eq!(GraphSimilarity::Value.name(), "VS");
        assert_eq!(GraphSimilarity::NormalizedValue.name(), "NS");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::GraphSpace;
    use proptest::prelude::*;

    fn arb_doc() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-e]{1,2}", 0..15)
    }

    proptest! {
        #[test]
        fn similarities_are_symmetric_and_bounded(d1 in arb_doc(), d2 in arb_doc(), w in 1usize..4) {
            let mut space = GraphSpace::new();
            let a = space.graph_from_grams(&d1, w);
            let b = space.graph_from_grams(&d2, w);
            for s in [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue] {
                let xy = s.compare(&a, &b);
                let yx = s.compare(&b, &a);
                prop_assert!((xy - yx).abs() < 1e-9, "{} not symmetric", s.name());
                prop_assert!(xy >= 0.0);
                // CoS and NS are ≤ 1; VS ≤ 1 as well (each common edge
                // contributes ≤ 1 and the denominator is ≥ the count).
                prop_assert!(xy <= 1.0 + 1e-9, "{} out of range: {xy}", s.name());
            }
        }

        #[test]
        fn vs_never_exceeds_ns_or_cos(d1 in arb_doc(), d2 in arb_doc()) {
            let mut space = GraphSpace::new();
            let a = space.graph_from_grams(&d1, 2);
            let b = space.graph_from_grams(&d2, 2);
            prop_assert!(value(&a, &b) <= normalized_value(&a, &b) + 1e-9);
            prop_assert!(value(&a, &b) <= containment(&a, &b) + 1e-9);
        }
    }
}
