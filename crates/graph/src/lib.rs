//! # pmr-graph
//!
//! N-gram graph representation models — the global context-aware family of
//! the paper's taxonomy (§3).
//!
//! An n-gram graph (Giannakopoulos et al. 2008) represents a document as an
//! undirected weighted graph: one vertex per n-gram, an edge between every
//! pair of n-grams that co-occur within a window of size `n`, weighted by
//! their co-occurrence frequency. The token instantiation is **TNG**, the
//! character instantiation **CNG**; both share this crate's machinery and
//! differ only in how the n-grams were extracted (`pmr-text`).
//!
//! User models are built by merging document graphs with the incremental
//! *update operator* ([`NGramGraph::merge`]); graphs are compared with the
//! containment, value and normalized value similarities ([`similarity`]).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod similarity;

pub use graph::{GraphSpace, NGramGraph};
pub use similarity::GraphSimilarity;
