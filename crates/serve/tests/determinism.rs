//! The serving engine's determinism contract, enforced in-repo (CI's
//! `serve-smoke` job repeats the same checks across *processes*): shard
//! count, queue capacity, feature-precompute thread count, and the
//! retrieval mode must never change a byte of recommendation or snapshot
//! output. [`RuntimeOptions::default`] enables the incremental window
//! index (`RetrievalMode::Wand`), so every layout-invariance test below
//! exercises the indexed path unless it says otherwise.

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_core::{PreparedCorpus, RetrievalMode, SplitConfig};
use pmr_graph::GraphSimilarity;
use pmr_serve::{
    rec_log, EngineConfig, EngineSnapshot, Replay, ReplayOptions, RuntimeOptions, Scheduler,
    ServeModel,
};
use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

fn prepared(seed: u64) -> PreparedCorpus {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, seed));
    PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed")
}

fn bag_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Bag {
                weighting: WeightingScheme::TFIDF,
                similarity: BagSimilarity::Cosine,
                char_grams: false,
                n: 1,
                decay: 0.95,
            },
            window: 32,
        },
        runtime: RuntimeOptions { shards: 1, queue_capacity: 64, ..RuntimeOptions::default() },
        k: 5,
        query_every: 10,
        jobs: 1,
    }
}

fn graph_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Graph {
                similarity: GraphSimilarity::Value,
                char_grams: false,
                n: 1,
            },
            window: 16,
        },
        runtime: RuntimeOptions { shards: 1, queue_capacity: 64, ..RuntimeOptions::default() },
        k: 5,
        query_every: 25,
        jobs: 1,
    }
}

/// Small topic budget (K = 8, 12 training sweeps) so debug-mode test runs
/// stay quick; `background_refresh: 0` keeps the epoch-0 background for the
/// whole replay (the refresh cadence is pinned by the reshard suite).
fn topic_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Topic {
                topics: 8,
                alpha: 50.0 / 8.0,
                beta: 0.01,
                train_iterations: 12,
                foldin_iterations: 4,
                seed: 7,
                decay: 0.95,
                background_refresh: 0,
            },
            window: 16,
        },
        runtime: RuntimeOptions { shards: 1, queue_capacity: 64, ..RuntimeOptions::default() },
        k: 5,
        query_every: 25,
        jobs: 1,
    }
}

#[test]
fn shard_count_does_not_change_bag_recommendations() {
    let prepared = prepared(42);
    let mut options = bag_options();
    let baseline = Replay::run(&prepared, options);
    assert!(baseline.queries > 0, "the replay must actually issue queries");
    assert_eq!(
        baseline.recommendations.len() as u64,
        baseline.queries,
        "every query must be answered exactly once"
    );
    for shards in [2, 4, 7] {
        options.runtime = RuntimeOptions { shards, queue_capacity: 8, ..RuntimeOptions::default() };
        let sharded = Replay::run(&prepared, options);
        assert_eq!(
            rec_log(&sharded.recommendations).expect("log serializes"),
            rec_log(&baseline.recommendations).expect("log serializes"),
            "{shards} shards must produce the byte-identical recommendation log"
        );
    }
}

#[test]
fn shard_count_does_not_change_graph_recommendations() {
    let prepared = prepared(43);
    let mut options = graph_options();
    let baseline = Replay::run(&prepared, options);
    assert!(baseline.queries > 0, "the replay must actually issue queries");
    options.runtime = RuntimeOptions { shards: 4, queue_capacity: 16, ..RuntimeOptions::default() };
    let sharded = Replay::run(&prepared, options);
    assert_eq!(
        rec_log(&sharded.recommendations).expect("log serializes"),
        rec_log(&baseline.recommendations).expect("log serializes"),
        "graph scores must be bit-identical across shard layouts"
    );
}

#[test]
fn shard_count_does_not_change_topic_recommendations() {
    // Fold-in θ is a pure function of (background φ, doc, doc key), and the
    // per-shard θ memo only caches those pure values — so cache hit/miss
    // patterns that differ across layouts cannot reach the output bytes.
    let prepared = prepared(53);
    let mut options = topic_options();
    let baseline = Replay::run(&prepared, options);
    assert!(baseline.queries > 0, "the replay must actually issue queries");
    for shards in [2, 4, 7] {
        options.runtime = RuntimeOptions { shards, queue_capacity: 8, ..RuntimeOptions::default() };
        let sharded = Replay::run(&prepared, options);
        assert_eq!(
            rec_log(&sharded.recommendations).expect("log serializes"),
            rec_log(&baseline.recommendations).expect("log serializes"),
            "{shards} shards must produce the byte-identical topic recommendation log"
        );
    }
}

#[test]
fn feature_jobs_do_not_change_recommendations() {
    let prepared = prepared(44);
    let mut options = bag_options();
    let one = Replay::run(&prepared, options);
    options.jobs = 4;
    let four = Replay::run(&prepared, options);
    assert_eq!(
        rec_log(&one.recommendations).expect("log serializes"),
        rec_log(&four.recommendations).expect("log serializes"),
        "feature precompute parallelism must not leak into output"
    );
}

#[test]
fn snapshot_restores_bit_identical_continuations() {
    let prepared = prepared(45);
    let options = bag_options();

    // Uninterrupted reference run.
    let reference = Replay::run(&prepared, options);

    // Paused run: snapshot halfway, push the snapshot through its JSONL
    // wire format, resume under a *different* shard layout, and finish.
    let mut first_half = Replay::new(&prepared, options);
    let midpoint = first_half.stream_len() / 2;
    first_half.run_to(midpoint);
    let snapshot = first_half.snapshot().expect("all shards alive");
    let paused_queries = snapshot.header.queries;
    let wire = snapshot.to_jsonl().expect("snapshot serializes");
    let restored = EngineSnapshot::from_jsonl(&wire).expect("snapshot parses");
    let head = first_half.finish();

    let mut resumed_options = options;
    resumed_options.runtime =
        RuntimeOptions { shards: 3, queue_capacity: 32, ..RuntimeOptions::default() };
    let mut second_half =
        Replay::resume(&prepared, &restored, resumed_options).expect("configs match");
    assert_eq!(second_half.position(), midpoint);
    second_half.run_to_end();
    let tail = second_half.finish();

    // Head + tail must replicate the reference byte-for-byte.
    let stitched: Vec<_> =
        head.recommendations.iter().chain(tail.recommendations.iter()).cloned().collect();
    assert_eq!(
        rec_log(&stitched).expect("log serializes"),
        rec_log(&reference.recommendations).expect("log serializes"),
        "pause/resume must not change a single recommendation"
    );
    assert!(paused_queries > 0 && (tail.queries - paused_queries) > 0);
}

#[test]
fn snapshot_bytes_are_independent_of_shard_count() {
    for (seed, options) in [(46, graph_options()), (54, topic_options())] {
        let prepared = prepared(seed);
        let mut options = options;
        let mut runs = Vec::new();
        for shards in [1, 4] {
            options.runtime =
                RuntimeOptions { shards, queue_capacity: 16, ..RuntimeOptions::default() };
            let mut replay = Replay::new(&prepared, options);
            replay.run_to(replay.stream_len() / 3);
            runs.push(
                replay
                    .snapshot()
                    .expect("all shards alive")
                    .to_jsonl()
                    .expect("snapshot serializes"),
            );
            let _ = replay.finish();
        }
        assert_eq!(runs[0], runs[1], "snapshots must not encode the shard layout");
    }
}

#[test]
fn resume_rejects_mismatched_configs() {
    let prepared = prepared(47);
    let options = bag_options();
    let mut replay = Replay::new(&prepared, options);
    replay.run_to(20);
    let snapshot = replay.snapshot().expect("all shards alive");
    let _ = replay.finish();
    let mut wrong = options;
    wrong.config.window += 1;
    assert!(
        Replay::resume(&prepared, &snapshot, wrong).is_err(),
        "a snapshot only makes sense under the config that produced it"
    );
}

#[test]
fn retrieval_mode_does_not_change_recommendations() {
    // The window index is mechanical: pruned-with-zero-fill must replicate
    // exhaustive scoring byte-for-byte, for every model family, across
    // shard layouts. The topic family posts nothing to the window index
    // (α-smoothed θ gives non-zero cosine even with zero shared tokens),
    // so for it this pins that both modes fall back to exhaustive scoring.
    for (seed, options) in [(49, bag_options()), (50, graph_options()), (56, topic_options())] {
        let prepared = prepared(seed);
        let mut options = options;
        options.runtime.retrieval = RetrievalMode::Exhaustive;
        let exhaustive = Replay::run(&prepared, options);
        assert!(exhaustive.queries > 0, "the replay must actually issue queries");
        for shards in [1, 4] {
            options.runtime = RuntimeOptions {
                shards,
                queue_capacity: 16,
                retrieval: RetrievalMode::Wand,
                ..RuntimeOptions::default()
            };
            let indexed = Replay::run(&prepared, options);
            assert_eq!(
                rec_log(&indexed.recommendations).expect("log serializes"),
                rec_log(&exhaustive.recommendations).expect("log serializes"),
                "wand over {shards} shard(s) must replicate exhaustive scoring byte-for-byte"
            );
        }
    }
}

#[test]
fn scheduler_and_worker_count_do_not_change_recommendations() {
    // The work-stealing runtime multiplexes logical shards over arbitrary
    // worker counts; the thread-per-shard baseline pins one thread per
    // shard. All of it is mechanical: same shards, same bytes.
    for (seed, options) in [(51, bag_options()), (52, graph_options()), (55, topic_options())] {
        let prepared = prepared(seed);
        let mut options = options;
        options.runtime = RuntimeOptions {
            shards: 8,
            queue_capacity: 8,
            scheduler: Scheduler::Threaded,
            ..RuntimeOptions::default()
        };
        let threaded = Replay::run(&prepared, options);
        assert!(threaded.queries > 0, "the replay must actually issue queries");
        for workers in [1, 4] {
            options.runtime = RuntimeOptions {
                shards: 8,
                workers,
                queue_capacity: 8,
                scheduler: Scheduler::WorkSteal,
                ..RuntimeOptions::default()
            };
            let stolen = Replay::run(&prepared, options);
            assert_eq!(
                rec_log(&stolen.recommendations).expect("log serializes"),
                rec_log(&threaded.recommendations).expect("log serializes"),
                "worksteal({workers} workers) must replicate thread-per-shard byte-for-byte"
            );
        }
    }
}

#[test]
fn tiny_queues_only_cost_backpressure_never_correctness() {
    let prepared = prepared(48);
    let mut options = bag_options();
    let roomy = Replay::run(&prepared, options);
    options.runtime = RuntimeOptions { shards: 2, queue_capacity: 1, ..RuntimeOptions::default() };
    let squeezed = Replay::run(&prepared, options);
    assert_eq!(
        rec_log(&squeezed.recommendations).expect("log serializes"),
        rec_log(&roomy.recommendations).expect("log serializes"),
        "a one-slot queue may block the writer but must not reorder anything"
    );
}
