//! Live-resharding determinism: a snapshot taken under one layout must
//! restore under *any* other — different logical shard count, worker
//! count, or scheduler — and continue to a byte-identical recommendation
//! log, from any pause point including the middle of a celebrity storm.
//!
//! This is the elastic-serving contract: operators reshard by snapshot →
//! restore under new `--shards`/`--workers`, and the rec log must not be
//! able to tell. It composes two invariants pinned elsewhere (snapshots
//! are layout-independent; layouts never change output) into the workflow
//! CI's `load-smoke` job repeats across processes.

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_core::{PreparedCorpus, SplitConfig};
use pmr_graph::GraphSimilarity;
use pmr_serve::{
    rec_log, EngineConfig, EngineSnapshot, Replay, ReplayOptions, RuntimeOptions, Scheduler,
    ServeModel,
};
use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

fn prepared(seed: u64) -> PreparedCorpus {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, seed));
    PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed")
}

/// The source layout every snapshot in this suite is taken under:
/// 4 logical shards on the work-stealing runtime.
fn source_runtime() -> RuntimeOptions {
    RuntimeOptions {
        shards: 4,
        workers: 2,
        queue_capacity: 32,
        scheduler: Scheduler::WorkSteal,
        ..RuntimeOptions::default()
    }
}

fn bag_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Bag {
                weighting: WeightingScheme::TFIDF,
                similarity: BagSimilarity::Cosine,
                char_grams: false,
                n: 1,
                decay: 0.95,
            },
            window: 32,
        },
        runtime: source_runtime(),
        k: 5,
        query_every: 10,
        jobs: 1,
    }
}

fn graph_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Graph {
                similarity: GraphSimilarity::Value,
                char_grams: false,
                n: 1,
            },
            window: 16,
        },
        runtime: source_runtime(),
        k: 5,
        query_every: 25,
        jobs: 1,
    }
}

/// Small topic budget so debug-mode runs stay quick; `background_refresh: 0`
/// keeps the epoch-0 background for the whole replay. The refresh cadence
/// itself is pinned by [`mid_refresh_topic_reshard_is_byte_identical`].
fn topic_options() -> ReplayOptions {
    ReplayOptions {
        config: EngineConfig {
            model: ServeModel::Topic {
                topics: 8,
                alpha: 50.0 / 8.0,
                beta: 0.01,
                train_iterations: 12,
                foldin_iterations: 4,
                seed: 7,
                decay: 0.95,
                background_refresh: 0,
            },
            window: 16,
        },
        runtime: source_runtime(),
        k: 5,
        query_every: 25,
        jobs: 1,
    }
}

/// The stream position just *after* the widest fan-out event — mid-storm:
/// the celebrity's exposures are still in flight through their followers'
/// windows when the snapshot barrier lands.
fn mid_storm_position(prepared: &PreparedCorpus) -> usize {
    let stream = prepared.corpus.event_stream();
    let mut position = 0;
    let mut widest = 0;
    for (i, event) in stream.iter().enumerate() {
        let fan_out = prepared.corpus.graph.followers(event.author).len();
        if fan_out > widest {
            widest = fan_out;
            position = i + 1;
        }
    }
    assert!(widest > 1, "a power-law smoke graph must contain a celebrity");
    assert!(position < stream.len(), "the storm must not be the final event");
    position
}

/// Snapshot `options`' replay at `pause`, push the snapshot through its
/// JSONL wire format, and finish the head run. Returns the reference log
/// (an uninterrupted run), the head outcome and the wire bytes.
fn snapshot_at(
    prepared: &PreparedCorpus,
    options: ReplayOptions,
    pause: usize,
) -> (String, Vec<pmr_serve::Recommendation>, String) {
    let reference = Replay::run(prepared, options);
    assert!(reference.queries > 0, "the replay must actually issue queries");
    let reference_log = rec_log(&reference.recommendations).expect("log serializes");

    let mut head_run = Replay::new(prepared, options);
    head_run.run_to(pause);
    let snapshot = head_run.snapshot().expect("all shards alive");
    let wire = snapshot.to_jsonl().expect("snapshot serializes");
    let head = head_run.finish();
    (reference_log, head.recommendations, wire)
}

/// Restore `wire` under `runtime`, run to the end, and check the stitched
/// head+tail log replicates `reference_log` byte-for-byte.
fn restore_and_diff(
    prepared: &PreparedCorpus,
    options: ReplayOptions,
    runtime: RuntimeOptions,
    head: &[pmr_serve::Recommendation],
    wire: &str,
    reference_log: &str,
    label: &str,
) {
    let restored = EngineSnapshot::from_jsonl(wire).expect("snapshot parses");
    let resumed_options = ReplayOptions { runtime, ..options };
    let mut tail_run = Replay::resume(prepared, &restored, resumed_options).expect("configs match");
    tail_run.run_to_end();
    let tail = tail_run.finish();
    let stitched: Vec<_> = head.iter().chain(tail.recommendations.iter()).cloned().collect();
    assert_eq!(
        rec_log(&stitched).expect("log serializes"),
        reference_log,
        "resharding {label} must not change a single recommendation"
    );
}

/// The headline matrix: snapshot under 4 logical shards, restore under
/// 1/16/64 logical shards × 1/4 workers, for every model family.
#[test]
fn reshard_matrix_is_byte_identical_for_every_family() {
    for (seed, options) in [(60, bag_options()), (61, graph_options()), (65, topic_options())] {
        let prepared = prepared(seed);
        let pause = prepared.corpus.event_stream().len() / 2;
        let (reference_log, head, wire) = snapshot_at(&prepared, options, pause);
        for shards in [1usize, 16, 64] {
            for workers in [1usize, 4] {
                let runtime = RuntimeOptions {
                    shards,
                    workers,
                    queue_capacity: 16,
                    scheduler: Scheduler::WorkSteal,
                    ..RuntimeOptions::default()
                };
                restore_and_diff(
                    &prepared,
                    options,
                    runtime,
                    &head,
                    &wire,
                    &reference_log,
                    &format!("4 shards -> {shards} shards x {workers} workers"),
                );
            }
        }
    }
}

/// Resharding across schedulers: a snapshot from the work-stealing runtime
/// restores onto the thread-per-shard baseline (and the reverse direction
/// is covered by the matrix above, whose source is work-steal).
#[test]
fn reshard_across_schedulers_is_byte_identical() {
    let options = bag_options();
    let prepared = prepared(62);
    let pause = prepared.corpus.event_stream().len() / 3;
    let (reference_log, head, wire) = snapshot_at(&prepared, options, pause);
    let runtime = RuntimeOptions {
        shards: 3,
        queue_capacity: 8,
        scheduler: Scheduler::Threaded,
        ..RuntimeOptions::default()
    };
    restore_and_diff(
        &prepared,
        options,
        runtime,
        &head,
        &wire,
        &reference_log,
        "worksteal -> threaded",
    );
}

/// The mid-storm case: pause immediately after the widest celebrity
/// fan-out, while the storm's exposures dominate the candidate windows,
/// and reshard in both directions (shrink and grow).
#[test]
fn mid_storm_reshard_is_byte_identical_for_both_gram_families() {
    for (seed, options) in [(63, bag_options()), (64, graph_options())] {
        let prepared = prepared(seed);
        let pause = mid_storm_position(&prepared);
        let (reference_log, head, wire) = snapshot_at(&prepared, options, pause);
        for (shards, workers) in [(1usize, 1usize), (64, 4)] {
            let runtime = RuntimeOptions {
                shards,
                workers,
                queue_capacity: 16,
                scheduler: Scheduler::WorkSteal,
                ..RuntimeOptions::default()
            };
            restore_and_diff(
                &prepared,
                options,
                runtime,
                &head,
                &wire,
                &reference_log,
                &format!("mid-storm 4 shards -> {shards} shards x {workers} workers"),
            );
        }
    }
}

/// The topic family's extra wrinkle: the background model retrains on a
/// fixed stream cadence, and a snapshot can land *between* retrains (or
/// exactly on a boundary). The snapshot carries only the epoch number —
/// the restoring side re-derives the background from `(corpus, config,
/// epoch)` and must then hit every later refresh boundary exactly as the
/// uninterrupted run did, under a different shard layout.
#[test]
fn mid_refresh_topic_reshard_is_byte_identical() {
    let refresh = 400u64;
    let mut options = topic_options();
    match &mut options.config.model {
        ServeModel::Topic { background_refresh, .. } => *background_refresh = refresh,
        other => panic!("topic_options must build a topic model, got {other:?}"),
    }
    let prepared = prepared(66);
    let stream_len = prepared.corpus.event_stream().len();
    assert!(
        stream_len as u64 > 2 * refresh,
        "the smoke stream ({stream_len} events) must cross at least two refresh boundaries"
    );
    // Pause once mid-epoch (between the first and second retrain) and once
    // exactly on a refresh boundary (the retrain fires on the resumed side).
    for pause in [refresh as usize + refresh as usize / 2, 2 * refresh as usize] {
        let (reference_log, head, wire) = snapshot_at(&prepared, options, pause);
        for (shards, workers) in [(1usize, 1usize), (16, 4)] {
            let runtime = RuntimeOptions {
                shards,
                workers,
                queue_capacity: 16,
                scheduler: Scheduler::WorkSteal,
                ..RuntimeOptions::default()
            };
            restore_and_diff(
                &prepared,
                options,
                runtime,
                &head,
                &wire,
                &reference_log,
                &format!("mid-refresh pause@{pause} -> {shards} shards x {workers} workers"),
            );
        }
    }
}
