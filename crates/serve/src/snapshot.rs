//! Snapshot/restore of the full engine state as JSONL.
//!
//! Layout: one header line ([`SnapshotHeader`]) followed by one
//! [`UserSnapshot`] line per user in ascending user-id order. The format is
//! byte-deterministic — users are sorted across shards before writing and
//! the JSON serializer emits map keys in sorted order — so two engines
//! paused at the same stream position produce identical files regardless
//! of their shard count. Restoring is the inverse: the user list is
//! re-partitioned onto whatever shard layout the resuming engine runs.
//!
//! Window entries are stored as `(tweet id, arrival time)` pairs, not as
//! materialized feature vectors: features are a pure function of the
//! corpus and the [`EngineConfig`], so the restoring side recomputes them
//! (via the resolver passed to [`crate::Engine::resume`]) instead of
//! bloating the snapshot with redundant floats.

use pmr_core::{OnlineGraphModel, OnlineProfile, PmrError, PmrResult};
use pmr_sim::Timestamp;
use pmr_topics::TopicProfile;
use serde::{Deserialize, Serialize};

use crate::config::EngineConfig;

/// Current snapshot format version; bumped on breaking layout changes.
/// v2 added the `epoch` header field and the topic user-model variant.
pub const SNAPSHOT_VERSION: u32 = 2;

/// First line of a snapshot: format version, semantic configuration and
/// the replay position the snapshot was taken at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The engine's semantic configuration.
    pub config: EngineConfig,
    /// Stream events ingested before the snapshot.
    pub events: u64,
    /// Queries issued before the snapshot (= the next query id).
    pub queries: u64,
    /// Topic-background epoch active at the snapshot (0 for the gram
    /// families). The background model itself is *not* serialized: it is a
    /// pure function of `(corpus, config, epoch)`, so the resuming side
    /// re-derives it — snapshot bytes stay independent of when the last
    /// retrain ran relative to the barrier.
    pub epoch: u64,
    /// Number of user lines that follow.
    pub users: u64,
}

/// A user's serialized online model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum UserModelSnapshot {
    /// Decayed bag centroid.
    Bag(OnlineProfile),
    /// Incremental n-gram graph.
    Graph(OnlineGraphModel),
    /// Decayed topic profile (fold-in θ accumulator); the shared background
    /// model is carried by the header's `epoch`, not per user.
    Topic(TopicProfile),
}

/// One remembered feed tweet, by reference; features are recomputed on
/// restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEntrySnapshot {
    /// The candidate tweet's id.
    pub tweet: u32,
    /// When it entered the user's feed.
    pub at: Timestamp,
}

/// One user line: model plus candidate window, oldest entry first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserSnapshot {
    /// The user's id.
    pub user: u32,
    /// Their online model.
    pub model: UserModelSnapshot,
    /// Their candidate window.
    pub window: Vec<WindowEntrySnapshot>,
}

/// The complete state of a paused engine.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Version, configuration and position.
    pub header: SnapshotHeader,
    /// Every user with state, ascending by user id.
    pub users: Vec<UserSnapshot>,
}

impl EngineSnapshot {
    /// Serialize to the JSONL wire format (trailing newline included).
    pub fn to_jsonl(&self) -> PmrResult<String> {
        let mut out = String::new();
        let header = serde_json::to_string(&self.header)
            .map_err(|e| PmrError::Serialize { detail: format!("snapshot header: {e}") })?;
        out.push_str(&header);
        out.push('\n');
        for user in &self.users {
            let line = serde_json::to_string(user).map_err(|e| PmrError::Serialize {
                detail: format!("snapshot of user {}: {e}", user.user),
            })?;
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse the JSONL wire format back into a snapshot.
    pub fn from_jsonl(text: &str) -> PmrResult<EngineSnapshot> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or_else(|| PmrError::Serialize {
            detail: "empty snapshot: missing header line".to_owned(),
        })?;
        let header: SnapshotHeader = serde_json::from_str(header_line)
            .map_err(|e| PmrError::Serialize { detail: format!("snapshot header: {e}") })?;
        if header.version != SNAPSHOT_VERSION {
            return Err(PmrError::Serialize {
                detail: format!(
                    "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                    header.version
                ),
            });
        }
        let mut users = Vec::new();
        for line in lines {
            let user: UserSnapshot = serde_json::from_str(line)
                .map_err(|e| PmrError::Serialize { detail: format!("snapshot user line: {e}") })?;
            users.push(user);
        }
        if users.len() as u64 != header.users {
            return Err(PmrError::Serialize {
                detail: format!(
                    "snapshot truncated: header promises {} users, found {}",
                    header.users,
                    users.len()
                ),
            });
        }
        Ok(EngineSnapshot { header, users })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeModel;
    use pmr_bag::{BagSimilarity, SparseVector, WeightingScheme};

    fn sample() -> EngineSnapshot {
        let mut profile = OnlineProfile::new(0.9);
        profile.observe_unit(&SparseVector::from_pairs(vec![(0, 3.0), (5, 4.0)]).normalized());
        EngineSnapshot {
            header: SnapshotHeader {
                version: SNAPSHOT_VERSION,
                config: EngineConfig {
                    model: ServeModel::Bag {
                        weighting: WeightingScheme::TF,
                        similarity: BagSimilarity::Cosine,
                        char_grams: false,
                        n: 1,
                        decay: 0.9,
                    },
                    window: 8,
                },
                events: 42,
                queries: 7,
                epoch: 0,
                users: 1,
            },
            users: vec![UserSnapshot {
                user: 3,
                model: UserModelSnapshot::Bag(profile),
                window: vec![WindowEntrySnapshot { tweet: 11, at: 900 }],
            }],
        }
    }

    #[test]
    fn jsonl_round_trip_is_byte_stable() {
        let snap = sample();
        let text = snap.to_jsonl().expect("serializes");
        let back = EngineSnapshot::from_jsonl(&text).expect("parses");
        assert_eq!(back.to_jsonl().expect("re-serializes"), text);
        assert_eq!(back.header, snap.header);
        assert_eq!(back.users.len(), 1);
        assert_eq!(back.users[0].window, snap.users[0].window);
    }

    #[test]
    fn version_and_truncation_are_rejected() {
        let snap = sample();
        let text = snap.to_jsonl().expect("serializes");
        let future = text.replacen("\"version\":2", "\"version\":99", 1);
        assert!(EngineSnapshot::from_jsonl(&future).is_err(), "future version must be rejected");
        let truncated = text.lines().next().expect("header").to_owned();
        assert!(
            EngineSnapshot::from_jsonl(&truncated).is_err(),
            "missing user lines must be rejected"
        );
        assert!(EngineSnapshot::from_jsonl("").is_err(), "empty input must be rejected");
    }
}
