//! Streaming ingest: drive an [`Engine`] directly from a
//! [`pmr_sim::StreamGenerator`] — no materialized corpus anywhere.
//!
//! [`crate::Replay`] needs the whole corpus in memory (tweets, prepared
//! gram tables, a dense feature vector per original). That is the right
//! trade at paper scale and a non-starter at the ROADMAP's 10^5–10^6
//! users. This adapter instead consumes the generator's timestamp-ordered
//! chunks as they are rendered:
//!
//! * chunks are rendered **in parallel** over
//!   [`pmr_core::executor::run_tasks`] in windows of `jobs`, and consumed
//!   in chunk order — `run_tasks` returns results in input order, so the
//!   engine always sees the exact global event stream regardless of
//!   worker count;
//! * features are computed inside the worker from each record's own text
//!   (for a retweet, from the carried original text), so peak memory is
//!   one window of rendered chunks rather than a corpus-wide feature
//!   table;
//! * the engine calls per event are the same as replay's: originals fan
//!   out to the author's followers, retweets are observed by the reposter
//!   and fan the *original* out to the reposter's audience, and every
//!   `query_every` events the next evaluated user (round-robin) is asked
//!   for their top-k.
//!
//! **Model restrictions.** Graph models and TF/BF bag models are
//! streamable. A TF/BF bag vector depends only on the document itself plus
//! a *dimension id space*, and the id space can be grown incrementally:
//! [`StreamBagVectorizer`] interns unknown grams in first-seen stream
//! order over original tweets, which reproduces — prefix by prefix — the
//! exact local ids [`pmr_bag::IndexedVectorizer::fit`] assigns over the
//! materialized corpus (original tweet ids are allocated in stream order,
//! so first-seen-in-stream *is* first-seen-in-id-order). Two families stay
//! rejected with typed errors: **TF-IDF** needs corpus-wide document
//! frequencies a single pass cannot know, and **topic** needs the
//! materialized corpus to bootstrap its epoch-0 background model.
//!
//! **Featurization difference vs. replay.** Replay's token grams pass
//! through the corpus-fitted stop-word filter
//! ([`pmr_core::PreparedCorpus`]); a streaming consumer has no corpus to
//! fit that filter on, so token grams here are built from the unfiltered
//! token stream. Char grams (`char_grams: true`) are computed identically
//! in both paths — lower-cased raw text — which is what the
//! ingest-vs-replay equivalence tests (graph *and* bag) pin.

use std::sync::Arc;

use pmr_bag::{SparseVector, WeightingScheme};
use pmr_core::executor::run_tasks;
use pmr_core::{PmrError, PmrResult};
use pmr_sim::scale::IngestRecord;
use pmr_sim::{StreamGenerator, UserId};
use pmr_text::vocab::{TermId, Vocabulary};
use pmr_text::{char_ngrams, token_ngrams, Tokenizer};

use crate::config::{EngineConfig, RuntimeOptions, ServeModel};
use crate::engine::Engine;
use crate::shard::{Recommendation, TweetFeatures};

/// Everything a streaming ingest run needs beyond the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestOptions {
    /// The engine's semantic configuration (graph models only).
    pub config: EngineConfig,
    /// Shard and queue sizing (must not affect output).
    pub runtime: RuntimeOptions,
    /// Top-k size of issued queries.
    pub k: usize,
    /// Issue one query every this many events (0 disables querying).
    pub query_every: usize,
    /// Worker threads rendering + featurizing chunks (must not affect
    /// output).
    pub jobs: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            config: EngineConfig {
                model: ServeModel::Graph {
                    similarity: pmr_graph::GraphSimilarity::Value,
                    char_grams: true,
                    n: 3,
                },
                window: 128,
            },
            runtime: RuntimeOptions::default(),
            k: 10,
            query_every: 25,
            jobs: 1,
        }
    }
}

/// The result of a completed streaming ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// Every answered query, in query-id order.
    pub recommendations: Vec<Recommendation>,
    /// Stream events ingested.
    pub events: u64,
    /// Queries issued.
    pub queries: u64,
}

/// Gram surface forms of one tweet text under a serving model's alphabet.
fn extract_grams(model: ServeModel, text: &str) -> Vec<String> {
    if model.char_grams() {
        char_ngrams(&text.to_lowercase(), model.n())
    } else {
        let tokens: Vec<String> =
            Tokenizer::default().tokenize(text).into_iter().map(|t| t.text).collect();
        token_ngrams(&tokens, model.n())
    }
}

/// Single-pass TF/BF bag vectorizer over an incremental vocabulary.
///
/// Dimensions are interned in first-seen stream order over *original*
/// tweets — the same first-seen order [`pmr_bag::IndexedVectorizer::fit`]
/// walks over the materialized corpus, because original tweet ids are
/// allocated in stream order. Counting mirrors `IndexedVectorizer`'s
/// sort-and-run-length transform exactly, so every emitted vector is
/// bit-identical to the replay path's (the equivalence test pins this).
/// Retweets transform *without* growing the vocabulary: their grams come
/// from the carried origin text, whose original has already been interned.
struct StreamBagVectorizer {
    weighting: WeightingScheme,
    vocab: Vocabulary,
}

impl StreamBagVectorizer {
    fn new(weighting: WeightingScheme) -> Self {
        StreamBagVectorizer { weighting, vocab: Vocabulary::new() }
    }

    /// Intern an original document's grams (unknown grams are appended in
    /// first-seen order), then transform it.
    fn observe_original(&mut self, grams: &[String]) -> SparseVector {
        let ids: Vec<TermId> = grams.iter().map(|g| self.vocab.intern(g)).collect();
        self.weigh(ids, grams.len())
    }

    /// Transform without growing the vocabulary; grams outside it are
    /// dropped, exactly as a fitted vectorizer drops unseen grams.
    fn transform(&self, grams: &[String]) -> SparseVector {
        let ids: Vec<TermId> = grams.iter().filter_map(|g| self.vocab.get(g)).collect();
        self.weigh(ids, grams.len())
    }

    /// The sort + run-length counting of `IndexedVectorizer::transform`,
    /// kept structurally identical so the f32 weights match bitwise.
    fn weigh(&self, mut ids: Vec<TermId>, n_d: usize) -> SparseVector {
        if n_d == 0 {
            return SparseVector::new();
        }
        ids.sort_unstable();
        let mut pairs: Vec<(TermId, f32)> = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            let id = ids[i];
            let mut f = 0u32;
            while i < ids.len() && ids[i] == id {
                f += 1;
                i += 1;
            }
            let w = match self.weighting {
                WeightingScheme::BF => 1.0,
                WeightingScheme::TF => f as f32 / n_d as f32,
                // Rejected before ingest starts; unreachable.
                WeightingScheme::TFIDF => 0.0,
            };
            pairs.push((id, w));
        }
        SparseVector::from_pairs(pairs)
    }
}

/// Drive `gen`'s full event stream through a fresh engine and collect the
/// recommendations. Output is a pure function of the generator and
/// [`EngineConfig`]; `jobs`, `shards` and `queue_capacity` are mechanical.
pub fn ingest_stream(gen: &StreamGenerator, options: IngestOptions) -> PmrResult<IngestOutcome> {
    let model = options.config.model;
    if matches!(model, ServeModel::Bag { weighting: WeightingScheme::TFIDF, .. }) {
        return Err(PmrError::invariant(
            "streaming ingest cannot serve TF-IDF bag models: inverse document frequencies \
             need the full corpus, which a single-pass stream cannot provide",
        ));
    }
    if matches!(model, ServeModel::Topic { .. }) {
        return Err(PmrError::invariant(
            "streaming ingest cannot serve topic models: the epoch-0 background model is \
             trained on the materialized corpus, which a single-pass stream cannot provide",
        ));
    }
    let mut bag = match model {
        ServeModel::Bag { weighting, .. } => Some(StreamBagVectorizer::new(weighting)),
        _ => None,
    };
    let followers = gen.build_followers();
    let eval_users: Vec<UserId> = gen.evaluated_user_ids().collect();
    let jobs = options.jobs.max(1);
    let mut engine = Engine::start(options.config, options.runtime);
    let mut position = 0usize;

    let num_chunks = gen.num_chunks();
    let mut window_start = 0usize;
    while window_start < num_chunks {
        let window: Vec<usize> = (window_start..(window_start + jobs).min(num_chunks)).collect();
        window_start += window.len();
        // Render + gram-extract this window in parallel; results come back
        // in chunk order, so consumption below is the global stream order.
        // Bag vectorization happens in the sequential loop below, not
        // here: the incremental vocabulary's first-seen id assignment is
        // order-dependent, so it must only ever see the global stream.
        let rendered: Vec<Vec<(IngestRecord, Vec<String>)>> =
            run_tasks(window, jobs, |_, chunk| {
                gen.render_chunk(chunk)
                    .into_iter()
                    .map(|rec| {
                        let text = rec.origin_text.as_deref().unwrap_or(&rec.text);
                        let grams = extract_grams(model, text);
                        (rec, grams)
                    })
                    .collect()
            });
        for (rec, grams) in rendered.into_iter().flatten() {
            let event = rec.event;
            let features = Arc::new(match &mut bag {
                Some(vectorizer) => {
                    // A retweet's grams are its *original's* (carried
                    // origin text), already interned when the original
                    // streamed by — transform must not grow the space.
                    let vector = match event.retweet_of {
                        None => vectorizer.observe_original(&grams),
                        Some(_) => vectorizer.transform(&grams),
                    };
                    TweetFeatures::Bag(vector.normalized())
                }
                None => TweetFeatures::Graph(grams),
            });
            pmr_obs::counter_add("serve.events", 1);
            match event.retweet_of {
                None => {
                    for &follower in &followers[event.author.index()] {
                        engine.post_candidate(follower, event.tweet, event.at, &features);
                    }
                }
                Some(original) => {
                    // `features` is the original's (built from the carried
                    // origin text); the repost surfaces the original to the
                    // reposter's audience at the repost's time.
                    engine.observe(event.author, &features);
                    for &follower in &followers[event.author.index()] {
                        engine.post_candidate(follower, original, event.at, &features);
                    }
                }
            }
            position += 1;
            if options.query_every > 0
                && position.is_multiple_of(options.query_every)
                && !eval_users.is_empty()
            {
                let issued = engine.queries_issued() as usize;
                let user = eval_users[issued % eval_users.len()];
                engine.query(user, options.k, event.at);
            }
        }
    }

    let queries = engine.queries_issued();
    let recommendations = engine.finish();
    Ok(IngestOutcome { recommendations, events: position as u64, queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{rec_log, Replay, ReplayOptions};
    use pmr_core::{PreparedCorpus, SplitConfig};
    use pmr_sim::ScaleConfig;

    fn graph_config() -> EngineConfig {
        EngineConfig {
            model: ServeModel::Graph {
                similarity: pmr_graph::GraphSimilarity::Value,
                char_grams: true,
                n: 3,
            },
            window: 64,
        }
    }

    fn smoke_gen(seed: u64) -> StreamGenerator {
        StreamGenerator::plan(ScaleConfig::smoke(seed))
    }

    fn run(gen: &StreamGenerator, options: IngestOptions) -> IngestOutcome {
        ingest_stream(gen, options).expect("streamable model ingest succeeds")
    }

    fn bag_config(weighting: WeightingScheme) -> EngineConfig {
        EngineConfig {
            model: ServeModel::Bag {
                weighting,
                similarity: pmr_bag::BagSimilarity::Cosine,
                char_grams: true,
                n: 3,
                decay: 0.9,
            },
            window: 64,
        }
    }

    #[test]
    fn tfidf_and_topic_models_are_rejected() {
        let gen = smoke_gen(1);
        let tfidf = IngestOptions {
            config: bag_config(WeightingScheme::TFIDF),
            ..IngestOptions::default()
        };
        assert!(ingest_stream(&gen, tfidf).is_err(), "TF-IDF needs corpus document frequencies");
        let topic = IngestOptions {
            config: EngineConfig {
                model: ServeModel::Topic {
                    topics: 4,
                    alpha: 12.5,
                    beta: 0.01,
                    train_iterations: 5,
                    foldin_iterations: 2,
                    seed: 1,
                    decay: 1.0,
                    background_refresh: 0,
                },
                window: 64,
            },
            ..IngestOptions::default()
        };
        assert!(ingest_stream(&gen, topic).is_err(), "topic needs the materialized corpus");
    }

    #[test]
    fn bag_ingest_agrees_with_replay_on_the_materialized_corpus() {
        // Char grams + TF: the streamed incremental vocabulary must
        // reproduce the replay path's `IndexedVectorizer` vectors
        // bit-for-bit — same first-seen dimension ids (originals stream in
        // id order), same sort-and-run-length counting. Token grams differ
        // by the corpus-fitted stop filter, so char grams are what the
        // byte-equality pin uses, mirroring the graph test below.
        let gen = smoke_gen(42);
        let config = bag_config(WeightingScheme::TF);
        let k = 10;
        let query_every = 25;
        let streamed = run(
            &gen,
            IngestOptions { config, k, query_every, jobs: 2, ..IngestOptions::default() },
        );
        let prepared = PreparedCorpus::new(gen.materialize(), SplitConfig::default())
            .expect("materialized corpus is well-formed");
        let replayed = Replay::run(
            &prepared,
            ReplayOptions { config, runtime: RuntimeOptions::default(), k, query_every, jobs: 1 },
        );
        assert_eq!(streamed.events, replayed.events);
        assert_eq!(streamed.queries, replayed.queries);
        assert!(streamed.queries > 0);
        assert_eq!(
            rec_log(&streamed.recommendations).unwrap(),
            rec_log(&replayed.recommendations).unwrap()
        );
    }

    #[test]
    fn bag_shard_layout_never_changes_the_recommendation_log() {
        let gen = smoke_gen(9);
        let base = IngestOptions {
            config: bag_config(WeightingScheme::BF),
            jobs: 2,
            ..IngestOptions::default()
        };
        let one = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 1,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        let four = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 4,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        assert!(one.queries > 0);
        assert_eq!(rec_log(&one.recommendations).unwrap(), rec_log(&four.recommendations).unwrap());
    }

    #[test]
    fn jobs_never_change_the_recommendation_log() {
        let gen = smoke_gen(5);
        let base = IngestOptions { config: graph_config(), ..IngestOptions::default() };
        let serial = run(&gen, IngestOptions { jobs: 1, ..base });
        let parallel = run(&gen, IngestOptions { jobs: 4, ..base });
        assert!(serial.queries > 0);
        assert_eq!(
            rec_log(&serial.recommendations).unwrap(),
            rec_log(&parallel.recommendations).unwrap()
        );
    }

    #[test]
    fn shard_layout_never_changes_the_recommendation_log() {
        let gen = smoke_gen(9);
        let base = IngestOptions { config: graph_config(), jobs: 2, ..IngestOptions::default() };
        let one = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 1,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        let four = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 4,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        assert!(one.queries > 0);
        assert_eq!(rec_log(&one.recommendations).unwrap(), rec_log(&four.recommendations).unwrap());
    }

    #[test]
    fn ingest_agrees_with_replay_on_the_materialized_corpus() {
        // Char-gram features are computed identically by streaming ingest
        // and by the prepared-corpus replay path (token grams differ by the
        // corpus-fitted stop filter, so they are not comparable). With the
        // same event order, fan-out graph, and query schedule, the two
        // paths must produce byte-identical recommendation logs.
        let gen = smoke_gen(42);
        let config = graph_config();
        let k = 10;
        let query_every = 25;
        let streamed = run(
            &gen,
            IngestOptions { config, k, query_every, jobs: 2, ..IngestOptions::default() },
        );
        let prepared = PreparedCorpus::new(gen.materialize(), SplitConfig::default())
            .expect("materialized corpus is well-formed");
        let replayed = Replay::run(
            &prepared,
            ReplayOptions { config, runtime: RuntimeOptions::default(), k, query_every, jobs: 1 },
        );
        assert_eq!(streamed.events, replayed.events);
        assert_eq!(streamed.queries, replayed.queries);
        assert!(streamed.queries > 0);
        assert_eq!(
            rec_log(&streamed.recommendations).unwrap(),
            rec_log(&replayed.recommendations).unwrap()
        );
    }

    #[test]
    fn celebrity_fan_out_trips_backpressure_deterministically() {
        // A power-law graph concentrates fan-out on the celebrity shard; a
        // tiny queue must trip the backpressure (block-and-retry) path,
        // and blocking must not change a byte of output across layouts.
        let gen = smoke_gen(13);
        let base = IngestOptions { config: graph_config(), ..IngestOptions::default() };
        let logs: Vec<String> = [1usize, 2, 5]
            .into_iter()
            .map(|shards| {
                let _ = pmr_obs::install(pmr_obs::Recorder::monotonic());
                let outcome = run(
                    &gen,
                    IngestOptions {
                        runtime: RuntimeOptions {
                            shards,
                            queue_capacity: 2,
                            ..RuntimeOptions::default()
                        },
                        ..base
                    },
                );
                let metrics = pmr_obs::snapshot().expect("recorder is installed");
                assert!(
                    metrics.counter("serve.backpressure") > 0,
                    "queue_capacity=2 under celebrity fan-out must hit backpressure \
                     (shards={shards})"
                );
                let _ = pmr_obs::uninstall();
                rec_log(&outcome.recommendations).unwrap()
            })
            .collect();
        assert!(!logs[0].is_empty());
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[0], logs[2]);
    }
}
