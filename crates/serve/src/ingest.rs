//! Streaming ingest: drive an [`Engine`] directly from a
//! [`pmr_sim::StreamGenerator`] — no materialized corpus anywhere.
//!
//! [`crate::Replay`] needs the whole corpus in memory (tweets, prepared
//! gram tables, a dense feature vector per original). That is the right
//! trade at paper scale and a non-starter at the ROADMAP's 10^5–10^6
//! users. This adapter instead consumes the generator's timestamp-ordered
//! chunks as they are rendered:
//!
//! * chunks are rendered **in parallel** over
//!   [`pmr_core::executor::run_tasks`] in windows of `jobs`, and consumed
//!   in chunk order — `run_tasks` returns results in input order, so the
//!   engine always sees the exact global event stream regardless of
//!   worker count;
//! * features are computed inside the worker from each record's own text
//!   (for a retweet, from the carried original text), so peak memory is
//!   one window of rendered chunks rather than a corpus-wide feature
//!   table;
//! * the engine calls per event are the same as replay's: originals fan
//!   out to the author's followers, retweets are observed by the reposter
//!   and fan the *original* out to the reposter's audience, and every
//!   `query_every` events the next evaluated user (round-robin) is asked
//!   for their top-k.
//!
//! **Model restriction.** Only [`ServeModel::Graph`] is streamable: bag
//! models need an [`pmr_bag::IndexedVectorizer`] fitted on the *whole*
//! corpus vocabulary, which contradicts single-pass constant-memory
//! ingest. [`ingest_stream`] rejects bag configs with a clear error.
//!
//! **Featurization difference vs. replay.** Replay's token grams pass
//! through the corpus-fitted stop-word filter
//! ([`pmr_core::PreparedCorpus`]); a streaming consumer has no corpus to
//! fit that filter on, so token grams here are built from the unfiltered
//! token stream. Char grams (`char_grams: true`) are computed identically
//! in both paths — lower-cased raw text — which is what the
//! ingest-vs-replay equivalence test pins.

use std::sync::Arc;

use pmr_core::executor::run_tasks;
use pmr_core::{PmrError, PmrResult};
use pmr_sim::scale::IngestRecord;
use pmr_sim::{StreamGenerator, UserId};
use pmr_text::{char_ngrams, token_ngrams, Tokenizer};

use crate::config::{EngineConfig, RuntimeOptions, ServeModel};
use crate::engine::Engine;
use crate::shard::{Recommendation, TweetFeatures};

/// Everything a streaming ingest run needs beyond the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestOptions {
    /// The engine's semantic configuration (graph models only).
    pub config: EngineConfig,
    /// Shard and queue sizing (must not affect output).
    pub runtime: RuntimeOptions,
    /// Top-k size of issued queries.
    pub k: usize,
    /// Issue one query every this many events (0 disables querying).
    pub query_every: usize,
    /// Worker threads rendering + featurizing chunks (must not affect
    /// output).
    pub jobs: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            config: EngineConfig {
                model: ServeModel::Graph {
                    similarity: pmr_graph::GraphSimilarity::Value,
                    char_grams: true,
                    n: 3,
                },
                window: 128,
            },
            runtime: RuntimeOptions::default(),
            k: 10,
            query_every: 25,
            jobs: 1,
        }
    }
}

/// The result of a completed streaming ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// Every answered query, in query-id order.
    pub recommendations: Vec<Recommendation>,
    /// Stream events ingested.
    pub events: u64,
    /// Queries issued.
    pub queries: u64,
}

/// Gram features of one tweet text under a (graph) serving model.
fn featurize(model: ServeModel, text: &str) -> TweetFeatures {
    let grams = if model.char_grams() {
        char_ngrams(&text.to_lowercase(), model.n())
    } else {
        let tokens: Vec<String> =
            Tokenizer::default().tokenize(text).into_iter().map(|t| t.text).collect();
        token_ngrams(&tokens, model.n())
    };
    TweetFeatures::Graph(grams)
}

/// Drive `gen`'s full event stream through a fresh engine and collect the
/// recommendations. Output is a pure function of the generator and
/// [`EngineConfig`]; `jobs`, `shards` and `queue_capacity` are mechanical.
pub fn ingest_stream(gen: &StreamGenerator, options: IngestOptions) -> PmrResult<IngestOutcome> {
    let model = options.config.model;
    if matches!(model, ServeModel::Bag { .. }) {
        return Err(PmrError::invariant(
            "streaming ingest supports graph models only: bag models need a vectorizer \
             fitted on the full corpus vocabulary, which a single-pass stream cannot provide",
        ));
    }
    let followers = gen.build_followers();
    let eval_users: Vec<UserId> = gen.evaluated_user_ids().collect();
    let jobs = options.jobs.max(1);
    let mut engine = Engine::start(options.config, options.runtime);
    let mut position = 0usize;

    let num_chunks = gen.num_chunks();
    let mut window_start = 0usize;
    while window_start < num_chunks {
        let window: Vec<usize> = (window_start..(window_start + jobs).min(num_chunks)).collect();
        window_start += window.len();
        // Render + featurize this window in parallel; results come back in
        // chunk order, so consumption below is the global stream order.
        let rendered: Vec<Vec<(IngestRecord, Arc<TweetFeatures>)>> =
            run_tasks(window, jobs, |_, chunk| {
                gen.render_chunk(chunk)
                    .into_iter()
                    .map(|rec| {
                        let text = rec.origin_text.as_deref().unwrap_or(&rec.text);
                        let features = Arc::new(featurize(model, text));
                        (rec, features)
                    })
                    .collect()
            });
        for (rec, features) in rendered.into_iter().flatten() {
            let event = rec.event;
            pmr_obs::counter_add("serve.events", 1);
            match event.retweet_of {
                None => {
                    for &follower in &followers[event.author.index()] {
                        engine.post_candidate(follower, event.tweet, event.at, &features);
                    }
                }
                Some(original) => {
                    // `features` is the original's (built from the carried
                    // origin text); the repost surfaces the original to the
                    // reposter's audience at the repost's time.
                    engine.observe(event.author, &features);
                    for &follower in &followers[event.author.index()] {
                        engine.post_candidate(follower, original, event.at, &features);
                    }
                }
            }
            position += 1;
            if options.query_every > 0
                && position.is_multiple_of(options.query_every)
                && !eval_users.is_empty()
            {
                let issued = engine.queries_issued() as usize;
                let user = eval_users[issued % eval_users.len()];
                engine.query(user, options.k, event.at);
            }
        }
    }

    let queries = engine.queries_issued();
    let recommendations = engine.finish();
    Ok(IngestOutcome { recommendations, events: position as u64, queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{rec_log, Replay, ReplayOptions};
    use pmr_core::{PreparedCorpus, SplitConfig};
    use pmr_sim::ScaleConfig;

    fn graph_config() -> EngineConfig {
        EngineConfig {
            model: ServeModel::Graph {
                similarity: pmr_graph::GraphSimilarity::Value,
                char_grams: true,
                n: 3,
            },
            window: 64,
        }
    }

    fn smoke_gen(seed: u64) -> StreamGenerator {
        StreamGenerator::plan(ScaleConfig::smoke(seed))
    }

    fn run(gen: &StreamGenerator, options: IngestOptions) -> IngestOutcome {
        ingest_stream(gen, options).expect("graph model ingest succeeds")
    }

    #[test]
    fn bag_models_are_rejected() {
        let gen = smoke_gen(1);
        let options = IngestOptions {
            config: EngineConfig {
                model: ServeModel::Bag {
                    weighting: pmr_bag::WeightingScheme::TF,
                    similarity: pmr_bag::BagSimilarity::Cosine,
                    char_grams: false,
                    n: 1,
                    decay: 1.0,
                },
                window: 64,
            },
            ..IngestOptions::default()
        };
        assert!(ingest_stream(&gen, options).is_err());
    }

    #[test]
    fn jobs_never_change_the_recommendation_log() {
        let gen = smoke_gen(5);
        let base = IngestOptions { config: graph_config(), ..IngestOptions::default() };
        let serial = run(&gen, IngestOptions { jobs: 1, ..base });
        let parallel = run(&gen, IngestOptions { jobs: 4, ..base });
        assert!(serial.queries > 0);
        assert_eq!(
            rec_log(&serial.recommendations).unwrap(),
            rec_log(&parallel.recommendations).unwrap()
        );
    }

    #[test]
    fn shard_layout_never_changes_the_recommendation_log() {
        let gen = smoke_gen(9);
        let base = IngestOptions { config: graph_config(), jobs: 2, ..IngestOptions::default() };
        let one = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 1,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        let four = run(
            &gen,
            IngestOptions {
                runtime: RuntimeOptions {
                    shards: 4,
                    queue_capacity: 64,
                    ..RuntimeOptions::default()
                },
                ..base
            },
        );
        assert!(one.queries > 0);
        assert_eq!(rec_log(&one.recommendations).unwrap(), rec_log(&four.recommendations).unwrap());
    }

    #[test]
    fn ingest_agrees_with_replay_on_the_materialized_corpus() {
        // Char-gram features are computed identically by streaming ingest
        // and by the prepared-corpus replay path (token grams differ by the
        // corpus-fitted stop filter, so they are not comparable). With the
        // same event order, fan-out graph, and query schedule, the two
        // paths must produce byte-identical recommendation logs.
        let gen = smoke_gen(42);
        let config = graph_config();
        let k = 10;
        let query_every = 25;
        let streamed = run(
            &gen,
            IngestOptions { config, k, query_every, jobs: 2, ..IngestOptions::default() },
        );
        let prepared = PreparedCorpus::new(gen.materialize(), SplitConfig::default())
            .expect("materialized corpus is well-formed");
        let replayed = Replay::run(
            &prepared,
            ReplayOptions { config, runtime: RuntimeOptions::default(), k, query_every, jobs: 1 },
        );
        assert_eq!(streamed.events, replayed.events);
        assert_eq!(streamed.queries, replayed.queries);
        assert!(streamed.queries > 0);
        assert_eq!(
            rec_log(&streamed.recommendations).unwrap(),
            rec_log(&replayed.recommendations).unwrap()
        );
    }

    #[test]
    fn celebrity_fan_out_trips_backpressure_deterministically() {
        // A power-law graph concentrates fan-out on the celebrity shard; a
        // tiny queue must trip the backpressure (block-and-retry) path,
        // and blocking must not change a byte of output across layouts.
        let gen = smoke_gen(13);
        let base = IngestOptions { config: graph_config(), ..IngestOptions::default() };
        let logs: Vec<String> = [1usize, 2, 5]
            .into_iter()
            .map(|shards| {
                let _ = pmr_obs::install(pmr_obs::Recorder::monotonic());
                let outcome = run(
                    &gen,
                    IngestOptions {
                        runtime: RuntimeOptions {
                            shards,
                            queue_capacity: 2,
                            ..RuntimeOptions::default()
                        },
                        ..base
                    },
                );
                let metrics = pmr_obs::snapshot().expect("recorder is installed");
                assert!(
                    metrics.counter("serve.backpressure") > 0,
                    "queue_capacity=2 under celebrity fan-out must hit backpressure \
                     (shards={shards})"
                );
                let _ = pmr_obs::uninstall();
                rec_log(&outcome.recommendations).unwrap()
            })
            .collect();
        assert!(!logs[0].is_empty());
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[0], logs[2]);
    }
}
