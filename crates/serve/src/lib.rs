//! # pmr-serve
//!
//! A sharded **online** recommendation serving engine over the study's
//! incremental user models, with deterministic stream replay.
//!
//! The batch pipeline (`pmr-core`) answers the paper's question — *which
//! configuration ranks best?* — by refitting models from scratch. This
//! crate answers the deployment question the paper motivates in §1: the
//! same models maintained *incrementally* against a live tweet stream,
//! serving `recommend(user, k, now)` at any point.
//!
//! ```text
//!                      ┌──────────────────────────────┐
//!   corpus stream ───▶ │ ingest (single writer)       │
//!   (time-ordered)     │  · features once per tweet   │
//!                      │  · fan out to followers      │
//!                      └──────┬───────┬───────────────┘
//!                   bounded   │       │   bounded
//!                mailbox ▼    ▼       ▼   mailbox
//!                  ┌───────┐ ┌───────┐ ┌───────┐
//!                  │shard 0│ │shard 1│ │shard L│   user_id % shards
//!                  │models+│ │models+│ │models+│   one user ↦ one shard
//!                  │windows│ │windows│ │windows│   (logical shards)
//!                  └───┬───┘ └───┬───┘ └───┬───┘
//!                      └─────────┼─────────┘
//!              run queue ─▶ ┌────┴────┐ ◀─ N worker threads
//!              (steal any   │scheduler│    (or one thread per
//!               runnable    └────┬────┘     shard: `Threaded`)
//!               shard)           │
//!                                ▼ replies (re-sequenced by query id)
//!                      recommendations / snapshots
//! ```
//!
//! ## The determinism contract
//!
//! The engine's output — the recommendation log and any snapshot — is a
//! pure function of the event stream and the [`EngineConfig`]. Logical
//! shard count, worker thread count, scheduler, queue capacity and
//! feature-precompute thread count are *mechanical* knobs that must never
//! change a byte of output:
//!
//! * each user's state lives in exactly one shard and receives its
//!   messages through one FIFO in global stream order, and a shard is
//!   applied by at most one worker at a time, so per-user state evolution
//!   is layout-independent;
//! * query answers are re-sequenced by their issue-time ids before
//!   anything user-visible sees them;
//! * there is no wall-clock anywhere in the serving path — time is the
//!   stream's own timestamps, and observability timers run on `pmr-obs`'s
//!   injected clock.
//!
//! CI's `serve-smoke` job replays a seeded stream under 1 vs 4 shards and
//! 1 vs 4 jobs and byte-diffs the logs; the same checks run in-repo as
//! `#[test]`s.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod ingest;
pub mod replay;
mod runtime;
pub mod shard;
pub mod snapshot;

pub use config::{EngineConfig, RuntimeOptions, Scheduler, ServeModel};
pub use engine::Engine;
pub use ingest::{ingest_stream, IngestOptions, IngestOutcome};
pub use replay::{precompute_features, rec_log, Replay, ReplayOptions, ReplayOutcome};
pub use shard::{RecItem, Recommendation, TweetFeatures};
pub use snapshot::{
    EngineSnapshot, SnapshotHeader, UserModelSnapshot, UserSnapshot, WindowEntrySnapshot,
    SNAPSHOT_VERSION,
};
