//! Shard state: the per-user online models and the message protocol.
//!
//! Every user's model and candidate window live in exactly one logical
//! shard (`user_id % shards`), and the single ingest thread sends a user's
//! messages through that shard's FIFO (a blocking channel under
//! [`crate::config::Scheduler::Threaded`], a mailbox under
//! [`crate::config::Scheduler::WorkSteal`]) in global stream order. A
//! user's state therefore evolves through the same sequence of updates no
//! matter how many shards or threads exist — the mechanical layout only
//! changes *which thread* applies the sequence, never the sequence itself.
//! That argument is the whole determinism proof; everything else in this
//! module is bookkeeping. The thread-scheduling half lives in
//! [`crate::runtime`]; this module owns the pure state transition
//! ([`ShardState::apply`]).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use pmr_bag::{ScoringKernel, SparseVector};
use pmr_core::{rank_cmp, OnlineGraphModel, OnlineProfile, RetrievalMode, WindowPostings};
use pmr_sim::{Timestamp, TweetId, UserId};
use pmr_text::vocab::TermId;
use pmr_topics::{TopicBackground, TopicDoc, TopicProfile};
use serde::{Deserialize, Serialize};

use crate::config::{EngineConfig, ServeModel};
use crate::snapshot::{UserModelSnapshot, UserSnapshot, WindowEntrySnapshot};

/// A tweet's model-ready features, computed once at ingest and shared by
/// reference with every shard that sees the tweet.
#[derive(Debug, Clone, PartialEq)]
pub enum TweetFeatures {
    /// Unit-normalized bag vector over the engine's shared vectorizer.
    Bag(SparseVector),
    /// Gram surface forms for the graph models.
    Graph(Vec<String>),
    /// Token ids plus the fold-in seed key for the topic family.
    Topic(TopicDoc),
}

/// One scored tweet in a recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecItem {
    /// The recommended tweet's id.
    pub tweet: u32,
    /// Its similarity to the user's model.
    pub score: f64,
}

/// The engine's answer to one `recommend(user, k, now)` call.
///
/// Deliberately carries no timing fields: a recommendation log is a pure
/// function of the event stream and the [`EngineConfig`], so two runs with
/// different shard or thread counts must produce byte-identical logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Sequential query id, assigned at issue time.
    pub query: u64,
    /// The queried user.
    pub user: u32,
    /// The query's time horizon: only candidates posted at or before this
    /// instant are eligible.
    pub now: Timestamp,
    /// Top-k candidates, best first; ties broken by ascending tweet id.
    pub items: Vec<RecItem>,
}

/// Messages flowing from the ingest thread into a shard.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// A tweet entered `user`'s feed: remember it as a candidate.
    Candidate { user: UserId, tweet: TweetId, at: Timestamp, features: Arc<TweetFeatures> },
    /// `user` retweeted: fold the original's features into their model.
    Observe { user: UserId, features: Arc<TweetFeatures> },
    /// Score `user`'s candidate window as of `now` and reply.
    Query { id: u64, user: UserId, k: usize, now: Timestamp },
    /// Swap in a (re)trained topic background. Posted by the single writer
    /// to every shard's FIFO at a fixed stream position, so each shard sees
    /// the epoch boundary at the same point of its message sequence no
    /// matter the layout — the same argument that covers every other
    /// message.
    Epoch(Arc<TopicBackground>),
    /// Emit the shard's full state; processing continues afterwards.
    Snapshot,
    /// Test-only: make the worker panic, exercising the abort protocol.
    #[cfg(test)]
    Poison,
}

/// Messages flowing back from a shard to the engine.
#[derive(Debug)]
pub(crate) enum ShardReply {
    /// Answer to a [`ShardMsg::Query`].
    Recommendation(Recommendation),
    /// Answer to a [`ShardMsg::Snapshot`].
    SnapshotPart { users: Vec<UserSnapshot> },
    /// The worker's event loop panicked. Sent from the panic guard so the
    /// engine fails fast instead of hanging on a snapshot barrier the dead
    /// shard will never answer.
    Aborted {
        /// The dead worker's shard index.
        shard: usize,
        /// The panic payload, if it was a string.
        detail: String,
    },
}

/// The per-user online model, matching the engine's [`ServeModel`]. The
/// topic variant holds only the user's decayed θ accumulator — the shared
/// background lives once per shard ([`ShardState::background`]), not per
/// user.
#[derive(Debug)]
enum UserModel {
    Bag(OnlineProfile),
    Graph(Box<OnlineGraphModel>),
    Topic(TopicProfile),
}

/// One remembered feed tweet.
#[derive(Debug)]
struct WindowEntry {
    tweet: TweetId,
    at: Timestamp,
    features: Arc<TweetFeatures>,
}

/// Incremental retrieval index over one user's candidate window, keyed by
/// the model family's feature space: bag vectors post under their term
/// ids, graph gram lists under their gram surface forms. Maintained on
/// every window insert/evict so queries under [`RetrievalMode::Wand`] can
/// zero-fill candidates that share no feature with the model — exactly the
/// candidates every similarity maps to `0.0`.
#[derive(Debug)]
enum WindowIndex {
    Bag(WindowPostings<TermId>),
    Graph(WindowPostings<String>),
    /// The topic family keeps no postings: a candidate sharing no token
    /// with the profile still folds to a θ with non-zero cosine (θ is
    /// smoothed by α, and an empty doc folds to uniform), so zero-filling
    /// unmatched candidates would *change* scores. Topic queries always
    /// score the window exhaustively.
    Topic,
}

impl WindowIndex {
    fn for_model(model: &UserModel) -> WindowIndex {
        match model {
            UserModel::Bag(_) => WindowIndex::Bag(WindowPostings::new()),
            UserModel::Graph(_) => WindowIndex::Graph(WindowPostings::new()),
            UserModel::Topic(_) => WindowIndex::Topic,
        }
    }

    /// Post a window entry's features under its tweet id. A features/model
    /// family mismatch posts nothing; the query path scores such entries
    /// exhaustively, so skipping them here stays exact.
    fn insert(&mut self, tweet: TweetId, features: &TweetFeatures) {
        match (self, features) {
            (WindowIndex::Bag(postings), TweetFeatures::Bag(v)) => {
                postings.insert(tweet.0, v.entries().iter().map(|&(t, _)| t));
            }
            (WindowIndex::Graph(postings), TweetFeatures::Graph(grams)) => {
                postings.insert(tweet.0, grams.iter().cloned());
            }
            _ => {}
        }
    }

    /// Remove an evicted entry's postings.
    fn remove(&mut self, tweet: TweetId, features: &TweetFeatures) {
        match (self, features) {
            (WindowIndex::Bag(postings), TweetFeatures::Bag(v)) => {
                let keys: Vec<TermId> = v.entries().iter().map(|&(t, _)| t).collect();
                postings.remove(tweet.0, keys.iter());
            }
            (WindowIndex::Graph(postings), TweetFeatures::Graph(grams)) => {
                postings.remove(tweet.0, grams.iter());
            }
            _ => {}
        }
    }
}

/// One user's complete serving state: their model plus the bounded window
/// of recent feed tweets still eligible for recommendation, mirrored by
/// the incremental retrieval index over that window.
#[derive(Debug)]
pub(crate) struct UserState {
    model: UserModel,
    window: VecDeque<WindowEntry>,
    index: WindowIndex,
}

impl UserState {
    fn new(model: ServeModel) -> UserState {
        let model = match model {
            ServeModel::Bag { decay, .. } => UserModel::Bag(OnlineProfile::new(decay)),
            ServeModel::Graph { similarity, n, .. } => {
                UserModel::Graph(Box::new(OnlineGraphModel::new(similarity, n)))
            }
            ServeModel::Topic { topics, decay, .. } => {
                UserModel::Topic(TopicProfile::new(decay, topics))
            }
        };
        let index = WindowIndex::for_model(&model);
        UserState { model, window: VecDeque::new(), index }
    }

    /// Rebuild a state from its snapshot, resolving window entries' tweet
    /// ids back to features through `resolve`.
    pub(crate) fn restore(
        snapshot: &UserSnapshot,
        resolve: &dyn Fn(TweetId) -> Option<Arc<TweetFeatures>>,
    ) -> UserState {
        let model = match &snapshot.model {
            UserModelSnapshot::Bag(profile) => UserModel::Bag(profile.clone()),
            UserModelSnapshot::Graph(graph) => UserModel::Graph(Box::new(graph.clone())),
            UserModelSnapshot::Topic(profile) => UserModel::Topic(profile.clone()),
        };
        let window: VecDeque<WindowEntry> = snapshot
            .window
            .iter()
            .filter_map(|e| {
                let features = resolve(TweetId(e.tweet))?;
                Some(WindowEntry { tweet: TweetId(e.tweet), at: e.at, features })
            })
            .collect();
        // The index is derived state: rebuild it from the restored window
        // so a resumed engine answers queries exactly like the original.
        let mut index = WindowIndex::for_model(&model);
        for e in &window {
            index.insert(e.tweet, &e.features);
        }
        UserState { model, window, index }
    }

    fn snapshot(&self, user: UserId) -> UserSnapshot {
        let model = match &self.model {
            UserModel::Bag(profile) => UserModelSnapshot::Bag(profile.clone()),
            UserModel::Graph(graph) => UserModelSnapshot::Graph((**graph).clone()),
            UserModel::Topic(profile) => UserModelSnapshot::Topic(profile.clone()),
        };
        let window = self
            .window
            .iter()
            .map(|e| WindowEntrySnapshot { tweet: e.tweet.0, at: e.at })
            .collect();
        UserSnapshot { user: user.0, model, window }
    }
}

/// One logical shard's complete state: a partition of the user space plus
/// the pure message-transition function ([`ShardState::apply`]). Owns no
/// thread and no channel — the scheduling half ([`crate::runtime`]) decides
/// which OS thread applies the shard's FIFO, and collects the replies
/// `apply` pushes.
/// Cleared-on-overflow capacity of the per-shard θ memo. Purely
/// mechanical: a hit and a recompute yield identical bytes (fold-in is a
/// pure function), so the cap — and the different hit patterns different
/// layouts produce — can never change an output.
const THETA_CACHE_CAP: usize = 8192;

pub(crate) struct ShardState {
    shard: usize,
    config: EngineConfig,
    /// Mechanical retrieval mode (from [`crate::config::RuntimeOptions`]):
    /// both settings produce byte-identical recommendations.
    retrieval: RetrievalMode,
    users: BTreeMap<UserId, UserState>,
    /// The topic family's shared background model, swapped by
    /// [`ShardMsg::Epoch`]. `None` for the gram families (and before the
    /// writer's initial epoch broadcast).
    background: Option<Arc<TopicBackground>>,
    /// Per-tweet fold-in memo under the current background, keyed by the
    /// document's seed key. Cleared on every epoch swap (θ depends on φ)
    /// and on overflow.
    thetas: BTreeMap<u64, Arc<Vec<f32>>>,
}

impl ShardState {
    pub(crate) fn new(
        shard: usize,
        config: EngineConfig,
        retrieval: RetrievalMode,
        users: BTreeMap<UserId, UserState>,
    ) -> ShardState {
        ShardState { shard, config, retrieval, users, background: None, thetas: BTreeMap::new() }
    }

    /// Apply one message, pushing any replies. This is the *entire*
    /// observable behavior of a shard: a shard's output is a fold of
    /// `apply` over its FIFO message sequence, which is what makes the
    /// scheduling layer provably irrelevant to the recommendation log.
    pub(crate) fn apply(&mut self, msg: ShardMsg, replies: &mut Vec<ShardReply>) {
        match msg {
            ShardMsg::Candidate { user, tweet, at, features } => {
                self.candidate(user, tweet, at, features);
            }
            ShardMsg::Observe { user, features } => self.observe(user, &features),
            ShardMsg::Query { id, user, k, now } => {
                let rec = self.query(id, user, k, now);
                replies.push(ShardReply::Recommendation(rec));
            }
            ShardMsg::Epoch(background) => {
                // θs are functions of φ: a new background invalidates the
                // memo wholesale.
                self.thetas.clear();
                self.background = Some(background);
            }
            ShardMsg::Snapshot => {
                let users = self.users.iter().map(|(u, s)| s.snapshot(*u)).collect();
                replies.push(ShardReply::SnapshotPart { users });
            }
            #[cfg(test)]
            // pmr-lint: allow(lib-unwrap): test-only poison pill; the panic is the point
            ShardMsg::Poison => panic!("shard {} poisoned", self.shard),
        }
    }

    fn state(&mut self, user: UserId) -> &mut UserState {
        let model = self.config.model;
        self.users.entry(user).or_insert_with(|| UserState::new(model))
    }

    fn candidate(
        &mut self,
        user: UserId,
        tweet: TweetId,
        at: Timestamp,
        features: Arc<TweetFeatures>,
    ) {
        let cap = self.config.window;
        let state = self.state(user);
        // A user can see the same original twice (e.g. via the author and
        // via a retweeting followee); the first exposure wins.
        if state.window.iter().any(|e| e.tweet == tweet) {
            pmr_obs::counter_add("serve.window_duplicates", 1);
            return;
        }
        state.index.insert(tweet, &features);
        state.window.push_back(WindowEntry { tweet, at, features });
        while state.window.len() > cap {
            if let Some(evicted) = state.window.pop_front() {
                state.index.remove(evicted.tweet, &evicted.features);
            }
            pmr_obs::counter_add("serve.window_evictions", 1);
        }
    }

    /// Fold-in θ for `doc` under the current background, memoized per seed
    /// key. `None` when no background has been broadcast yet (gram-family
    /// shards, or a topic doc arriving before the writer's initial epoch —
    /// the latter is counted, not panicked on).
    fn theta(&mut self, doc: &TopicDoc) -> Option<Arc<Vec<f32>>> {
        let background = self.background.as_ref()?;
        if let Some(theta) = self.thetas.get(&doc.key) {
            return Some(Arc::clone(theta));
        }
        let sweeps =
            self.config.model.online_topic().map_or(1, |(cfg, _, _)| cfg.foldin_iterations.max(1));
        pmr_obs::counter_add("serve.topic.foldin_iters", sweeps as u64);
        let theta = {
            let _timer = pmr_obs::timer("topic.foldin");
            Arc::new(background.fold_in(&doc.tokens, doc.key))
        };
        if self.thetas.len() >= THETA_CACHE_CAP {
            self.thetas.clear();
        }
        self.thetas.insert(doc.key, Arc::clone(&theta));
        Some(theta)
    }

    fn observe(&mut self, user: UserId, features: &Arc<TweetFeatures>) {
        // Topic first: θ computation borrows the shard-level memo, so it
        // must run before the user-state borrow.
        if let TweetFeatures::Topic(doc) = features.as_ref() {
            let Some(theta) = self.theta(doc) else {
                pmr_obs::counter_add("serve.model_feature_mismatch", 1);
                return;
            };
            if let UserModel::Topic(profile) = &mut self.state(user).model {
                profile.observe(&theta);
            } else {
                pmr_obs::counter_add("serve.model_feature_mismatch", 1);
            }
            return;
        }
        let state = self.state(user);
        match (&mut state.model, features.as_ref()) {
            (UserModel::Bag(profile), TweetFeatures::Bag(unit)) => profile.observe_unit(unit),
            (UserModel::Graph(graph), TweetFeatures::Graph(grams)) => graph.observe(grams),
            // Unreachable when the engine computes features from its own
            // config; counted rather than panicking per the no-panic rule.
            _ => pmr_obs::counter_add("serve.model_feature_mismatch", 1),
        }
    }

    fn query(&mut self, id: u64, user: UserId, k: usize, now: Timestamp) -> Recommendation {
        let _timer = pmr_obs::timer("serve.query");
        if matches!(self.config.model, ServeModel::Topic { .. }) {
            return self.query_topic(id, user, k, now);
        }
        let mut items: Vec<RecItem> = Vec::new();
        let mut scored = 0u64;
        let mut pruned = 0u64;
        let similarity = match self.config.model {
            ServeModel::Bag { similarity, .. } => Some(similarity),
            ServeModel::Graph { .. } | ServeModel::Topic { .. } => None,
        };
        let retrieval = self.retrieval;
        if let Some(state) = self.users.get_mut(&user) {
            let UserState { model, window, index } = state;
            match model {
                UserModel::Bag(profile) => {
                    // One kernel per query amortizes the model-side
                    // normalization over the whole window.
                    if let Some(similarity) = similarity {
                        let kernel = ScoringKernel::new(similarity, profile.vector());
                        // Under Wand, candidates sharing no term with the
                        // model are zero-filled without a kernel call:
                        // every bag similarity maps empty overlap to
                        // exactly 0.0, so the scores are byte-identical.
                        let matched: Option<Vec<u32>> = match (retrieval, &*index) {
                            (RetrievalMode::Wand, WindowIndex::Bag(postings)) => {
                                let keys: Vec<TermId> =
                                    profile.vector().entries().iter().map(|&(t, _)| t).collect();
                                Some(postings.matched(keys.iter()))
                            }
                            _ => None,
                        };
                        for e in window.iter().filter(|e| e.at <= now) {
                            if let TweetFeatures::Bag(v) = e.features.as_ref() {
                                let gated_out = matched
                                    .as_ref()
                                    .is_some_and(|m| m.binary_search(&e.tweet.0).is_err());
                                let score = if gated_out {
                                    pruned += 1;
                                    0.0
                                } else {
                                    scored += 1;
                                    kernel.score(v)
                                };
                                items.push(RecItem { tweet: e.tweet.0, score });
                            }
                        }
                    }
                }
                UserModel::Graph(graph) => {
                    // A shared edge requires a shared node gram, so gating
                    // on gram overlap never drops a candidate that could
                    // score non-zero. Gated-out candidates still intern
                    // their grams (`intern_only`) so the graph space
                    // assigns ids in the same order as the exhaustive
                    // path — later scores depend on that order.
                    let matched: Option<Vec<u32>> = match (retrieval, &*index) {
                        (RetrievalMode::Wand, WindowIndex::Graph(postings)) => {
                            let keys = graph.node_terms();
                            Some(postings.matched(keys.iter()))
                        }
                        _ => None,
                    };
                    for e in window.iter().filter(|e| e.at <= now) {
                        if let TweetFeatures::Graph(grams) = e.features.as_ref() {
                            let gated_out = matched
                                .as_ref()
                                .is_some_and(|m| m.binary_search(&e.tweet.0).is_err());
                            let score = if gated_out {
                                pruned += 1;
                                graph.intern_only(grams)
                            } else {
                                scored += 1;
                                graph.score(grams)
                            };
                            items.push(RecItem { tweet: e.tweet.0, score });
                        }
                    }
                }
                // Unreachable: topic queries dispatched to `query_topic`.
                UserModel::Topic(_) => {}
            }
        }
        if retrieval == RetrievalMode::Wand {
            pmr_obs::counter_add("retrieval.candidates", scored);
            pmr_obs::counter_add("retrieval.pruned", pruned);
        }
        // Deterministic total order: the repo-wide top-k contract
        // ([`pmr_core::rank_cmp`]) — best score first, ties broken by
        // ascending tweet id, total even for NaN.
        items.sort_by(|a, b| rank_cmp(a.score, &a.tweet, b.score, &b.tweet));
        items.truncate(k);
        Recommendation { query: id, user: user.0, now, items }
    }

    /// The topic query path: always exhaustive over the eligible window
    /// (see [`WindowIndex::Topic`] for why gating cannot apply), with θs
    /// served from the shard memo. Split from [`ShardState::query`] because
    /// θ computation borrows shard-level state the gram paths never touch.
    fn query_topic(&mut self, id: u64, user: UserId, k: usize, now: Timestamp) -> Recommendation {
        let eligible: Vec<(u32, Arc<TweetFeatures>)> = self
            .users
            .get(&user)
            .map(|state| {
                state
                    .window
                    .iter()
                    .filter(|e| e.at <= now)
                    .map(|e| (e.tweet.0, Arc::clone(&e.features)))
                    .collect()
            })
            .unwrap_or_default();
        let mut thetas: Vec<(u32, Arc<Vec<f32>>)> = Vec::with_capacity(eligible.len());
        for (tweet, features) in &eligible {
            match features.as_ref() {
                TweetFeatures::Topic(doc) => {
                    if let Some(theta) = self.theta(doc) {
                        thetas.push((*tweet, theta));
                    }
                }
                _ => pmr_obs::counter_add("serve.model_feature_mismatch", 1),
            }
        }
        let mut items: Vec<RecItem> = Vec::new();
        if let Some(state) = self.users.get(&user) {
            if let UserModel::Topic(profile) = &state.model {
                for (tweet, theta) in &thetas {
                    items.push(RecItem { tweet: *tweet, score: profile.score(theta) });
                }
            }
        }
        items.sort_by(|a, b| rank_cmp(a.score, &a.tweet, b.score, &b.tweet));
        items.truncate(k);
        Recommendation { query: id, user: user.0, now, items }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload was not a string".to_string()
    }
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("shard", &self.shard)
            .field("config", &self.config)
            .field("users", &self.users.len())
            .finish()
    }
}
