//! Deterministic stream replay: drive an [`Engine`] from a simulated
//! corpus's event stream.
//!
//! The driver walks [`pmr_sim::Corpus::event_stream`] in its total order
//! and translates each event into engine calls:
//!
//! * an **original** tweet is fanned out as a candidate to every follower
//!   of its author;
//! * a **retweet** does two things: the reposter's model *observes* the
//!   original's features (a retweet is the interest signal the whole study
//!   is built on), and the original is fanned out as a candidate to the
//!   reposter's followers — how content propagates past the author's own
//!   audience;
//! * every `query_every` events, the next evaluated user (round-robin over
//!   [`pmr_sim::Corpus::evaluated_user_ids`]) is asked for their top-k as
//!   of the event's timestamp.
//!
//! Features are computed **once per original tweet** before replay starts,
//! in parallel over `jobs` workers through the corpus's shared
//! [`pmr_core::FeatureCache`]-backed gram tables, and shared by `Arc` with
//! every shard that sees the tweet. Precomputation order is canonical
//! (`pmr_core::executor::run_tasks` returns results in input order), so
//! `jobs` never changes a feature, a score, or a recommendation.

use std::sync::Arc;

use pmr_bag::IndexedVectorizer;
use pmr_core::executor::run_tasks;
use pmr_core::{GramKind, PmrError, PmrResult, PreparedCorpus};
use pmr_sim::{StreamEvent, TweetId, UserId};
use pmr_text::vocab::TermId;
use pmr_topics::{TopicBackground, TopicDoc};

use crate::config::{EngineConfig, RuntimeOptions, ServeModel};
use crate::engine::Engine;
use crate::shard::{Recommendation, TweetFeatures};
use crate::snapshot::EngineSnapshot;

/// Everything a replay run needs beyond the corpus itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// The engine's semantic configuration.
    pub config: EngineConfig,
    /// Shard and queue sizing (must not affect output).
    pub runtime: RuntimeOptions,
    /// Top-k size of issued queries.
    pub k: usize,
    /// Issue one query every this many events (0 disables querying).
    pub query_every: usize,
    /// Worker threads for the feature precomputation pass (must not
    /// affect output).
    pub jobs: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            config: EngineConfig {
                model: ServeModel::Bag {
                    weighting: pmr_bag::WeightingScheme::TF,
                    similarity: pmr_bag::BagSimilarity::Cosine,
                    char_grams: false,
                    n: 1,
                    decay: 1.0,
                },
                window: 128,
            },
            runtime: RuntimeOptions::default(),
            k: 10,
            query_every: 25,
            jobs: 1,
        }
    }
}

/// The result of a completed replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Every answered query, in query-id order.
    pub recommendations: Vec<Recommendation>,
    /// Stream events ingested.
    pub events: u64,
    /// Queries issued.
    pub queries: u64,
}

/// Per-tweet features for the originals of a corpus, indexed by tweet id
/// (retweet slots are `None`; a retweet carries its original's features).
/// Precomputation order is canonical regardless of `jobs`, so the table is
/// a pure function of the corpus and model. Public so load harnesses can
/// drive an [`Engine`] directly with replay-identical features.
pub fn precompute_features(
    prepared: &PreparedCorpus,
    model: ServeModel,
    jobs: usize,
) -> Vec<Option<Arc<TweetFeatures>>> {
    let table = prepared.gram_table(GramKind::of(model.char_grams()), model.n());
    let originals: Vec<TweetId> =
        prepared.corpus.tweets.iter().filter(|t| t.retweet_of.is_none()).map(|t| t.id).collect();
    let computed: Vec<Arc<TweetFeatures>> = match model {
        ServeModel::Bag { weighting, .. } => {
            let vectorizer =
                IndexedVectorizer::fit(weighting, originals.iter().map(|&id| table.doc(id)));
            run_tasks(originals.clone(), jobs, |_, id| {
                Arc::new(TweetFeatures::Bag(vectorizer.transform(table.doc(id)).normalized()))
            })
        }
        ServeModel::Graph { .. } => run_tasks(originals.clone(), jobs, |_, id| {
            let grams: Vec<String> = table.doc_terms(id).into_iter().map(str::to_owned).collect();
            Arc::new(TweetFeatures::Graph(grams))
        }),
        // Token unigram ids over the table's corpus-wide vocabulary; the
        // tweet id doubles as the fold-in seed key.
        ServeModel::Topic { .. } => run_tasks(originals.clone(), jobs, |_, id| {
            Arc::new(TweetFeatures::Topic(TopicDoc {
                key: id.0 as u64,
                tokens: table.doc(id).to_vec(),
            }))
        }),
    };
    let mut features: Vec<Option<Arc<TweetFeatures>>> = vec![None; prepared.corpus.tweets.len()];
    for (id, f) in originals.into_iter().zip(computed) {
        features[id.index()] = Some(f);
    }
    features
}

/// The corpus-wide token-unigram vocabulary the topic background trains
/// over (0 for the gram families). Epoch-stable: the table is fitted on
/// the whole corpus, so retrains only change which *documents* are seen,
/// never the id space.
fn topic_vocab(prepared: &PreparedCorpus, model: ServeModel) -> usize {
    if model.online_topic().is_some() {
        prepared.gram_table(GramKind::Token, 1).vocab_len()
    } else {
        0
    }
}

/// A replay in progress: the engine plus the event cursor, pausable at any
/// event boundary via [`Replay::snapshot`].
pub struct Replay<'a> {
    prepared: &'a PreparedCorpus,
    features: Vec<Option<Arc<TweetFeatures>>>,
    stream: Vec<StreamEvent>,
    eval_users: Vec<UserId>,
    options: ReplayOptions,
    engine: Engine,
    position: usize,
    /// The topic vocabulary size (0 for the gram families): the token
    /// unigram table's corpus-wide vocabulary, stable across epochs.
    topic_vocab: usize,
    /// The topic-background epoch currently broadcast (0 for the gram
    /// families, which never retrain anything).
    epoch: u64,
}

impl<'a> Replay<'a> {
    /// Precompute features and spawn a fresh engine at stream position 0.
    pub fn new(prepared: &'a PreparedCorpus, options: ReplayOptions) -> Replay<'a> {
        let features = precompute_features(prepared, options.config.model, options.jobs);
        let engine = Engine::start(options.config, options.runtime);
        let mut replay = Replay {
            topic_vocab: topic_vocab(prepared, options.config.model),
            prepared,
            features,
            stream: prepared.corpus.event_stream(),
            eval_users: prepared.corpus.evaluated_user_ids().collect(),
            options,
            engine,
            position: 0,
            epoch: 0,
        };
        // Topic bootstrap (epoch 0): train on all materialized originals —
        // the oracle background the batch-equivalence pin compares against
        // — and broadcast it before the first event, so every shard's FIFO
        // starts with the same epoch boundary.
        if let Some(background) = replay.train_background(0) {
            replay.engine.set_background(background);
        }
        replay
    }

    /// Precompute features and resume an engine from `snapshot`, at the
    /// stream position the snapshot was taken at.
    ///
    /// `options.config` must equal the snapshot's config — the snapshot's
    /// models only make sense in the feature space they were built in.
    pub fn resume(
        prepared: &'a PreparedCorpus,
        snapshot: &EngineSnapshot,
        options: ReplayOptions,
    ) -> PmrResult<Replay<'a>> {
        if options.config != snapshot.header.config {
            return Err(PmrError::Serialize {
                detail: "replay options disagree with the snapshot's engine config".to_owned(),
            });
        }
        let features = precompute_features(prepared, options.config.model, options.jobs);
        let engine = {
            let resolve =
                |id: TweetId| features.get(id.index()).and_then(|f| f.as_ref().map(Arc::clone));
            Engine::resume(snapshot, options.runtime, &resolve)?
        };
        let mut replay = Replay {
            topic_vocab: topic_vocab(prepared, options.config.model),
            prepared,
            features,
            stream: prepared.corpus.event_stream(),
            eval_users: prepared.corpus.evaluated_user_ids().collect(),
            options,
            engine,
            position: snapshot.header.events as usize,
            epoch: snapshot.header.epoch,
        };
        // Re-derive the snapshot's background: it is a pure function of
        // (corpus, config, epoch), so training it again — under any shard
        // layout — reproduces the exact φ the paused engine was serving.
        if let Some(background) = replay.train_background(snapshot.header.epoch) {
            replay.engine.set_background(background);
        }
        Ok(replay)
    }

    /// Total number of stream events.
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }

    /// Events ingested so far.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Fan `tweet` (with its precomputed features) out to `author`'s
    /// followers as a candidate.
    fn fan_out(&mut self, author: UserId, tweet: TweetId, at: pmr_sim::Timestamp) {
        if let Some(features) = self.features[tweet.index()].clone() {
            for &follower in self.prepared.corpus.graph.followers(author) {
                self.engine.post_candidate(follower, tweet, at, &features);
            }
        }
    }

    /// Retrain the topic background for `epoch` — `None` for the gram
    /// families. Epoch 0 trains on every materialized original (the
    /// bootstrap oracle); epoch `e ≥ 1` trains on the causal prefix: the
    /// originals whose events appear in `stream[..e·refresh]`, in stream
    /// order. Both are pure functions of `(corpus, config, epoch)`, which
    /// is what lets snapshots carry only the epoch number.
    fn train_background(&self, epoch: u64) -> Option<Arc<TopicBackground>> {
        let (cfg, _, refresh) = self.options.config.model.online_topic()?;
        fn topic_tokens(f: Option<&TweetFeatures>) -> Option<&[TermId]> {
            match f {
                Some(TweetFeatures::Topic(doc)) => Some(doc.tokens.as_slice()),
                _ => None,
            }
        }
        let docs: Vec<&[TermId]> = if epoch == 0 {
            self.features.iter().filter_map(|f| topic_tokens(f.as_deref())).collect()
        } else {
            let end = ((epoch * refresh) as usize).min(self.stream.len());
            self.stream[..end]
                .iter()
                .filter(|e| e.retweet_of.is_none())
                .filter_map(|e| topic_tokens(self.features[e.tweet.index()].as_deref()))
                .collect()
        };
        pmr_obs::counter_add("serve.topic.background_refresh", 1);
        Some(Arc::new(TopicBackground::train(&cfg, &docs, self.topic_vocab, epoch)))
    }

    /// Swap in a freshly retrained background when the cursor crosses a
    /// refresh boundary it hasn't trained for yet. Runs on the single
    /// writer *before* the boundary event is posted, so the epoch lands at
    /// the same FIFO position in every layout — and a run resumed exactly
    /// at a boundary retrains here just like the uninterrupted run did.
    fn maybe_refresh_background(&mut self) {
        let Some((_, _, refresh)) = self.options.config.model.online_topic() else {
            return;
        };
        if refresh == 0 || self.position == 0 || !(self.position as u64).is_multiple_of(refresh) {
            return;
        }
        let target_epoch = self.position as u64 / refresh;
        if target_epoch <= self.epoch {
            return;
        }
        if let Some(background) = self.train_background(target_epoch) {
            self.engine.set_background(background);
            self.epoch = target_epoch;
        }
    }

    /// Ingest events until the cursor reaches `target` (clamped to the
    /// stream's end).
    pub fn run_to(&mut self, target: usize) {
        let target = target.min(self.stream.len());
        while self.position < target {
            self.maybe_refresh_background();
            let event = self.stream[self.position];
            pmr_obs::counter_add("serve.events", 1);
            match event.retweet_of {
                None => self.fan_out(event.author, event.tweet, event.at),
                Some(original) => {
                    if let Some(features) = self.features[original.index()].clone() {
                        self.engine.observe(event.author, &features);
                    }
                    // The repost surfaces the *original* to the reposter's
                    // audience at the repost's time.
                    self.fan_out(event.author, original, event.at);
                }
            }
            self.position += 1;
            if self.options.query_every > 0
                && self.position.is_multiple_of(self.options.query_every)
                && !self.eval_users.is_empty()
            {
                let issued = self.engine.queries_issued() as usize;
                let user = self.eval_users[issued % self.eval_users.len()];
                self.engine.query(user, self.options.k, event.at);
            }
        }
    }

    /// Ingest the rest of the stream.
    pub fn run_to_end(&mut self) {
        self.run_to(self.stream.len());
    }

    /// Pause-and-copy the full engine state at the current event boundary.
    ///
    /// Errors if a shard worker died mid-stream (see [`Engine::snapshot`]).
    pub fn snapshot(&mut self) -> PmrResult<EngineSnapshot> {
        self.engine.snapshot(self.position as u64)
    }

    /// Close the stream and collect every recommendation in query order.
    pub fn finish(self) -> ReplayOutcome {
        let events = self.position as u64;
        let queries = self.engine.queries_issued();
        let recommendations = self.engine.finish();
        ReplayOutcome { recommendations, events, queries }
    }

    /// Convenience: replay the whole stream in one call.
    pub fn run(prepared: &PreparedCorpus, options: ReplayOptions) -> ReplayOutcome {
        let mut replay = Replay::new(prepared, options);
        replay.run_to_end();
        replay.finish()
    }
}

impl std::fmt::Debug for Replay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replay")
            .field("options", &self.options)
            .field("position", &self.position)
            .field("stream_len", &self.stream.len())
            .finish()
    }
}

/// Serialize recommendations as a JSONL log, one per line in query order —
/// the determinism artifact `serve-smoke` byte-diffs across shard and
/// thread counts.
pub fn rec_log(recommendations: &[Recommendation]) -> PmrResult<String> {
    let mut out = String::new();
    for rec in recommendations {
        let line = serde_json::to_string(rec).map_err(|e| PmrError::Serialize {
            detail: format!("recommendation {}: {e}", rec.query),
        })?;
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}
