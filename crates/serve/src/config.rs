//! Serving-engine configuration.
//!
//! [`EngineConfig`] is the *semantic* configuration: it determines every
//! recommendation the engine will ever emit and therefore travels inside
//! snapshots. [`RuntimeOptions`] is the *mechanical* configuration — shard
//! and queue sizing — which by the determinism contract must never change
//! an output, and is therefore deliberately excluded from snapshots: a
//! snapshot taken on one shard layout restores onto any other.

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_core::RetrievalMode;
use pmr_graph::GraphSimilarity;
use pmr_topics::OnlineTopicConfig;
use serde::{Deserialize, Serialize};

/// The online model family the engine maintains for every user.
///
/// Mirrors the batch study's incremental-friendly families (§3.2): the
/// decayed bag centroid, the n-gram graph with its running-average update
/// operator, and — via [`pmr_topics::OnlineTopicModel`] — the topic family,
/// serving new documents by deterministic fold-in Gibbs inference against a
/// periodically retrained background model instead of refitting the full
/// sampler per document.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServeModel {
    /// Exponentially decayed centroid of unit document vectors
    /// ([`pmr_core::OnlineProfile`]) scored with a bag similarity.
    Bag {
        /// Term weighting of the shared vectorizer.
        weighting: WeightingScheme,
        /// Similarity used at query time.
        similarity: BagSimilarity,
        /// Character n-grams instead of token n-grams.
        char_grams: bool,
        /// Gram order.
        n: usize,
        /// History decay per observed document, in (0, 1].
        decay: f32,
    },
    /// Incremental n-gram graph ([`pmr_core::OnlineGraphModel`]).
    Graph {
        /// Graph similarity used at query time.
        similarity: GraphSimilarity,
        /// Character n-grams instead of token n-grams.
        char_grams: bool,
        /// Gram order (also the graph's co-occurrence window).
        n: usize,
    },
    /// Decayed per-user topic profile ([`pmr_topics::OnlineTopicModel`])
    /// over fold-in θ distributions against a shared background LDA model,
    /// scored with cosine. Always token unigrams — the topic vocabulary is
    /// the corpus's token space.
    Topic {
        /// Number of latent topics.
        topics: usize,
        /// Symmetric document–topic prior.
        alpha: f64,
        /// Symmetric topic–word prior.
        beta: f64,
        /// Gibbs sweeps per background retrain.
        train_iterations: usize,
        /// Gibbs sweeps per served document's fold-in.
        foldin_iterations: usize,
        /// Master seed for training and fold-in seed derivation.
        seed: u64,
        /// History decay per observed document, in (0, 1].
        decay: f32,
        /// Retrain the background model every this many stream events on
        /// the causal prefix (0 keeps the epoch-0 model forever).
        background_refresh: u64,
    },
}

impl ServeModel {
    /// Whether the model reads character grams (vs token grams).
    pub fn char_grams(self) -> bool {
        match self {
            ServeModel::Bag { char_grams, .. } | ServeModel::Graph { char_grams, .. } => char_grams,
            ServeModel::Topic { .. } => false,
        }
    }

    /// The gram order.
    pub fn n(self) -> usize {
        match self {
            ServeModel::Bag { n, .. } | ServeModel::Graph { n, .. } => n,
            ServeModel::Topic { .. } => 1,
        }
    }

    /// Short human-readable name for logs and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            ServeModel::Bag { .. } => "bag",
            ServeModel::Graph { .. } => "graph",
            ServeModel::Topic { .. } => "topic",
        }
    }

    /// The topic family's `(sampler config, profile decay, refresh cadence)`
    /// — `None` for the gram families.
    pub fn online_topic(self) -> Option<(OnlineTopicConfig, f32, u64)> {
        match self {
            ServeModel::Topic {
                topics,
                alpha,
                beta,
                train_iterations,
                foldin_iterations,
                seed,
                decay,
                background_refresh,
            } => Some((
                OnlineTopicConfig {
                    topics,
                    alpha,
                    beta,
                    train_iterations,
                    foldin_iterations,
                    seed,
                },
                decay,
                background_refresh,
            )),
            _ => None,
        }
    }
}

/// Everything that determines the engine's *outputs*. Serialized into
/// snapshots; restoring under a different `EngineConfig` is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The per-user online model.
    pub model: ServeModel,
    /// Candidate-window capacity per user: how many of the most recent
    /// feed tweets stay eligible for recommendation. Oldest entries are
    /// evicted first.
    pub window: usize,
}

/// How shard message processing is scheduled onto OS threads. Mechanical:
/// both schedulers drain every shard's FIFO in order, so they produce
/// byte-identical recommendation logs (the determinism suite pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// One OS thread per shard behind a blocking FIFO. Simple, but thread
    /// count is welded to shard count, so thousands of logical shards mean
    /// thousands of threads. Kept as the measurable baseline.
    Threaded,
    /// `workers` OS threads multiplex all logical shards through per-shard
    /// mailboxes and a shared run queue; an idle worker steals whichever
    /// runnable shard is oldest. Shard count becomes a pure partitioning
    /// knob, decoupled from thread count.
    WorkSteal,
}

impl Scheduler {
    /// Parse a CLI name (`threaded` / `worksteal`).
    pub fn parse(s: &str) -> Option<Scheduler> {
        match s {
            "threaded" => Some(Scheduler::Threaded),
            "worksteal" | "work-steal" | "ws" => Some(Scheduler::WorkSteal),
            _ => None,
        }
    }

    /// Short human-readable name for logs and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Threaded => "threaded",
            Scheduler::WorkSteal => "worksteal",
        }
    }
}

/// Mechanical sizing knobs. Changing these must never change a
/// recommendation — that invariant is the subsystem's core contract and is
/// what the `serve-smoke` CI job byte-diffs for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Number of *logical* shards; users are partitioned `user_id % shards`.
    /// Under [`Scheduler::WorkSteal`] this is independent of thread count,
    /// so it can comfortably be in the thousands.
    pub shards: usize,
    /// OS worker threads under [`Scheduler::WorkSteal`] (ignored by
    /// [`Scheduler::Threaded`], which always runs one thread per shard).
    pub workers: usize,
    /// Bounded per-shard ingest queue capacity. When a queue fills, the
    /// ingest thread blocks (after bumping the `serve.backpressure`
    /// counter) rather than buffering unboundedly.
    pub queue_capacity: usize,
    /// Candidate retrieval at query time. `Wand` maintains an incremental
    /// window index per user and scores only candidates sharing at least
    /// one feature with the model; everything else provably scores exactly
    /// `0.0` and is zero-filled without a kernel call. Mechanical rather
    /// than semantic: both modes emit byte-identical recommendations (the
    /// determinism suite pins this), so the knob lives here and stays out
    /// of snapshots.
    pub retrieval: RetrievalMode,
    /// How shards are scheduled onto OS threads. Mechanical: both
    /// schedulers must emit byte-identical recommendations.
    pub scheduler: Scheduler,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            shards: 64,
            workers: 4,
            queue_capacity: 1024,
            retrieval: RetrievalMode::Wand,
            scheduler: Scheduler::WorkSteal,
        }
    }
}

impl RuntimeOptions {
    /// Clamp to at least one shard, one worker and a one-slot queue.
    pub fn normalized(self) -> RuntimeOptions {
        RuntimeOptions {
            shards: self.shards.max(1),
            workers: self.workers.max(1),
            queue_capacity: self.queue_capacity.max(1),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_json() {
        let configs = [
            EngineConfig {
                model: ServeModel::Bag {
                    weighting: WeightingScheme::TFIDF,
                    similarity: BagSimilarity::Cosine,
                    char_grams: false,
                    n: 1,
                    decay: 0.97,
                },
                window: 128,
            },
            EngineConfig {
                model: ServeModel::Graph {
                    similarity: GraphSimilarity::Value,
                    char_grams: true,
                    n: 3,
                },
                window: 64,
            },
            EngineConfig {
                model: ServeModel::Topic {
                    topics: 16,
                    alpha: 50.0 / 16.0,
                    beta: 0.01,
                    train_iterations: 50,
                    foldin_iterations: 8,
                    seed: 7,
                    decay: 0.99,
                    background_refresh: 500,
                },
                window: 64,
            },
        ];
        for config in configs {
            let json = serde_json::to_string(&config).expect("serializes");
            let back: EngineConfig = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, config);
        }
    }

    #[test]
    fn topic_models_fix_token_unigrams() {
        let model = ServeModel::Topic {
            topics: 8,
            alpha: 6.25,
            beta: 0.01,
            train_iterations: 10,
            foldin_iterations: 4,
            seed: 3,
            decay: 0.9,
            background_refresh: 100,
        };
        assert!(!model.char_grams(), "topic features are token grams by construction");
        assert_eq!(model.n(), 1);
        assert_eq!(model.name(), "topic");
        let (cfg, decay, refresh) = model.online_topic().expect("topic variant yields a config");
        assert_eq!(cfg.topics, 8);
        assert_eq!(cfg.foldin_iterations, 4);
        assert_eq!(decay, 0.9);
        assert_eq!(refresh, 100);
        assert!(ServeModel::Graph { similarity: GraphSimilarity::Value, char_grams: true, n: 3 }
            .online_topic()
            .is_none());
    }

    #[test]
    fn runtime_options_normalize_degenerate_sizes() {
        let r = RuntimeOptions {
            shards: 0,
            workers: 0,
            queue_capacity: 0,
            ..RuntimeOptions::default()
        }
        .normalized();
        assert_eq!(r.shards, 1);
        assert_eq!(r.workers, 1);
        assert_eq!(r.queue_capacity, 1);
        assert_eq!(r.retrieval, RetrievalMode::Wand, "normalization keeps the retrieval mode");
    }

    #[test]
    fn scheduler_names_round_trip() {
        for s in [Scheduler::Threaded, Scheduler::WorkSteal] {
            assert_eq!(Scheduler::parse(s.name()), Some(s));
        }
        assert_eq!(Scheduler::parse("ws"), Some(Scheduler::WorkSteal));
        assert_eq!(Scheduler::parse("fibers"), None);
    }
}
