//! Shard scheduling: how logical shards map onto OS threads.
//!
//! The engine's determinism argument ([`crate::shard`]) only needs two
//! properties from whatever runs the shards:
//!
//! 1. each shard's messages are applied in FIFO order, and
//! 2. at most one thread applies a given shard's messages at a time.
//!
//! Everything else — how many threads exist, which thread runs which
//! shard, when a shard yields — is mechanical and must never change a byte
//! of output. This module provides two interchangeable schedulers behind
//! [`ShardRuntime`]:
//!
//! * [`Scheduler::Threaded`] — the original engine: one OS thread per
//!   shard, parked on a bounded blocking FIFO. Thread count is welded to
//!   shard count, so it cannot scale the shard count past the core count
//!   without thrashing. Kept as the measurable baseline (`bench_load`
//!   publishes the head-to-head numbers).
//!
//! * [`Scheduler::WorkSteal`] — an actor-style work-stealing runtime:
//!   every logical shard owns a mailbox (`Mutex<VecDeque> + Condvar`), and
//!   `workers` OS threads pull *runnable shards* from a shared injector
//!   queue. A shard becomes runnable when its mailbox goes non-empty; the
//!   `scheduled` flag guarantees at most one run token per shard exists,
//!   which is exactly invariant (2). A worker drains a shard in batches
//!   and re-queues it after [`MAX_TURNS`] batches (a cooperative yield, so
//!   a celebrity-storm shard cannot starve its siblings), or parks on the
//!   injector when nothing is runnable. Whichever worker dequeues the
//!   token runs the shard — that is the "steal": shards migrate freely
//!   between workers, counted by `serve.runtime.steals`.
//!
//! Cooperative blocking in the mailbox path is intentional and bounded:
//! the single producer parks on a full mailbox's condvar (after bumping
//! the `serve.backpressure` counters) until a worker drains room, and
//! shutdown parks until each mailbox is idle. Neither wait can deadlock:
//! a non-empty mailbox always has a live run token, and every wait
//! re-checks the runtime's abort flag on a short tick, so a dead worker
//! fails posts fast instead of wedging the producer. Channel use is
//! one-directional per endpoint holder (messages in via mailboxes, replies
//! out via one unbounded channel), so no request/reply channel cycle
//! exists for a full queue to close.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender, TryRecvError, TrySendError};
use pmr_sim::UserId;

use crate::config::{EngineConfig, RuntimeOptions, Scheduler};
use crate::shard::{panic_detail, ShardMsg, ShardReply, ShardState, UserState};

/// Messages a work-steal worker pulls from the shared injector queue.
enum Task {
    /// Run the given shard: drain its mailbox until idle or yield.
    Run(usize),
    /// Exit the worker loop (sent once per worker at shutdown).
    Stop,
}

/// Max messages drained per mailbox lock acquisition.
const BATCH: usize = 64;
/// Batches a worker applies before re-queuing a still-runnable shard —
/// the cooperative yield point that keeps one hot shard from starving
/// the rest of the run queue.
const MAX_TURNS: usize = 8;
/// Re-check tick for the two cooperative waits (full mailbox, shutdown
/// quiescence): bounds the cost of any lost wakeup and lets waiters
/// observe the abort flag promptly. Liveness only — never correctness.
const WAIT_TICK: Duration = Duration::from_millis(1);

/// Per-logical-shard backpressure counter names, log-4 bucketed by shard
/// id so hot-key skew (a celebrity's shard saturating while the rest idle)
/// is visible in reports without one counter per shard.
const SHARD_BUCKETS: [&str; 11] = [
    "serve.backpressure.shard_b0",
    "serve.backpressure.shard_b1",
    "serve.backpressure.shard_b2",
    "serve.backpressure.shard_b3",
    "serve.backpressure.shard_b4",
    "serve.backpressure.shard_b5",
    "serve.backpressure.shard_b6",
    "serve.backpressure.shard_b7",
    "serve.backpressure.shard_b8",
    "serve.backpressure.shard_b9",
    "serve.backpressure.shard_b10",
];

/// Log-4 bucket of a shard id: 0 → b0, 1–3 → b1, 4–15 → b2, 16–63 → b3, …
fn shard_bucket(shard: usize) -> usize {
    let mut bucket = 0;
    let mut edge = 1usize;
    while shard >= edge && bucket < SHARD_BUCKETS.len() - 1 {
        bucket += 1;
        edge = edge.saturating_mul(4);
    }
    bucket
}

/// Count one backpressure event: the aggregate counter (asserted by the
/// scale gate) plus the shard's log-4 bucket.
fn note_backpressure(shard: usize) {
    pmr_obs::counter_add("serve.backpressure", 1);
    pmr_obs::counter_add(SHARD_BUCKETS[shard_bucket(shard)], 1);
}

/// A running scheduler: accepts posted messages and owns the threads that
/// apply them. Replies flow out through the unbounded channel the engine
/// passed at start.
pub(crate) enum ShardRuntime {
    Threaded(ThreadedRuntime),
    WorkSteal(WorkStealRuntime),
}

impl ShardRuntime {
    /// Spawn the scheduler `options` selects over the given per-shard user
    /// partitions (`partitions.len()` is the logical shard count).
    pub(crate) fn start(
        config: EngineConfig,
        options: RuntimeOptions,
        partitions: Vec<BTreeMap<UserId, UserState>>,
        reply_tx: &Sender<ShardReply>,
    ) -> ShardRuntime {
        match options.scheduler {
            Scheduler::Threaded => ShardRuntime::Threaded(ThreadedRuntime::start(
                config, options, partitions, reply_tx,
            )),
            Scheduler::WorkSteal => ShardRuntime::WorkSteal(WorkStealRuntime::start(
                config, options, partitions, reply_tx,
            )),
        }
    }

    /// Logical shard count.
    pub(crate) fn shards(&self) -> usize {
        match self {
            ShardRuntime::Threaded(rt) => rt.senders.len(),
            ShardRuntime::WorkSteal(rt) => rt.shared.cells.len(),
        }
    }

    /// Deliver `msg` to `shard`'s FIFO, blocking (with a backpressure
    /// count) while the queue is full. `Err` means the shard can no longer
    /// accept messages — a worker died or the runtime was shut down.
    pub(crate) fn post(&mut self, shard: usize, msg: ShardMsg) -> Result<(), ()> {
        match self {
            ShardRuntime::Threaded(rt) => rt.post(shard, msg),
            ShardRuntime::WorkSteal(rt) => rt.post(shard, msg),
        }
    }

    /// Drain every shard, stop every worker thread and join them.
    /// Idempotent, and deliberately panic-free even when a worker
    /// panicked — the engine's drop path must be able to call this during
    /// unwinding. The panic is recorded instead ([`ShardRuntime::panicked`]).
    pub(crate) fn shutdown(&mut self) {
        match self {
            ShardRuntime::Threaded(rt) => rt.shutdown(),
            ShardRuntime::WorkSteal(rt) => rt.shutdown(),
        }
    }

    /// Whether any worker thread panicked (observable after [`shutdown`]).
    ///
    /// [`shutdown`]: ShardRuntime::shutdown
    pub(crate) fn panicked(&self) -> bool {
        match self {
            ShardRuntime::Threaded(rt) => rt.panicked,
            ShardRuntime::WorkSteal(rt) => rt.panicked,
        }
    }
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRuntime::Threaded(rt) => f
                .debug_struct("ThreadedRuntime")
                .field("shards", &rt.senders.len())
                .finish_non_exhaustive(),
            ShardRuntime::WorkSteal(rt) => f
                .debug_struct("WorkStealRuntime")
                .field("shards", &rt.shared.cells.len())
                .field("workers", &rt.workers)
                .finish_non_exhaustive(),
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded: one OS thread per shard behind a bounded blocking FIFO.
// ---------------------------------------------------------------------------

pub(crate) struct ThreadedRuntime {
    senders: Vec<Sender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    panicked: bool,
}

impl ThreadedRuntime {
    fn start(
        config: EngineConfig,
        options: RuntimeOptions,
        partitions: Vec<BTreeMap<UserId, UserState>>,
        reply_tx: &Sender<ShardReply>,
    ) -> ThreadedRuntime {
        let mut senders = Vec::with_capacity(partitions.len());
        let mut handles = Vec::with_capacity(partitions.len());
        for (shard, users) in partitions.into_iter().enumerate() {
            let (tx, rx) = channel::bounded(options.queue_capacity);
            let state = ShardState::new(shard, config, options.retrieval, users);
            let reply = reply_tx.clone();
            senders.push(tx);
            handles.push(std::thread::spawn(move || threaded_worker(shard, state, rx, reply)));
        }
        ThreadedRuntime { senders, handles, panicked: false }
    }

    fn post(&mut self, shard: usize, msg: ShardMsg) -> Result<(), ()> {
        let msg = match self.senders[shard].try_send(msg) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(m)) => {
                note_backpressure(shard);
                m
            }
            Err(TrySendError::Disconnected(m)) => m,
        };
        self.senders[shard].send(msg).map_err(|_| ())
    }

    fn shutdown(&mut self) {
        // Dropping the senders disconnects every FIFO; each worker drains
        // what is already queued, then its `recv` errors and it exits.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                self.panicked = true;
            }
        }
    }
}

/// One shard thread: applies the FIFO under a panic guard. A panic
/// anywhere in message handling sends [`ShardReply::Aborted`] before the
/// thread dies, so the engine's snapshot barrier fails fast instead of
/// waiting forever for a reply from a dead shard while its siblings keep
/// the reply channel open. The panic is re-raised afterwards so the
/// shutdown join still observes it.
fn threaded_worker(
    shard: usize,
    state: ShardState,
    rx: Receiver<ShardMsg>,
    reply: Sender<ShardReply>,
) {
    let reply_guard = reply.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut state = state;
        let mut replies = Vec::new();
        while let Ok(msg) = rx.recv() {
            state.apply(msg, &mut replies);
            for r in replies.drain(..) {
                let _ = reply.send(r);
            }
        }
    }));
    if let Err(payload) = result {
        let detail = panic_detail(payload.as_ref());
        let _ = reply_guard.send(ShardReply::Aborted { shard, detail });
        drop(reply_guard);
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// WorkSteal: per-shard mailboxes multiplexed over N worker threads.
// ---------------------------------------------------------------------------

/// One logical shard's mailbox. Invariant: `queue` non-empty ⇒ `scheduled`
/// — every message posted into an unscheduled mailbox enqueues exactly one
/// run token, and only the worker that empties the queue clears the flag,
/// so a runnable shard always has a live token and a shard is never run by
/// two workers at once.
struct Mailbox {
    queue: VecDeque<ShardMsg>,
    scheduled: bool,
    /// Worker that last ran this shard (`usize::MAX` before the first
    /// run); a different worker picking the token up counts as a steal.
    last_worker: usize,
}

struct ShardCell {
    mailbox: Mutex<Mailbox>,
    /// Notified when a drain frees capacity in a previously-full mailbox
    /// and when the mailbox goes idle (empty and descheduled); the waiters
    /// are the backpressured producer and shutdown's quiescence loop.
    vacant: Condvar,
    /// The shard's user partition. Only the token-holding worker locks it,
    /// so the lock is uncontended; it exists to move the state between
    /// workers safely as the shard migrates.
    state: Mutex<ShardState>,
}

struct WsShared {
    cells: Vec<ShardCell>,
    capacity: usize,
    /// Set by a panicking worker before it dies; every cooperative wait
    /// re-checks it so the producer and shutdown fail fast instead of
    /// waiting on a shard whose run token died with the worker.
    aborted: AtomicBool,
}

pub(crate) struct WorkStealRuntime {
    shared: Arc<WsShared>,
    injector_tx: Sender<Task>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    panicked: bool,
}

impl WorkStealRuntime {
    fn start(
        config: EngineConfig,
        options: RuntimeOptions,
        partitions: Vec<BTreeMap<UserId, UserState>>,
        reply_tx: &Sender<ShardReply>,
    ) -> WorkStealRuntime {
        let cells: Vec<ShardCell> = partitions
            .into_iter()
            .enumerate()
            .map(|(shard, users)| ShardCell {
                mailbox: Mutex::new(Mailbox {
                    queue: VecDeque::new(),
                    scheduled: false,
                    last_worker: usize::MAX,
                }),
                vacant: Condvar::new(),
                state: Mutex::new(ShardState::new(shard, config, options.retrieval, users)),
            })
            .collect();
        let shared = Arc::new(WsShared {
            cells,
            capacity: options.queue_capacity,
            aborted: AtomicBool::new(false),
        });
        let (injector_tx, injector_rx) = channel::unbounded();
        let handles = (0..options.workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let tasks = injector_rx.clone();
                let injector = injector_tx.clone();
                let reply = reply_tx.clone();
                std::thread::spawn(move || ws_worker(worker, &shared, &tasks, &injector, &reply))
            })
            .collect();
        WorkStealRuntime { shared, injector_tx, handles, workers: options.workers, panicked: false }
    }

    fn post(&mut self, shard: usize, msg: ShardMsg) -> Result<(), ()> {
        if self.handles.is_empty() {
            return Err(()); // already shut down
        }
        let cell = &self.shared.cells[shard];
        let schedule = {
            let mut mb = cell.mailbox.lock().unwrap_or_else(PoisonError::into_inner);
            if mb.queue.len() >= self.shared.capacity {
                note_backpressure(shard);
                // Cooperative wait for a worker to drain room. The timeout
                // tick only bounds lost wakeups and abort latency; a full
                // queue implies a live run token, so progress is a worker
                // away unless the runtime aborted.
                while mb.queue.len() >= self.shared.capacity {
                    if self.shared.aborted.load(Ordering::Acquire) {
                        return Err(());
                    }
                    let (guard, _timeout) = cell
                        .vacant
                        .wait_timeout(mb, WAIT_TICK)
                        .unwrap_or_else(PoisonError::into_inner);
                    mb = guard;
                }
            }
            mb.queue.push_back(msg);
            !std::mem::replace(&mut mb.scheduled, true)
        };
        if schedule {
            self.injector_tx.send(Task::Run(shard)).map_err(|_| ())?;
        }
        Ok(())
    }

    fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // Quiesce: wait until every mailbox is empty and descheduled (all
        // run tokens retired), so no worker is mid-shard when the Stop
        // tokens go out. An abort breaks the wait — a dead worker's shard
        // may never drain.
        for cell in &self.shared.cells {
            let mut mb = cell.mailbox.lock().unwrap_or_else(PoisonError::into_inner);
            while (!mb.queue.is_empty() || mb.scheduled)
                && !self.shared.aborted.load(Ordering::Acquire)
            {
                let (guard, _timeout) =
                    cell.vacant.wait_timeout(mb, WAIT_TICK).unwrap_or_else(PoisonError::into_inner);
                mb = guard;
            }
        }
        for _ in 0..self.handles.len() {
            let _ = self.injector_tx.send(Task::Stop);
        }
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                self.panicked = true;
            }
        }
    }
}

/// One work-steal worker: pull run tokens off the injector, drain the
/// named shard, park when nothing is runnable. The per-token panic guard
/// mirrors [`threaded_worker`]'s: record the abort, wake every waiter,
/// send [`ShardReply::Aborted`], re-raise.
fn ws_worker(
    worker: usize,
    shared: &WsShared,
    tasks: &Receiver<Task>,
    injector: &Sender<Task>,
    reply: &Sender<ShardReply>,
) {
    loop {
        let task = match tasks.try_recv() {
            Ok(task) => task,
            Err(TryRecvError::Empty) => {
                pmr_obs::counter_add("serve.runtime.parks", 1);
                match tasks.recv() {
                    Ok(task) => task,
                    Err(_) => return,
                }
            }
            Err(TryRecvError::Disconnected) => return,
        };
        let shard = match task {
            Task::Run(shard) => shard,
            Task::Stop => return,
        };
        let turn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_shard(worker, shard, shared, injector, reply);
        }));
        if let Err(payload) = turn {
            let detail = panic_detail(payload.as_ref());
            record_ws_abort(shared, reply, shard, detail);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Drain `shard`'s mailbox in batches while holding its run token: apply
/// up to [`BATCH`] messages per mailbox lock, release the token when the
/// queue empties, or re-queue the shard after [`MAX_TURNS`] batches — the
/// cooperative yield point between ingest, query and snapshot work.
fn run_shard(
    worker: usize,
    shard: usize,
    shared: &WsShared,
    injector: &Sender<Task>,
    reply: &Sender<ShardReply>,
) {
    let cell = &shared.cells[shard];
    let mut replies: Vec<ShardReply> = Vec::new();
    for _turn in 0..MAX_TURNS {
        let (batch, was_full) = {
            let mut mb = cell.mailbox.lock().unwrap_or_else(PoisonError::into_inner);
            if mb.last_worker != worker {
                if mb.last_worker != usize::MAX {
                    pmr_obs::counter_add("serve.runtime.steals", 1);
                }
                mb.last_worker = worker;
            }
            let was_full = mb.queue.len() >= shared.capacity;
            let n = mb.queue.len().min(BATCH);
            let batch: Vec<ShardMsg> = mb.queue.drain(..n).collect();
            (batch, was_full)
        };
        if was_full {
            // The producer may be parked on the full mailbox; the drain
            // above freed room.
            cell.vacant.notify_all();
        }
        {
            let mut state = cell.state.lock().unwrap_or_else(PoisonError::into_inner);
            for msg in batch {
                state.apply(msg, &mut replies);
            }
        }
        for r in replies.drain(..) {
            let _ = reply.send(r);
        }
        let idle = {
            let mut mb = cell.mailbox.lock().unwrap_or_else(PoisonError::into_inner);
            if mb.queue.is_empty() {
                mb.scheduled = false;
                true
            } else {
                false
            }
        };
        if idle {
            // Shutdown's quiescence loop watches for empty + descheduled.
            cell.vacant.notify_all();
            return;
        }
    }
    pmr_obs::counter_add("serve.runtime.yields", 1);
    let _ = injector.send(Task::Run(shard));
}

/// A worker is dying: set the abort flag, tell the engine, and wake every
/// cooperative waiter so nothing stays parked on a shard whose run token
/// just died.
fn record_ws_abort(shared: &WsShared, reply: &Sender<ShardReply>, shard: usize, detail: String) {
    shared.aborted.store(true, Ordering::Release);
    let _ = reply.send(ShardReply::Aborted { shard, detail });
    for cell in &shared.cells {
        // Lock-then-notify: serializes with a waiter between its abort
        // check and its wait, so the wakeup cannot be lost (the wait tick
        // bounds the cost even if it were).
        drop(cell.mailbox.lock().unwrap_or_else(PoisonError::into_inner));
        cell.vacant.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_buckets_are_log4() {
        assert_eq!(shard_bucket(0), 0);
        assert_eq!(shard_bucket(1), 1);
        assert_eq!(shard_bucket(3), 1);
        assert_eq!(shard_bucket(4), 2);
        assert_eq!(shard_bucket(15), 2);
        assert_eq!(shard_bucket(16), 3);
        assert_eq!(shard_bucket(63), 3);
        assert_eq!(shard_bucket(64), 4);
        assert_eq!(shard_bucket(usize::MAX), SHARD_BUCKETS.len() - 1);
    }
}
