//! The serving engine: shard lifecycle, ingest fan-out, query collection
//! and snapshot orchestration.
//!
//! The engine is single-writer: one thread (the replay driver, or any
//! caller) pushes candidates, observations and queries; the scheduler
//! behind [`crate::runtime::ShardRuntime`] applies them on its worker
//! threads. Ingest queues are **bounded** — when a shard falls behind, the
//! writer blocks on that shard's queue after bumping the
//! `serve.backpressure` counters, so memory stays flat under any load
//! imbalance instead of buffering the whole stream.
//!
//! Query answers arrive on a shared reply channel in nondeterministic
//! cross-shard order; the engine re-sequences them by query id (assigned
//! at issue time on the single writer) before anything user-visible sees
//! them, which is why shard scheduling never leaks into output order.

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{self, Receiver};
use pmr_core::{PmrError, PmrResult};
use pmr_sim::{Timestamp, TweetId, UserId};
use pmr_topics::TopicBackground;

use crate::config::{EngineConfig, RuntimeOptions, Scheduler};
use crate::runtime::ShardRuntime;
use crate::shard::{Recommendation, ShardMsg, ShardReply, TweetFeatures, UserState};
use crate::snapshot::{EngineSnapshot, SnapshotHeader, SNAPSHOT_VERSION};

/// A running sharded serving engine.
pub struct Engine {
    config: EngineConfig,
    runtime: ShardRuntime,
    reply_rx: Receiver<ShardReply>,
    next_query: u64,
    answered: BTreeMap<u64, Recommendation>,
    /// Query ids answered since the last [`Engine::poll_answered`] call.
    /// Filled by every internal drain so opportunistic draining (e.g. in
    /// [`Engine::query`]) never swallows a completion notification.
    newly_answered: Vec<u64>,
    /// Set when a shard worker dies mid-stream (its [`ShardReply::Aborted`]
    /// or a rejected post); fails the next snapshot barrier.
    aborted: Option<String>,
    /// The topic-background epoch last broadcast via
    /// [`Engine::set_background`]; recorded in snapshot headers so the
    /// resuming side can re-derive the same background. Stays 0 for the
    /// gram families.
    epoch: u64,
}

impl Engine {
    /// Spawn an empty engine.
    pub fn start(config: EngineConfig, runtime: RuntimeOptions) -> Engine {
        Engine::spawn(config, runtime, Vec::new(), 0)
    }

    /// Spawn an engine from a snapshot, under any shard layout.
    ///
    /// `resolve` maps a window entry's tweet id back to its features
    /// (recomputed from the corpus — snapshots store references, not
    /// vectors). Entries whose features cannot be resolved are dropped.
    pub fn resume(
        snapshot: &EngineSnapshot,
        runtime: RuntimeOptions,
        resolve: &dyn Fn(TweetId) -> Option<Arc<TweetFeatures>>,
    ) -> PmrResult<Engine> {
        if snapshot.header.version != SNAPSHOT_VERSION {
            return Err(PmrError::Serialize {
                detail: format!(
                    "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                    snapshot.header.version
                ),
            });
        }
        let restored: Vec<(UserId, UserState)> = snapshot
            .users
            .iter()
            .map(|u| (UserId(u.user), UserState::restore(u, resolve)))
            .collect();
        let mut engine =
            Engine::spawn(snapshot.header.config, runtime, restored, snapshot.header.queries);
        // The header's epoch survives the round trip even before the driver
        // re-broadcasts the background (which also re-sets it).
        engine.epoch = snapshot.header.epoch;
        Ok(engine)
    }

    fn spawn(
        config: EngineConfig,
        runtime: RuntimeOptions,
        users: Vec<(UserId, UserState)>,
        next_query: u64,
    ) -> Engine {
        let runtime = runtime.normalized();
        pmr_obs::gauge_set("serve.shards", runtime.shards as f64);
        pmr_obs::gauge_set(
            "serve.workers",
            match runtime.scheduler {
                Scheduler::Threaded => runtime.shards,
                Scheduler::WorkSteal => runtime.workers,
            } as f64,
        );
        pmr_obs::gauge_set("serve.queue_capacity", runtime.queue_capacity as f64);
        let mut partitions: Vec<BTreeMap<UserId, UserState>> =
            (0..runtime.shards).map(|_| BTreeMap::new()).collect();
        for (user, state) in users {
            partitions[user.0 as usize % runtime.shards].insert(user, state);
        }
        let (reply_tx, reply_rx) = channel::unbounded();
        let runtime = ShardRuntime::start(config, runtime, partitions, &reply_tx);
        Engine {
            config,
            runtime,
            reply_rx,
            next_query,
            answered: BTreeMap::new(),
            newly_answered: Vec::new(),
            aborted: None,
            epoch: 0,
        }
    }

    /// Broadcast a (re)trained topic background to every shard and record
    /// its epoch for snapshot headers. Called by the driver at fixed stream
    /// positions (before the first event, then on the refresh cadence), so
    /// the swap lands at the same point of every shard's FIFO sequence
    /// regardless of layout.
    pub fn set_background(&mut self, background: Arc<TopicBackground>) {
        self.epoch = background.epoch();
        for shard in 0..self.runtime.shards() {
            self.post(shard, ShardMsg::Epoch(Arc::clone(&background)));
        }
    }

    /// The engine's semantic configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of logical shards.
    pub fn shards(&self) -> usize {
        self.runtime.shards()
    }

    fn shard_of(&self, user: UserId) -> usize {
        user.0 as usize % self.runtime.shards()
    }

    /// Deliver to a shard, blocking (with a backpressure count) when its
    /// queue is full. A dead shard is recorded instead of panicking the
    /// writer; the next snapshot barrier surfaces it as a typed error.
    fn post(&mut self, shard: usize, msg: ShardMsg) {
        if self.runtime.post(shard, msg).is_err() {
            self.record_abort(shard);
        }
    }

    /// A shard rejected a post while the stream is still open: a worker
    /// died. Drain the reply queue for its [`ShardReply::Aborted`] (the
    /// panic guard sends one, but the rejection can be observed first),
    /// falling back to a generic message.
    fn record_abort(&mut self, shard: usize) {
        pmr_obs::counter_add("serve.shard_aborts", 1);
        self.drain_ready();
        if self.aborted.is_none() {
            self.aborted =
                Some(format!("shard {shard} worker exited while the stream is still open"));
        }
    }

    /// A tweet entered `user`'s feed: register it as a candidate.
    pub fn post_candidate(
        &mut self,
        user: UserId,
        tweet: TweetId,
        at: Timestamp,
        features: &Arc<TweetFeatures>,
    ) {
        pmr_obs::counter_add("serve.candidates", 1);
        let msg = ShardMsg::Candidate { user, tweet, at, features: Arc::clone(features) };
        self.post(self.shard_of(user), msg);
    }

    /// `user` retweeted: fold the original's features into their model.
    pub fn observe(&mut self, user: UserId, features: &Arc<TweetFeatures>) {
        pmr_obs::counter_add("serve.observes", 1);
        let msg = ShardMsg::Observe { user, features: Arc::clone(features) };
        self.post(self.shard_of(user), msg);
    }

    /// Ask for `user`'s top-`k` as of `now`. Returns the query id; the
    /// answer is re-sequenced into [`Engine::finish`]'s output.
    pub fn query(&mut self, user: UserId, k: usize, now: Timestamp) -> u64 {
        let id = self.next_query;
        self.next_query += 1;
        pmr_obs::counter_add("serve.queries", 1);
        self.post(self.shard_of(user), ShardMsg::Query { id, user, k, now });
        // Opportunistically drain answers so the reply queue stays small
        // on long replays.
        self.drain_ready();
        id
    }

    /// Queries issued so far (= the next query id).
    pub fn queries_issued(&self) -> u64 {
        self.next_query
    }

    /// Drain any ready replies without blocking and return the ids of all
    /// queries answered since the last call, ascending — including ones
    /// collected by the engine's own opportunistic drains in the meantime.
    /// Load harnesses use this to timestamp query completion (sojourn
    /// time) without waiting for [`Engine::finish`]; replies arrive in
    /// nondeterministic cross-shard order, but the ids are issue-time
    /// sequence numbers.
    pub fn poll_answered(&mut self) -> Vec<u64> {
        self.drain_ready();
        let mut ids = std::mem::take(&mut self.newly_answered);
        ids.sort_unstable();
        ids
    }

    fn drain_ready(&mut self) {
        while let Ok(reply) = self.reply_rx.try_recv() {
            // Snapshot parts cannot appear here: `snapshot` collects all of
            // them before returning, so outside that barrier the reply
            // queue only ever carries recommendations (or an abort).
            let _ = self.stash(reply);
        }
    }

    /// File a recommendation under its query id; pass snapshot parts back
    /// to the caller; record aborts.
    fn stash(&mut self, reply: ShardReply) -> Option<Vec<crate::snapshot::UserSnapshot>> {
        match reply {
            ShardReply::Recommendation(rec) => {
                self.newly_answered.push(rec.query);
                self.answered.insert(rec.query, rec);
                None
            }
            ShardReply::SnapshotPart { users } => Some(users),
            ShardReply::Aborted { shard, detail } => {
                if self.aborted.is_none() {
                    self.aborted = Some(format!("shard {shard} worker panicked: {detail}"));
                }
                None
            }
        }
    }

    /// Pause-and-copy the complete engine state at the current stream
    /// position (`events` is supplied by the driver, which owns the event
    /// cursor). Processing resumes immediately afterwards; the engine
    /// remains usable.
    ///
    /// Every message sent before this call is reflected in the snapshot:
    /// the snapshot marker traverses the same FIFO queues, so each shard
    /// answers only after applying everything ahead of it.
    ///
    /// Errors instead of waiting forever when a shard worker has died: a
    /// dead shard never answers the barrier, and its live siblings keep
    /// the reply channel open, so a plain `recv()` loop would hang. The
    /// worker's panic guard turns the death into a [`ShardReply::Aborted`]
    /// the loop below observes.
    pub fn snapshot(&mut self, events: u64) -> PmrResult<EngineSnapshot> {
        let shards = self.runtime.shards();
        for shard in 0..shards {
            self.post(shard, ShardMsg::Snapshot);
        }
        let mut parts: Vec<Vec<crate::snapshot::UserSnapshot>> = Vec::new();
        while parts.len() < shards && self.aborted.is_none() {
            match self.reply_rx.recv() {
                Ok(reply) => {
                    if let Some(users) = self.stash(reply) {
                        parts.push(users);
                    }
                }
                Err(_) => break,
            }
        }
        if parts.len() != shards {
            let detail = self.aborted.clone().unwrap_or_else(|| {
                "shard workers exited before answering the snapshot barrier".to_string()
            });
            return Err(PmrError::EngineAborted { detail });
        }
        let mut users: Vec<crate::snapshot::UserSnapshot> = parts.into_iter().flatten().collect();
        users.sort_by_key(|u| u.user);
        Ok(EngineSnapshot {
            header: SnapshotHeader {
                version: SNAPSHOT_VERSION,
                config: self.config,
                events,
                queries: self.next_query,
                epoch: self.epoch,
                users: users.len() as u64,
            },
            users,
        })
    }

    /// Close the stream, drain every shard, and stop and join the worker
    /// threads. Idempotent — a second call (or the [`Drop`] after an
    /// explicit call) is a no-op — and deliberately panic-free even after
    /// an abort: a panicked worker is recorded and surfaced through the
    /// sticky `aborted` state, while [`Engine::finish`] remains the path
    /// that re-raises it.
    pub fn shutdown(&mut self) {
        self.runtime.shutdown();
        self.drain_ready();
        if self.runtime.panicked() && self.aborted.is_none() {
            self.aborted = Some("a shard worker panicked".to_string());
        }
    }

    /// Close the stream, wait for every shard to drain, and return all
    /// recommendations in query-id order.
    ///
    /// Panics if a shard worker panicked — callers that need a panic-free
    /// teardown after an abort use [`Engine::shutdown`] (or just drop the
    /// engine) instead.
    pub fn finish(mut self) -> Vec<Recommendation> {
        self.shutdown();
        assert!(!self.runtime.panicked(), "a shard worker panicked");
        std::mem::take(&mut self.answered).into_values().collect()
    }
}

impl Drop for Engine {
    /// Join the worker threads even when the engine is dropped without
    /// [`Engine::finish`] — including after an [`PmrError::EngineAborted`]
    /// barrier failure. Never panics: a double panic during unwinding
    /// would abort the process.
    fn drop(&mut self) {
        self.runtime.shutdown();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("shards", &self.runtime.shards())
            .field("next_query", &self.next_query)
            .field("answered", &self.answered.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeModel;
    use pmr_bag::{BagSimilarity, SparseVector, WeightingScheme};

    fn bag_config(window: usize) -> EngineConfig {
        EngineConfig {
            model: ServeModel::Bag {
                weighting: WeightingScheme::TF,
                similarity: BagSimilarity::Cosine,
                char_grams: false,
                n: 1,
                decay: 1.0,
            },
            window,
        }
    }

    fn unit(dim: u32) -> Arc<TweetFeatures> {
        Arc::new(TweetFeatures::Bag(SparseVector::from_pairs(vec![(dim, 1.0)])))
    }

    #[test]
    fn equal_scores_break_ties_by_ascending_tweet_id() {
        let mut engine = Engine::start(
            bag_config(8),
            RuntimeOptions { shards: 1, queue_capacity: 4, ..RuntimeOptions::default() },
        );
        let user = UserId(1);
        let features = unit(0);
        engine.observe(user, &features);
        // Identical vectors → identical scores; posting order 9, 2, 5 must
        // not leak into the answer.
        for tweet in [9u32, 2, 5] {
            engine.post_candidate(user, TweetId(tweet), 10, &features);
        }
        engine.query(user, 3, 10);
        let recs = engine.finish();
        assert_eq!(recs.len(), 1);
        let ids: Vec<u32> = recs[0].items.iter().map(|i| i.tweet).collect();
        assert_eq!(ids, vec![2, 5, 9], "ties must order by tweet id");
        assert!(recs[0].items.iter().all(|i| (i.score - 1.0).abs() < 1e-9));
    }

    #[test]
    fn queries_respect_the_time_horizon_and_k() {
        let mut engine = Engine::start(
            bag_config(8),
            RuntimeOptions { shards: 2, queue_capacity: 4, ..RuntimeOptions::default() },
        );
        let user = UserId(3);
        let features = unit(1);
        engine.observe(user, &features);
        engine.post_candidate(user, TweetId(1), 5, &features);
        engine.post_candidate(user, TweetId(2), 15, &features);
        // now = 10: the tweet from t=15 is in the window but not yet
        // eligible.
        engine.query(user, 10, 10);
        let recs = engine.finish();
        assert_eq!(recs[0].items.len(), 1);
        assert_eq!(recs[0].items[0].tweet, 1);
    }

    #[test]
    fn window_evicts_oldest_and_dedups_repeat_exposures() {
        let mut engine = Engine::start(
            bag_config(2),
            RuntimeOptions { shards: 1, queue_capacity: 4, ..RuntimeOptions::default() },
        );
        let user = UserId(5);
        let features = unit(2);
        engine.observe(user, &features);
        engine.post_candidate(user, TweetId(1), 1, &features);
        engine.post_candidate(user, TweetId(1), 2, &features); // repeat exposure
        engine.post_candidate(user, TweetId(2), 3, &features);
        engine.post_candidate(user, TweetId(3), 4, &features); // evicts tweet 1
        engine.query(user, 10, 100);
        let recs = engine.finish();
        let ids: Vec<u32> = recs[0].items.iter().map(|i| i.tweet).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn snapshot_errors_instead_of_hanging_when_a_shard_dies() {
        let mut engine = Engine::start(
            bag_config(4),
            RuntimeOptions { shards: 2, queue_capacity: 4, ..RuntimeOptions::default() },
        );
        engine.observe(UserId(0), &unit(0)); // shard 0
        engine.observe(UserId(1), &unit(0)); // shard 1
                                             // Kill shard 0; shard 1 stays alive, so the reply channel stays
                                             // open and a bare `recv()` barrier would block forever.
        engine.post(0, ShardMsg::Poison);
        let err = engine.snapshot(2).expect_err("the barrier must fail, not hang");
        assert!(err.to_string().contains("shard 0"), "the error names the dead shard: {err}");
        // The engine stays failed: a second barrier errors too.
        assert!(engine.snapshot(2).is_err());
        // Don't `finish()`: its assert is *supposed* to propagate the
        // worker panic. Dropping the engine joins the workers panic-free.
    }

    #[test]
    fn shutdown_is_idempotent() {
        for scheduler in [Scheduler::Threaded, Scheduler::WorkSteal] {
            let mut engine = Engine::start(
                bag_config(8),
                RuntimeOptions {
                    shards: 3,
                    workers: 2,
                    queue_capacity: 4,
                    scheduler,
                    ..RuntimeOptions::default()
                },
            );
            let user = UserId(1);
            let features = unit(0);
            engine.observe(user, &features);
            engine.post_candidate(user, TweetId(7), 5, &features);
            engine.query(user, 3, 10);
            engine.shutdown();
            engine.shutdown(); // double shutdown must be a no-op
            let recs = engine.finish(); // finish after shutdown is fine too
            assert_eq!(recs.len(), 1, "{} loses answers on shutdown", scheduler.name());
            assert_eq!(recs[0].items.len(), 1);
        }
    }

    #[test]
    fn shutdown_after_abort_joins_without_panicking() {
        for scheduler in [Scheduler::Threaded, Scheduler::WorkSteal] {
            let mut engine = Engine::start(
                bag_config(4),
                RuntimeOptions {
                    shards: 2,
                    workers: 2,
                    queue_capacity: 4,
                    scheduler,
                    ..RuntimeOptions::default()
                },
            );
            engine.observe(UserId(0), &unit(0));
            engine.observe(UserId(1), &unit(0));
            engine.post(0, ShardMsg::Poison);
            assert!(engine.snapshot(2).is_err(), "{}: barrier must fail", scheduler.name());
            // The regression: shutdown (and the drop that follows) must
            // join the dead worker without re-raising its panic, and stay
            // idempotent after the abort.
            engine.shutdown();
            engine.shutdown();
        }
    }

    #[test]
    fn unknown_users_get_empty_recommendations() {
        let mut engine = Engine::start(
            bag_config(4),
            RuntimeOptions { shards: 1, queue_capacity: 4, ..RuntimeOptions::default() },
        );
        engine.query(UserId(99), 5, 10);
        let recs = engine.finish();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].items.is_empty());
    }
}
