//! Pooling schemes for sparse short texts (§3.2, "Using Topic Models").
//!
//! Topic models starve on 10-token documents (challenge C1). The paper
//! mitigates this with three pooling schemes applied to the *training* data:
//!
//! * **NP** — no pooling: every tweet is its own document;
//! * **UP** — user pooling: all tweets by the same author form one
//!   pseudo-document;
//! * **HP** — hashtag pooling: all tweets sharing a hashtag form one
//!   pseudo-document; tweets without any hashtag stay individual documents.
//!
//! Pooling only changes what the model is *trained* on; inference for
//! individual tweets (user-model construction and testing) always runs on
//! the un-pooled tweet.

use serde::{Deserialize, Serialize};

/// The three pooling schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PoolingScheme {
    /// No pooling.
    NP,
    /// User pooling.
    UP,
    /// Hashtag pooling.
    HP,
}

impl PoolingScheme {
    /// All schemes, in the paper's order.
    pub const ALL: [PoolingScheme; 3] = [PoolingScheme::NP, PoolingScheme::UP, PoolingScheme::HP];

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PoolingScheme::NP => "NP",
            PoolingScheme::UP => "UP",
            PoolingScheme::HP => "HP",
        }
    }
}

/// A tweet prepared for pooling: its tokens plus the metadata pooling keys.
#[derive(Debug, Clone)]
pub struct PoolInput<'a> {
    /// Tokens of the tweet (already normalized / stop-filtered).
    pub tokens: &'a [String],
    /// A stable author key (pools UP).
    pub author: u32,
    /// Hashtag tokens of the tweet (pool HP); empty if none.
    pub hashtags: &'a [String],
}

/// Apply a pooling scheme: returns the pseudo-documents (token lists).
///
/// For HP, a tweet with multiple hashtags joins the pool of its *first*
/// hashtag (the paper does not specify multi-tag handling; first-tag
/// assignment keeps every tweet in exactly one pseudo-document, which
/// preserves corpus token counts).
pub fn pool(scheme: PoolingScheme, tweets: &[PoolInput<'_>]) -> Vec<Vec<String>> {
    pool_indexed(scheme, tweets).into_iter().map(|(doc, _)| doc).collect()
}

/// Like [`pool`], but also returns, per pseudo-document, the indices of the
/// input tweets it was assembled from (used by the Labeled-LDA labeler to
/// union the labels of a pool's constituents).
pub fn pool_indexed(
    scheme: PoolingScheme,
    tweets: &[PoolInput<'_>],
) -> Vec<(Vec<String>, Vec<usize>)> {
    match scheme {
        PoolingScheme::NP => {
            tweets.iter().enumerate().map(|(i, t)| (t.tokens.to_vec(), vec![i])).collect()
        }
        PoolingScheme::UP => {
            let mut pools: std::collections::BTreeMap<u32, (Vec<String>, Vec<usize>)> =
                std::collections::BTreeMap::new();
            for (i, t) in tweets.iter().enumerate() {
                let entry = pools.entry(t.author).or_default();
                entry.0.extend(t.tokens.iter().cloned());
                entry.1.push(i);
            }
            pools.into_values().collect()
        }
        PoolingScheme::HP => {
            let mut pools: std::collections::BTreeMap<String, (Vec<String>, Vec<usize>)> =
                std::collections::BTreeMap::new();
            let mut singles: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
            for (i, t) in tweets.iter().enumerate() {
                match t.hashtags.first() {
                    Some(tag) => {
                        let entry = pools.entry(tag.clone()).or_default();
                        entry.0.extend(t.tokens.iter().cloned());
                        entry.1.push(i);
                    }
                    None => singles.push((t.tokens.to_vec(), vec![i])),
                }
            }
            pools.into_values().chain(singles).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn np_keeps_tweets_individual() {
        let t1 = toks("a b");
        let t2 = toks("c");
        let tweets = vec![
            PoolInput { tokens: &t1, author: 1, hashtags: &[] },
            PoolInput { tokens: &t2, author: 1, hashtags: &[] },
        ];
        let docs = pool(PoolingScheme::NP, &tweets);
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn up_merges_by_author() {
        let t1 = toks("a b");
        let t2 = toks("c");
        let t3 = toks("d");
        let tweets = vec![
            PoolInput { tokens: &t1, author: 1, hashtags: &[] },
            PoolInput { tokens: &t2, author: 2, hashtags: &[] },
            PoolInput { tokens: &t3, author: 1, hashtags: &[] },
        ];
        let docs = pool(PoolingScheme::UP, &tweets);
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().any(|d| d == &toks("a b d")));
    }

    #[test]
    fn hp_merges_by_hashtag_and_keeps_untagged_single() {
        let t1 = toks("a");
        let t2 = toks("b");
        let t3 = toks("c");
        let h1 = toks("#x");
        let h2 = toks("#x #y");
        let tweets = vec![
            PoolInput { tokens: &t1, author: 1, hashtags: &h1 },
            PoolInput { tokens: &t2, author: 2, hashtags: &h2 },
            PoolInput { tokens: &t3, author: 3, hashtags: &[] },
        ];
        let docs = pool(PoolingScheme::HP, &tweets);
        assert_eq!(docs.len(), 2);
        assert!(docs.contains(&toks("a b")), "both #x tweets pool together");
        assert!(docs.contains(&toks("c")), "untagged tweet stays individual");
    }

    #[test]
    fn pool_indexed_members_partition_the_input() {
        let t1 = toks("a");
        let t2 = toks("b");
        let t3 = toks("c");
        let h = toks("#x");
        let tweets = vec![
            PoolInput { tokens: &t1, author: 1, hashtags: &h },
            PoolInput { tokens: &t2, author: 1, hashtags: &[] },
            PoolInput { tokens: &t3, author: 2, hashtags: &h },
        ];
        for scheme in PoolingScheme::ALL {
            let pooled = pool_indexed(scheme, &tweets);
            let mut seen: Vec<usize> = pooled.iter().flat_map(|(_, m)| m.iter().copied()).collect();
            seen.sort();
            assert_eq!(seen, vec![0, 1, 2], "{}", scheme.name());
        }
    }

    #[test]
    fn pooling_preserves_total_tokens() {
        let t1 = toks("a b");
        let t2 = toks("c d e");
        let h = toks("#x");
        let tweets = vec![
            PoolInput { tokens: &t1, author: 1, hashtags: &h },
            PoolInput { tokens: &t2, author: 1, hashtags: &[] },
        ];
        for scheme in PoolingScheme::ALL {
            let total: usize = pool(scheme, &tweets).iter().map(Vec::len).sum();
            assert_eq!(total, 5, "{}", scheme.name());
        }
    }
}
