//! Dirichlet Multinomial Mixture model (Nigam et al. 2000; the GSDMM
//! sampler of Yin & Wang 2014).
//!
//! DMM assigns **one** topic to an entire document — a strong assumption
//! that often fits tweets. The paper cites it (§3.2, "Other models") as
//! *incompatible* with ranking-based recommendation: "all tweets with the
//! same inferred topic are equally similar with the user model", producing
//! mass ties in the ranking. It is implemented here so that this exclusion
//! argument is executable — see the `ranking_ties` test — and because a
//! one-topic-per-tweet clusterer is independently useful.
//!
//! The collapsed Gibbs sampler reassigns whole documents:
//!
//! ```text
//! P(z_d = k | rest) ∝ (m_k + α) ·
//!     Π_w Π_{j<c_dw} (n_kw + β + j) / Π_{i<N_d} (n_k + Vβ + i)
//! ```
//!
//! where `m_k` counts documents in cluster `k`, `n_kw` word counts and
//! `n_k` total tokens of cluster `k` (document `d` excluded everywhere).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::model::{normalize, sample_discrete, uniform, TopicModel};

/// DMM hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DmmConfig {
    /// Number of mixture components (an upper bound; GSDMM empties
    /// superfluous clusters).
    pub topics: usize,
    /// Dirichlet prior on the cluster proportions.
    pub alpha: f64,
    /// Dirichlet prior on cluster–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the documents.
    pub iterations: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for DmmConfig {
    fn default() -> Self {
        DmmConfig { topics: 40, alpha: 0.1, beta: 0.1, iterations: 30, seed: 42 }
    }
}

/// A trained DMM model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DmmModel {
    /// `phi[k][w] = P(w | z=k)`.
    phi: Vec<Vec<f32>>,
    /// Cluster proportions.
    weights: Vec<f32>,
    /// Hard cluster assignment of each training document.
    assignments: Vec<usize>,
}

impl DmmModel {
    /// Train with the GSDMM collapsed Gibbs sampler.
    pub fn train(cfg: &DmmConfig, corpus: &TopicCorpus) -> Self {
        assert!(cfg.topics >= 1);
        let k = cfg.topics;
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut m_k = vec![0u32; k];
        let mut n_kw = vec![vec![0u32; v]; k];
        let mut n_k = vec![0u32; k];
        let mut z: Vec<usize> = corpus
            .docs
            .iter()
            .map(|doc| {
                let t = rng.gen_range(0..k);
                m_k[t] += 1;
                for &w in doc {
                    n_kw[t][w as usize] += 1;
                }
                n_k[t] += doc.len() as u32;
                t
            })
            .collect();
        let vb = v as f64 * cfg.beta;
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.dmm");
            for (d, doc) in corpus.docs.iter().enumerate() {
                let old = z[d];
                m_k[old] -= 1;
                for &w in doc {
                    n_kw[old][w as usize] -= 1;
                }
                n_k[old] -= doc.len() as u32;
                // Per-document word counts.
                let mut counts: std::collections::HashMap<TermId, u32> =
                    std::collections::HashMap::new();
                for &w in doc {
                    *counts.entry(w).or_insert(0) += 1;
                }
                // Log-space cluster scores.
                let scores: Vec<f64> = (0..k)
                    .map(|t| {
                        let mut s = (m_k[t] as f64 + cfg.alpha).ln();
                        for (&w, &c) in &counts {
                            for j in 0..c {
                                s += (n_kw[t][w as usize] as f64 + cfg.beta + j as f64).ln();
                            }
                        }
                        for i in 0..doc.len() {
                            s -= (n_k[t] as f64 + vb + i as f64).ln();
                        }
                        s
                    })
                    .collect();
                let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
                let new = sample_discrete(&mut rng, &weights);
                z[d] = new;
                m_k[new] += 1;
                for &w in doc {
                    n_kw[new][w as usize] += 1;
                }
                n_k[new] += doc.len() as u32;
            }
        }
        let phi = crate::lda::estimate_phi(&n_kw, &n_k, cfg.beta);
        let total_docs: f64 = m_k.iter().map(|&c| c as f64).sum();
        let mut weights: Vec<f32> = m_k
            .iter()
            .map(|&c| ((c as f64 + cfg.alpha) / (total_docs + k as f64 * cfg.alpha)) as f32)
            .collect();
        normalize(&mut weights);
        DmmModel { phi, weights, assignments: z }
    }

    /// Number of clusters actually populated after training.
    pub fn populated_clusters(&self) -> usize {
        let mut seen: Vec<bool> = vec![false; self.phi.len()];
        for &a in &self.assignments {
            seen[a] = true;
        }
        seen.into_iter().filter(|&s| s).count()
    }

    /// The hard cluster of training document `d`.
    pub fn assignment(&self, d: usize) -> usize {
        self.assignments[d]
    }

    /// The MAP cluster of an unseen document — a *hard* assignment, which
    /// is exactly what breaks ranking-based recommendation.
    pub fn classify(&self, doc: &[TermId]) -> usize {
        let scores: Vec<f64> = (0..self.phi.len())
            .map(|t| {
                let mut s = (self.weights[t].max(f32::MIN_POSITIVE) as f64).ln();
                for &w in doc {
                    s += (self.phi[t].get(w as usize).copied().unwrap_or(f32::MIN_POSITIVE) as f64)
                        .max(f64::MIN_POSITIVE)
                        .ln();
                }
                s
            })
            .collect();
        scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
    }
}

impl TopicModel for DmmModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    /// Returns the one-hot distribution of the MAP cluster — faithful to
    /// DMM's single-topic assumption. Comparing such vectors with cosine
    /// yields only the values {0, 1}: the mass-tie pathology of §3.2.
    fn infer(&self, doc: &[TermId], _rng: &mut StdRng) -> Vec<f32> {
        let k = self.num_topics();
        if doc.is_empty() {
            return uniform(k);
        }
        let mut out = vec![0.0f32; k];
        out[self.classify(doc)] = 1.0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet"]);
            } else {
                docs.push(vec!["rust", "code", "bug"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn clusters_separate_the_corpus() {
        let corpus = two_cluster_corpus();
        let cfg = DmmConfig { topics: 8, iterations: 30, ..DmmConfig::default() };
        let model = DmmModel::train(&cfg, &corpus);
        // GSDMM should collapse to roughly the true number of clusters.
        assert!(model.populated_clusters() <= 4, "{} clusters", model.populated_clusters());
        // All even (cat) docs share a cluster, distinct from odd (rust) docs.
        let even = model.assignment(0);
        let odd = model.assignment(1);
        assert_ne!(even, odd);
        for d in (0..40).step_by(2) {
            assert_eq!(model.assignment(d), even);
        }
    }

    #[test]
    fn classify_matches_training_clusters() {
        let corpus = two_cluster_corpus();
        let model = DmmModel::train(&DmmConfig { topics: 8, ..DmmConfig::default() }, &corpus);
        let cat = model.classify(&corpus.encode(&["cat", "pet"]));
        let rust = model.classify(&corpus.encode(&["rust", "bug"]));
        assert_eq!(cat, model.assignment(0));
        assert_eq!(rust, model.assignment(1));
    }

    /// The paper's exclusion argument (§3.2): hard assignments yield mass
    /// ties when used for ranking.
    #[test]
    fn ranking_ties() {
        let corpus = two_cluster_corpus();
        let model = DmmModel::train(&DmmConfig { topics: 8, ..DmmConfig::default() }, &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        // Score several same-cluster documents against a "user model" (the
        // one-hot of the cat cluster): all scores identical.
        let user = model.infer(&corpus.encode(&["cat", "dog"]), &mut rng);
        let mut score = |tokens: &[&str]| -> f32 {
            let th = model.infer(&corpus.encode(tokens), &mut rng);
            user.iter().zip(&th).map(|(a, b)| a * b).sum()
        };
        let s1 = score(&["cat", "pet"]);
        let s2 = score(&["dog", "pet", "cat"]);
        let s3 = score(&["cat"]);
        assert_eq!(s1, s2, "same-cluster docs tie");
        assert_eq!(s2, s3, "same-cluster docs tie regardless of content detail");
        assert!(score(&["rust", "code"]) < s1, "cross-cluster docs score 0");
    }

    #[test]
    fn empty_doc_is_uniform() {
        let corpus = two_cluster_corpus();
        let model = DmmModel::train(&DmmConfig::default(), &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let th = model.infer(&[], &mut rng);
        assert!((th.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(th.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = two_cluster_corpus();
        let a = DmmModel::train(&DmmConfig::default(), &corpus);
        let b = DmmModel::train(&DmmConfig::default(), &corpus);
        assert_eq!(a.assignments, b.assignments);
    }
}
