//! Latent Dirichlet Allocation with collapsed Gibbs sampling.
//!
//! Blei, Ng & Jordan 2003; the collapsed Gibbs sampler follows Griffiths &
//! Steyvers 2004: the topic of token `i` in document `d` is resampled from
//!
//! ```text
//! P(z_i = k | rest) ∝ (n_dk + α) · (n_kw + β) / (n_k + V·β)
//! ```
//!
//! The paper estimates all topic models with Gibbs sampling (§3.2) and tunes
//! α = 50/|Z|, β = 0.01 per Steyvers & Griffiths 2007 (Table 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::model::{normalize, sample_discrete, uniform, TopicModel};

/// LDA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics `|Z|`.
    pub topics: usize,
    /// Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the training corpus.
    pub iterations: usize,
    /// Fold-in Gibbs sweeps per inferred document.
    pub infer_iterations: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl LdaConfig {
    /// The paper's tuning for a given topic count: α = 50/|Z|, β = 0.01.
    pub fn paper(topics: usize, iterations: usize, seed: u64) -> Self {
        LdaConfig {
            topics,
            alpha: 50.0 / topics as f64,
            beta: 0.01,
            iterations,
            infer_iterations: 20,
            seed,
        }
    }
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig::paper(50, 200, 42)
    }
}

/// A trained LDA model: topic–word distributions plus the θ prior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    /// `phi[k][w] = P(w | z=k)`, row-stochastic.
    phi: Vec<Vec<f32>>,
    /// Per-topic prior mass used at inference (`α` for every topic).
    alpha: f64,
    /// Fold-in sweeps at inference.
    infer_iterations: usize,
    /// Per-document topic distributions of the *training* documents
    /// (available without re-inference).
    theta_train: Vec<Vec<f32>>,
}

impl LdaModel {
    /// Train with collapsed Gibbs sampling.
    pub fn train(cfg: &LdaConfig, corpus: &TopicCorpus) -> Self {
        assert!(cfg.topics >= 1, "at least one topic required");
        let k = cfg.topics;
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut n_dk = vec![vec![0u32; k]; corpus.len()];
        let mut n_kw = vec![vec![0u32; v]; k];
        let mut n_k = vec![0u32; k];
        // Random initialization.
        let mut z: Vec<Vec<usize>> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..k);
                        n_dk[d][t] += 1;
                        n_kw[t][w as usize] += 1;
                        n_k[t] += 1;
                        t
                    })
                    .collect()
            })
            .collect();
        let vb = v as f64 * cfg.beta;
        let mut weights = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.lda");
            for (d, doc) in corpus.docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i];
                    n_dk[d][old] -= 1;
                    n_kw[old][w as usize] -= 1;
                    n_k[old] -= 1;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        *wt = (n_dk[d][t] as f64 + cfg.alpha)
                            * (n_kw[t][w as usize] as f64 + cfg.beta)
                            / (n_k[t] as f64 + vb);
                    }
                    let new = sample_discrete(&mut rng, &weights);
                    z[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w as usize] += 1;
                    n_k[new] += 1;
                }
            }
        }
        let phi = estimate_phi(&n_kw, &n_k, cfg.beta);
        let theta_train = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| estimate_theta(&n_dk[d], doc.len(), cfg.alpha))
            .collect();
        LdaModel { phi, alpha: cfg.alpha, infer_iterations: cfg.infer_iterations, theta_train }
    }

    /// The topic distribution of training document `d` (no re-inference).
    pub fn theta_train(&self, d: usize) -> &[f32] {
        &self.theta_train[d]
    }

    /// `P(w | z=k)` rows.
    pub fn phi(&self) -> &[Vec<f32>] {
        &self.phi
    }
}

/// Smoothed maximum-likelihood estimate of φ from Gibbs counts.
pub(crate) fn estimate_phi(n_kw: &[Vec<u32>], n_k: &[u32], beta: f64) -> Vec<Vec<f32>> {
    let v = n_kw.first().map_or(0, Vec::len);
    n_kw.iter()
        .zip(n_k)
        .map(|(row, &nk)| {
            let denom = nk as f64 + v as f64 * beta;
            row.iter().map(|&c| ((c as f64 + beta) / denom) as f32).collect()
        })
        .collect()
}

/// Smoothed estimate of θ from per-document topic counts.
pub(crate) fn estimate_theta(n_dk: &[u32], doc_len: usize, alpha: f64) -> Vec<f32> {
    let k = n_dk.len();
    let denom = doc_len as f64 + k as f64 * alpha;
    let mut theta: Vec<f32> = n_dk.iter().map(|&c| ((c as f64 + alpha) / denom) as f32).collect();
    normalize(&mut theta);
    theta
}

/// Shared fold-in Gibbs inference over a fixed φ: used by LDA, LLDA and HDP
/// document inference.
pub(crate) fn fold_in(
    phi: &[Vec<f32>],
    alpha_per_topic: &[f64],
    doc: &[TermId],
    iterations: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let k = phi.len();
    if doc.is_empty() || k == 0 {
        return uniform(k);
    }
    let mut n_dk = vec![0u32; k];
    let mut z: Vec<usize> = doc
        .iter()
        .map(|_| {
            let t = rng.gen_range(0..k);
            n_dk[t] += 1;
            t
        })
        .collect();
    let mut weights = vec![0.0f64; k];
    for _ in 0..iterations.max(1) {
        for (i, &w) in doc.iter().enumerate() {
            let old = z[i];
            n_dk[old] -= 1;
            for (t, wt) in weights.iter_mut().enumerate() {
                *wt = (n_dk[t] as f64 + alpha_per_topic[t])
                    * phi[t].get(w as usize).copied().unwrap_or(0.0) as f64;
            }
            let new = sample_discrete(rng, &weights);
            z[i] = new;
            n_dk[new] += 1;
        }
    }
    let alpha_sum: f64 = alpha_per_topic.iter().sum();
    let denom = doc.len() as f64 + alpha_sum;
    let mut theta: Vec<f32> =
        n_dk.iter().zip(alpha_per_topic).map(|(&c, &a)| ((c as f64 + a) / denom) as f32).collect();
    normalize(&mut theta);
    theta
}

impl TopicModel for LdaModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32> {
        let alphas = vec![self.alpha; self.phi.len()];
        fold_in(&self.phi, &alphas, doc, self.infer_iterations, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus with two cleanly separated word communities.
    pub(crate) fn two_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet", "vet", "cat", "dog"]);
            } else {
                docs.push(vec!["rust", "code", "bug", "test", "rust", "code"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn recovers_two_topics() {
        let corpus = two_cluster_corpus();
        // A weak α: the paper's 50/|Z| heuristic is calibrated for large
        // corpora and would swamp a 3-token test document's θ.
        let cfg = LdaConfig { alpha: 0.1, ..LdaConfig::paper(2, 100, 7) };
        let model = LdaModel::train(&cfg, &corpus);
        let mut rng = StdRng::seed_from_u64(9);
        let pet = model.infer(&corpus.encode(&["cat", "dog", "pet"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "code", "bug"]), &mut rng);
        let pet_top = crate::model::argmax(&pet);
        let code_top = crate::model::argmax(&code);
        assert_ne!(pet_top, code_top, "clusters must land in different topics");
        assert!(pet[pet_top] > 0.7, "confident assignment expected: {pet:?}");
        assert!(code[code_top] > 0.7, "confident assignment expected: {code:?}");
    }

    #[test]
    fn theta_train_matches_inference_cluster() {
        let corpus = two_cluster_corpus();
        let model = LdaModel::train(&LdaConfig::paper(2, 100, 7), &corpus);
        // Documents 0 and 2 share a cluster; 0 and 1 do not.
        let t0 = model.theta_train(0);
        let t1 = model.theta_train(1);
        let t2 = model.theta_train(2);
        assert_eq!(crate::model::argmax(t0), crate::model::argmax(t2));
        assert_ne!(crate::model::argmax(t0), crate::model::argmax(t1));
    }

    #[test]
    fn inferred_distributions_are_normalized() {
        let corpus = two_cluster_corpus();
        let model = LdaModel::train(&LdaConfig::paper(4, 50, 1), &corpus);
        let mut rng = StdRng::seed_from_u64(2);
        let theta = model.infer(&corpus.docs[0], &mut rng);
        assert_eq!(theta.len(), 4);
        assert!((theta.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(theta.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn empty_document_infers_uniform() {
        let corpus = two_cluster_corpus();
        let model = LdaModel::train(&LdaConfig::paper(3, 20, 1), &corpus);
        let mut rng = StdRng::seed_from_u64(2);
        let theta = model.infer(&[], &mut rng);
        assert!(theta.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn phi_rows_are_distributions() {
        let corpus = two_cluster_corpus();
        let model = LdaModel::train(&LdaConfig::paper(3, 20, 1), &corpus);
        for row in model.phi() {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "phi row sums to {s}");
        }
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let corpus = two_cluster_corpus();
        let a = LdaModel::train(&LdaConfig::paper(2, 30, 5), &corpus);
        let b = LdaModel::train(&LdaConfig::paper(2, 30, 5), &corpus);
        assert_eq!(a.phi(), b.phi());
    }
}
