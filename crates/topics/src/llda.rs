//! Labeled LDA (Ramage et al. 2009) with constrained collapsed Gibbs
//! sampling.
//!
//! Each training document carries an observed label set `Λ_d`; its tokens
//! may only be assigned topics from `Λ_d` plus the shared latent topics
//! ("Topic 1" … "Topic |Z|", following Ramage, Dumais & Liebling 2010 and
//! §4 of the paper). Inference for unseen documents is unconstrained —
//! test tweets have no observed labels, so the model behaves like LDA over
//! the full label+latent topic space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::lda::{estimate_phi, fold_in};
use crate::model::{sample_discrete, TopicModel};

/// Labeled-LDA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LldaConfig {
    /// Number of *latent* topics shared by all documents, in addition to
    /// the observed labels.
    pub latent_topics: usize,
    /// Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the training corpus.
    pub iterations: usize,
    /// Fold-in Gibbs sweeps per inferred document.
    pub infer_iterations: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl LldaConfig {
    /// The paper's tuning: α = 50/|Z| over the latent topics, β = 0.01.
    pub fn paper(latent_topics: usize, iterations: usize, seed: u64) -> Self {
        LldaConfig {
            latent_topics,
            alpha: 50.0 / latent_topics.max(1) as f64,
            beta: 0.01,
            iterations,
            infer_iterations: 20,
            seed,
        }
    }
}

/// A trained Labeled-LDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LldaModel {
    /// Topic–word distributions over labels ++ latent topics.
    phi: Vec<Vec<f32>>,
    /// Number of observed label topics (the first `num_labels` rows of φ).
    num_labels: usize,
    alpha: f64,
    infer_iterations: usize,
    theta_train: Vec<Vec<f32>>,
}

impl LldaModel {
    /// Train on a corpus whose `labels` field is populated (an empty label
    /// list for a document means "latent topics only").
    ///
    /// The total topic space is `max_label_id + 1` label topics followed by
    /// `latent_topics` latent ones.
    pub fn train(cfg: &LldaConfig, corpus: &TopicCorpus) -> Self {
        let num_labels = corpus
            .labels
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        let k = num_labels + cfg.latent_topics.max(1);
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Allowed topics per document: its labels plus every latent topic.
        let allowed: Vec<Vec<usize>> = (0..corpus.len())
            .map(|d| {
                let mut a: Vec<usize> = corpus
                    .labels
                    .get(d)
                    .map(|ls| ls.iter().map(|&l| l as usize).collect())
                    .unwrap_or_default();
                a.extend(num_labels..k);
                a
            })
            .collect();
        let mut n_dk = vec![vec![0u32; k]; corpus.len()];
        let mut n_kw = vec![vec![0u32; v]; k];
        let mut n_k = vec![0u32; k];
        let mut z: Vec<Vec<usize>> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = allowed[d][rng.gen_range(0..allowed[d].len())];
                        n_dk[d][t] += 1;
                        n_kw[t][w as usize] += 1;
                        n_k[t] += 1;
                        t
                    })
                    .collect()
            })
            .collect();
        let vb = v as f64 * cfg.beta;
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.llda");
            for (d, doc) in corpus.docs.iter().enumerate() {
                let a = &allowed[d];
                let mut weights = vec![0.0f64; a.len()];
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i];
                    n_dk[d][old] -= 1;
                    n_kw[old][w as usize] -= 1;
                    n_k[old] -= 1;
                    for (ai, &t) in a.iter().enumerate() {
                        weights[ai] = (n_dk[d][t] as f64 + cfg.alpha)
                            * (n_kw[t][w as usize] as f64 + cfg.beta)
                            / (n_k[t] as f64 + vb);
                    }
                    let new = a[sample_discrete(&mut rng, &weights)];
                    z[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w as usize] += 1;
                    n_k[new] += 1;
                }
            }
        }
        let phi = estimate_phi(&n_kw, &n_k, cfg.beta);
        let theta_train = (0..corpus.len())
            .map(|d| crate::lda::estimate_theta(&n_dk[d], corpus.docs[d].len(), cfg.alpha))
            .collect();
        LldaModel {
            phi,
            num_labels,
            alpha: cfg.alpha,
            infer_iterations: cfg.infer_iterations,
            theta_train,
        }
    }

    /// Number of observed label topics.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The topic distribution of training document `d`.
    pub fn theta_train(&self, d: usize) -> &[f32] {
        &self.theta_train[d]
    }
}

impl TopicModel for LldaModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32> {
        let alphas = vec![self.alpha; self.phi.len()];
        fold_in(&self.phi, &alphas, doc, self.infer_iterations, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two word communities with perfectly informative labels.
    fn labeled_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet", "cat"]);
                labels.push(vec![0u32]);
            } else {
                docs.push(vec!["rust", "code", "bug", "rust"]);
                labels.push(vec![1u32]);
            }
        }
        let mut c = TopicCorpus::from_token_docs(docs);
        c.labels = labels;
        c
    }

    #[test]
    fn label_topics_absorb_their_vocabulary() {
        let corpus = labeled_corpus();
        let cfg = LldaConfig::paper(1, 80, 3);
        let model = LldaModel::train(&cfg, &corpus);
        assert_eq!(model.num_labels(), 2);
        assert_eq!(model.num_topics(), 3); // 2 labels + 1 latent
                                           // θ of a label-0 training doc must prefer topic 0.
        let t = model.theta_train(0);
        assert!(t[0] > t[1], "label-0 doc: {t:?}");
        let t = model.theta_train(1);
        assert!(t[1] > t[0], "label-1 doc: {t:?}");
    }

    #[test]
    fn inference_discriminates_clusters() {
        let corpus = labeled_corpus();
        let model = LldaModel::train(&LldaConfig::paper(1, 80, 3), &corpus);
        let mut rng = StdRng::seed_from_u64(5);
        let pet = model.infer(&corpus.encode(&["cat", "pet", "dog"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "bug", "code"]), &mut rng);
        assert!(pet[0] > pet[1], "{pet:?}");
        assert!(code[1] > code[0], "{code:?}");
    }

    #[test]
    fn corpus_without_labels_degenerates_to_lda() {
        let mut corpus = labeled_corpus();
        corpus.labels.clear();
        let model = LldaModel::train(&LldaConfig::paper(2, 40, 3), &corpus);
        assert_eq!(model.num_labels(), 0);
        assert_eq!(model.num_topics(), 2);
    }

    #[test]
    fn training_docs_respect_label_constraint() {
        let corpus = labeled_corpus();
        let model = LldaModel::train(&LldaConfig::paper(1, 80, 3), &corpus);
        // A label-0 doc may only put mass on topic 0 and the latent topic 2;
        // topic 1 (the other label) receives only the α prior share.
        let t = model.theta_train(0);
        assert!(t[1] < 0.35, "forbidden label topic got mass: {t:?}");
    }
}
