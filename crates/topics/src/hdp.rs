//! Hierarchical Dirichlet Process topic model (Teh, Jordan, Beal & Blei
//! 2006), trained with the *direct assignment* collapsed Gibbs sampler of
//! §5.3 of that paper.
//!
//! HDP is the nonparametric cousin of LDA: the number of topics is unbounded
//! and inferred from the data. The sampler keeps a global stick-breaking
//! weight vector `β = (β_1 … β_K, β_u)` (with `β_u` the mass reserved for
//! unseen topics); a token may join an existing topic `k` with probability
//! `∝ (n_dk + α β_k) f_k(w)` or open a new one with probability
//! `∝ α β_u / V`. After every sweep, table counts `m_dk` are resampled via
//! the Antoniak distribution and `β ~ Dir(m_·1 … m_·K, γ)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::lda::{estimate_phi, fold_in};
use crate::model::{sample_discrete, TopicModel};

/// HDP hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HdpConfig {
    /// Concentration of the per-document DP (α in the paper; Table 4 uses 1.0).
    pub alpha: f64,
    /// Concentration of the global DP (γ; Table 4 uses 1.0).
    pub gamma: f64,
    /// Dirichlet prior on topic–word distributions (called β in the paper's
    /// Table 4, η in the HDP literature; Table 4 uses {0.1, 0.5}).
    pub eta: f64,
    /// Gibbs sweeps over the training corpus.
    pub iterations: usize,
    /// Fold-in Gibbs sweeps per inferred document.
    pub infer_iterations: usize,
    /// Hard cap on the number of topics (a memory guard; far above what the
    /// sampler reaches on microblog corpora).
    pub max_topics: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl HdpConfig {
    /// The paper's tuning (Table 4): α = γ = 1.0, 1000 iterations.
    pub fn paper(eta: f64, iterations: usize, seed: u64) -> Self {
        HdpConfig {
            alpha: 1.0,
            gamma: 1.0,
            eta,
            iterations,
            infer_iterations: 20,
            max_topics: 512,
            seed,
        }
    }
}

/// A trained HDP model: the discovered topics plus the global weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HdpModel {
    /// `phi[k][w] = P(w | z=k)` for the discovered topics.
    phi: Vec<Vec<f32>>,
    /// Per-topic prior mass `α · β_k` used at inference.
    alpha_beta: Vec<f64>,
    infer_iterations: usize,
    theta_train: Vec<Vec<f32>>,
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler (duplicated from the simulator to
/// keep this crate dependency-free of it).
fn gamma_sample(rng: &mut StdRng, shape: f64) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Antoniak sampler: the number of tables serving dish `k` in a restaurant
/// with `n` customers and concentration `a` — a sum of independent
/// Bernoulli(a / (a + i)) draws for i = 0..n.
fn antoniak(rng: &mut StdRng, a: f64, n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    let mut m = 0u32;
    for i in 0..n {
        if rng.gen_range(0.0..1.0) < a / (a + i as f64) {
            m += 1;
        }
    }
    m.max(1)
}

impl HdpModel {
    /// Train with the direct-assignment Gibbs sampler.
    pub fn train(cfg: &HdpConfig, corpus: &TopicCorpus) -> Self {
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Start from one topic; the sampler grows the set.
        let mut k = 1usize;
        let mut n_dk: Vec<Vec<u32>> = vec![vec![0; k]; corpus.len()];
        let mut n_kw: Vec<Vec<u32>> = vec![vec![0; v]; k];
        let mut n_k: Vec<u32> = vec![0; k];
        // Global stick weights: (β_1 … β_K) plus the unseen mass β_u.
        let mut beta: Vec<f64> = vec![0.5, 0.5];
        let mut z: Vec<Vec<usize>> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        n_dk[d][0] += 1;
                        n_kw[0][w as usize] += 1;
                        n_k[0] += 1;
                        0
                    })
                    .collect()
            })
            .collect();
        let ve = v as f64 * cfg.eta;
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.hdp");
            for d in 0..corpus.len() {
                #[allow(clippy::needless_range_loop)] // `i` indexes both the doc and `z`
                for i in 0..corpus.docs[d].len() {
                    let w = corpus.docs[d][i] as usize;
                    let old = z[d][i];
                    n_dk[d][old] -= 1;
                    n_kw[old][w] -= 1;
                    n_k[old] -= 1;
                    // Weights over existing topics plus one "new topic" slot.
                    let mut weights: Vec<f64> = (0..k)
                        .map(|t| {
                            (n_dk[d][t] as f64 + cfg.alpha * beta[t])
                                * (n_kw[t][w] as f64 + cfg.eta)
                                / (n_k[t] as f64 + ve)
                        })
                        .collect();
                    let allow_new = k < cfg.max_topics;
                    if allow_new {
                        weights.push(cfg.alpha * beta[k] / v as f64);
                    }
                    let new = sample_discrete(&mut rng, &weights);
                    if new == k {
                        // Open a new topic: split the unseen stick mass.
                        let b = {
                            // Beta(1, γ) via inverse CDF of 1-(1-u)^(1/γ).
                            let u: f64 = rng.gen_range(0.0..1.0);
                            1.0 - (1.0 - u).powf(1.0 / cfg.gamma)
                        };
                        let bu = beta[k];
                        beta[k] = b * bu;
                        beta.push((1.0 - b) * bu);
                        for row in n_dk.iter_mut() {
                            row.push(0);
                        }
                        n_kw.push(vec![0; v]);
                        n_k.push(0);
                        k += 1;
                    }
                    z[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w] += 1;
                    n_k[new] += 1;
                }
            }
            // Resample the global weights from the table counts, then drop
            // empty topics.
            let mut m: Vec<f64> = (0..k)
                .map(|t| {
                    let total: u32 = (0..corpus.len())
                        .map(|d| antoniak(&mut rng, cfg.alpha * beta[t], n_dk[d][t]))
                        .sum();
                    total as f64
                })
                .collect();
            m.push(cfg.gamma);
            let draws: Vec<f64> =
                m.iter().map(|&a| if a > 0.0 { gamma_sample(&mut rng, a) } else { 0.0 }).collect();
            let sum: f64 = draws.iter().sum();
            if sum > 0.0 {
                beta = draws.into_iter().map(|x| x / sum).collect();
            }
            // Compact: remove topics with no tokens.
            let keep: Vec<usize> = (0..k).filter(|&t| n_k[t] > 0).collect();
            if keep.len() < k {
                let remap: std::collections::HashMap<usize, usize> =
                    keep.iter().enumerate().map(|(new, &old)| (old, new)).collect();
                n_kw = keep.iter().map(|&t| std::mem::take(&mut n_kw[t])).collect();
                n_k = keep.iter().map(|&t| n_k[t]).collect();
                let unseen = beta[k];
                let dropped: f64 = (0..k).filter(|t| !remap.contains_key(t)).map(|t| beta[t]).sum();
                beta = keep.iter().map(|&t| beta[t]).collect();
                beta.push(unseen + dropped);
                for row in n_dk.iter_mut() {
                    *row = keep.iter().map(|&t| row[t]).collect();
                }
                for zd in z.iter_mut() {
                    for zi in zd.iter_mut() {
                        *zi = remap[zi];
                    }
                }
                k = keep.len();
            }
        }
        let phi = estimate_phi(&n_kw, &n_k, cfg.eta);
        let alpha_beta: Vec<f64> = (0..k).map(|t| cfg.alpha * beta[t]).collect();
        let theta_train = (0..corpus.len())
            .map(|d| {
                let len = corpus.docs[d].len();
                let asum: f64 = alpha_beta.iter().sum();
                let denom = len as f64 + asum;
                let mut th: Vec<f32> = n_dk[d]
                    .iter()
                    .zip(&alpha_beta)
                    .map(|(&c, &a)| ((c as f64 + a) / denom) as f32)
                    .collect();
                crate::model::normalize(&mut th);
                th
            })
            .collect();
        HdpModel { phi, alpha_beta, infer_iterations: cfg.infer_iterations, theta_train }
    }

    /// Number of topics the sampler settled on.
    pub fn discovered_topics(&self) -> usize {
        self.phi.len()
    }

    /// The topic distribution of training document `d`.
    pub fn theta_train(&self, d: usize) -> &[f32] {
        &self.theta_train[d]
    }
}

impl TopicModel for HdpModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32> {
        fold_in(&self.phi, &self.alpha_beta, doc, self.infer_iterations, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..45 {
            match i % 3 {
                0 => docs.push(vec!["cat", "dog", "pet", "cat", "dog"]),
                1 => docs.push(vec!["rust", "code", "bug", "rust", "code"]),
                _ => docs.push(vec!["rain", "wind", "storm", "rain", "wind"]),
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn discovers_multiple_topics() {
        let corpus = three_cluster_corpus();
        let model = HdpModel::train(&HdpConfig::paper(0.1, 80, 11), &corpus);
        assert!(
            model.discovered_topics() >= 3,
            "expected ≥3 topics, got {}",
            model.discovered_topics()
        );
        assert!(model.discovered_topics() < 40, "topic count should stay moderate");
    }

    #[test]
    fn separates_the_clusters() {
        let corpus = three_cluster_corpus();
        let model = HdpModel::train(&HdpConfig::paper(0.1, 80, 11), &corpus);
        let mut rng = StdRng::seed_from_u64(4);
        let pets = model.infer(&corpus.encode(&["cat", "dog", "pet"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "code", "bug"]), &mut rng);
        let storm = model.infer(&corpus.encode(&["rain", "storm", "wind"]), &mut rng);
        let tops: std::collections::HashSet<usize> =
            [&pets, &code, &storm].iter().map(|th| crate::model::argmax(th)).collect();
        assert_eq!(tops.len(), 3, "each cluster should get its own topic");
    }

    #[test]
    fn inferred_distributions_are_normalized() {
        let corpus = three_cluster_corpus();
        let model = HdpModel::train(&HdpConfig::paper(0.5, 40, 2), &corpus);
        let mut rng = StdRng::seed_from_u64(4);
        let th = model.infer(&corpus.docs[0], &mut rng);
        assert_eq!(th.len(), model.num_topics());
        assert!((th.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn antoniak_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(antoniak(&mut rng, 1.0, 0), 0);
        for _ in 0..50 {
            let m = antoniak(&mut rng, 1.0, 10);
            assert!((1..=10).contains(&m));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = three_cluster_corpus();
        let a = HdpModel::train(&HdpConfig::paper(0.1, 30, 5), &corpus);
        let b = HdpModel::train(&HdpConfig::paper(0.1, 30, 5), &corpus);
        assert_eq!(a.discovered_topics(), b.discovered_topics());
        assert_eq!(a.theta_train(0), b.theta_train(0));
    }
}
