//! Author-Topic Model (Rosen-Zvi, Griffiths, Steyvers & Smyth 2004).
//!
//! ATM ties topics to *authors* instead of documents: every token draws an
//! author from the document's author set and a topic from that author's
//! distribution. The paper's related work (§6) discusses it alongside LDA
//! as a user-aware alternative (Hong & Davison 2010 train both on raw and
//! pooled tweets); it is implemented here as an extension because the
//! simulated corpus carries authorship natively and an author-level topic
//! profile is itself a user model.
//!
//! For microblog posts the author set of a document is a singleton, which
//! collapses the author-sampling step: the collapsed Gibbs update becomes
//!
//! ```text
//! P(z_i = k | rest) ∝ (n_ak + α) / (n_a + Kα) · (n_kw + β) / (n_k + Vβ)
//! ```
//!
//! with `n_ak` counting tokens of author `a` in topic `k` — i.e. LDA with
//! author-level instead of document-level mixing. That equivalence is
//! exactly why the paper's *user pooling* works: UP-pooled LDA **is** the
//! single-author ATM (a property the tests pin down).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::lda::{estimate_phi, fold_in};
use crate::model::{normalize, sample_discrete, TopicModel};

/// ATM hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtmConfig {
    /// Number of topics `|Z|`.
    pub topics: usize,
    /// Dirichlet prior on author–topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the training corpus.
    pub iterations: usize,
    /// Fold-in sweeps per inferred document.
    pub infer_iterations: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl AtmConfig {
    /// The Steyvers–Griffiths tuning, matching the paper's LDA setup.
    pub fn paper(topics: usize, iterations: usize, seed: u64) -> Self {
        AtmConfig {
            topics,
            alpha: 50.0 / topics as f64,
            beta: 0.01,
            iterations,
            infer_iterations: 20,
            seed,
        }
    }
}

/// A trained Author-Topic model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtmModel {
    /// `phi[k][w] = P(w | z=k)`.
    phi: Vec<Vec<f32>>,
    /// `theta_author[a][k] = P(z=k | author a)` — the author profiles.
    theta_author: Vec<Vec<f32>>,
    alpha: f64,
    infer_iterations: usize,
}

impl AtmModel {
    /// Train on a corpus with one author id per document (dense ids; the
    /// author table is sized by the maximum id + 1).
    pub fn train(cfg: &AtmConfig, corpus: &TopicCorpus, authors: &[u32]) -> Self {
        assert_eq!(corpus.len(), authors.len(), "one author per document required");
        assert!(cfg.topics >= 1);
        let k = cfg.topics;
        let v = corpus.vocab_size().max(1);
        let num_authors = authors.iter().map(|&a| a as usize + 1).max().unwrap_or(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut n_ak = vec![vec![0u32; k]; num_authors];
        let mut n_a = vec![0u32; num_authors];
        let mut n_kw = vec![vec![0u32; v]; k];
        let mut n_k = vec![0u32; k];
        let mut z: Vec<Vec<usize>> = corpus
            .docs
            .iter()
            .zip(authors)
            .map(|(doc, &a)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..k);
                        n_ak[a as usize][t] += 1;
                        n_a[a as usize] += 1;
                        n_kw[t][w as usize] += 1;
                        n_k[t] += 1;
                        t
                    })
                    .collect()
            })
            .collect();
        let vb = v as f64 * cfg.beta;
        let mut weights = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.atm");
            for (d, doc) in corpus.docs.iter().enumerate() {
                let a = authors[d] as usize;
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i];
                    n_ak[a][old] -= 1;
                    n_kw[old][w as usize] -= 1;
                    n_k[old] -= 1;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        *wt = (n_ak[a][t] as f64 + cfg.alpha)
                            * (n_kw[t][w as usize] as f64 + cfg.beta)
                            / (n_k[t] as f64 + vb);
                    }
                    let new = sample_discrete(&mut rng, &weights);
                    z[d][i] = new;
                    n_ak[a][new] += 1;
                    n_kw[new][w as usize] += 1;
                    n_k[new] += 1;
                }
            }
        }
        let phi = estimate_phi(&n_kw, &n_k, cfg.beta);
        let theta_author = n_ak
            .iter()
            .zip(&n_a)
            .map(|(row, &na)| {
                let denom = na as f64 + k as f64 * cfg.alpha;
                let mut th: Vec<f32> =
                    row.iter().map(|&c| ((c as f64 + cfg.alpha) / denom) as f32).collect();
                normalize(&mut th);
                th
            })
            .collect();
        AtmModel { phi, theta_author, alpha: cfg.alpha, infer_iterations: cfg.infer_iterations }
    }

    /// The topic profile of an author — directly usable as a user model.
    pub fn author_profile(&self, author: u32) -> &[f32] {
        &self.theta_author[author as usize]
    }

    /// Number of authors the model knows.
    pub fn num_authors(&self) -> usize {
        self.theta_author.len()
    }
}

impl TopicModel for AtmModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32> {
        let alphas = vec![self.alpha; self.phi.len()];
        fold_in(&self.phi, &alphas, doc, self.infer_iterations, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two authors, each devoted to one word community.
    fn corpus_with_authors() -> (TopicCorpus, Vec<u32>) {
        let mut docs = Vec::new();
        let mut authors = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet", "cat"]);
                authors.push(0u32);
            } else {
                docs.push(vec!["rust", "code", "bug", "rust"]);
                authors.push(1u32);
            }
        }
        (TopicCorpus::from_token_docs(docs), authors)
    }

    #[test]
    fn author_profiles_separate() {
        let (corpus, authors) = corpus_with_authors();
        let cfg = AtmConfig { alpha: 0.1, ..AtmConfig::paper(2, 80, 3) };
        let model = AtmModel::train(&cfg, &corpus, &authors);
        assert_eq!(model.num_authors(), 2);
        let a0 = model.author_profile(0);
        let a1 = model.author_profile(1);
        assert_ne!(
            crate::model::argmax(a0),
            crate::model::argmax(a1),
            "authors must own different topics: {a0:?} vs {a1:?}"
        );
        assert!(a0[crate::model::argmax(a0)] > 0.8);
    }

    #[test]
    fn profiles_are_distributions() {
        let (corpus, authors) = corpus_with_authors();
        let model = AtmModel::train(&AtmConfig::paper(4, 30, 1), &corpus, &authors);
        for a in 0..model.num_authors() as u32 {
            let p = model.author_profile(a);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn document_inference_matches_the_author_community() {
        let (corpus, authors) = corpus_with_authors();
        let cfg = AtmConfig { alpha: 0.1, ..AtmConfig::paper(2, 80, 3) };
        let model = AtmModel::train(&cfg, &corpus, &authors);
        let mut rng = StdRng::seed_from_u64(9);
        let pets = model.infer(&corpus.encode(&["cat", "dog"]), &mut rng);
        assert_eq!(
            crate::model::argmax(&pets),
            crate::model::argmax(model.author_profile(0)),
            "a cat-doc must land on the cat-author's topic"
        );
    }

    #[test]
    #[should_panic(expected = "one author per document")]
    fn mismatched_author_table_is_rejected() {
        let (corpus, _) = corpus_with_authors();
        let _ = AtmModel::train(&AtmConfig::paper(2, 5, 1), &corpus, &[0, 1]);
    }

    #[test]
    fn training_is_deterministic() {
        let (corpus, authors) = corpus_with_authors();
        let a = AtmModel::train(&AtmConfig::paper(3, 20, 5), &corpus, &authors);
        let b = AtmModel::train(&AtmConfig::paper(3, 20, 5), &corpus, &authors);
        assert_eq!(a.author_profile(0), b.author_profile(0));
    }
}
