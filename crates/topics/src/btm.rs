//! Biterm Topic Model (Yan, Guo, Lan & Cheng 2013; Cheng et al. 2014).
//!
//! BTM sidesteps short-text sparsity (challenge C1) by modeling the
//! generation of *biterms* — unordered word pairs co-occurring within a
//! window — over the whole corpus instead of per-document word generation.
//! A single corpus-level topic distribution θ is drawn from `Dir(α)`, each
//! biterm picks a topic from θ and both its words from that topic's `φ_z`.
//!
//! Document distributions are not part of the generative process; they are
//! recovered as `P(z|d) = Σ_b P(z|b) · P(b|d)` with `P(b|d)` the empirical
//! biterm distribution of the document and `P(z|b) ∝ θ_z φ_z,w1 φ_z,w2`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::model::{normalize, sample_discrete, uniform, TopicModel};

/// BTM hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BtmConfig {
    /// Number of topics `|Z|`.
    pub topics: usize,
    /// Dirichlet prior on the corpus topic distribution.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the biterm set.
    pub iterations: usize,
    /// Context window `r`: maximum token distance within a document for a
    /// biterm. The paper uses the tweet length for individual tweets and
    /// r = 30 for pooled pseudo-documents.
    pub window: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl BtmConfig {
    /// The paper's tuning: α = 50/|Z|, β = 0.01, r = 30, 1000 iterations.
    pub fn paper(topics: usize, iterations: usize, seed: u64) -> Self {
        BtmConfig { topics, alpha: 50.0 / topics as f64, beta: 0.01, iterations, window: 30, seed }
    }
}

/// A trained BTM model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BtmModel {
    /// `phi[k][w] = P(w | z=k)`.
    phi: Vec<Vec<f32>>,
    /// Corpus-level topic distribution θ.
    theta: Vec<f32>,
    /// Window used for document-side biterm extraction.
    window: usize,
}

/// Enumerate the biterms of a document: unordered pairs of tokens at
/// distance ≤ `window`. Pairs of the same position are excluded; pairs of
/// equal words at different positions are kept (they are informative
/// co-occurrences).
pub fn biterms(doc: &[TermId], window: usize) -> Vec<(TermId, TermId)> {
    let mut out = Vec::new();
    for i in 0..doc.len() {
        for j in (i + 1)..doc.len().min(i + window + 1) {
            let (a, b) = if doc[i] <= doc[j] { (doc[i], doc[j]) } else { (doc[j], doc[i]) };
            out.push((a, b));
        }
    }
    out
}

impl BtmModel {
    /// Train with collapsed Gibbs sampling over the corpus biterm set.
    pub fn train(cfg: &BtmConfig, corpus: &TopicCorpus) -> Self {
        assert!(cfg.topics >= 1);
        let k = cfg.topics;
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let all: Vec<(TermId, TermId)> =
            corpus.docs.iter().flat_map(|d| biterms(d, cfg.window)).collect();
        let mut n_z = vec![0u32; k];
        let mut n_zw = vec![vec![0u32; v]; k];
        let mut z: Vec<usize> = all
            .iter()
            .map(|&(w1, w2)| {
                let t = rng.gen_range(0..k);
                n_z[t] += 1;
                n_zw[t][w1 as usize] += 1;
                n_zw[t][w2 as usize] += 1;
                t
            })
            .collect();
        let vb = v as f64 * cfg.beta;
        let mut weights = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.btm");
            for (bi, &(w1, w2)) in all.iter().enumerate() {
                let old = z[bi];
                n_z[old] -= 1;
                n_zw[old][w1 as usize] -= 1;
                n_zw[old][w2 as usize] -= 1;
                for (t, wt) in weights.iter_mut().enumerate() {
                    let nz = n_z[t] as f64;
                    *wt = (nz + cfg.alpha)
                        * (n_zw[t][w1 as usize] as f64 + cfg.beta)
                        * (n_zw[t][w2 as usize] as f64 + cfg.beta)
                        / ((2.0 * nz + vb) * (2.0 * nz + 1.0 + vb));
                }
                let new = sample_discrete(&mut rng, &weights);
                z[bi] = new;
                n_z[new] += 1;
                n_zw[new][w1 as usize] += 1;
                n_zw[new][w2 as usize] += 1;
            }
        }
        let total_b = all.len() as f64;
        let mut theta: Vec<f32> = n_z
            .iter()
            .map(|&c| ((c as f64 + cfg.alpha) / (total_b + k as f64 * cfg.alpha)) as f32)
            .collect();
        normalize(&mut theta);
        let phi = n_zw
            .iter()
            .zip(&n_z)
            .map(|(row, &nz)| {
                let denom = 2.0 * nz as f64 + vb;
                row.iter().map(|&c| ((c as f64 + cfg.beta) / denom) as f32).collect()
            })
            .collect();
        BtmModel { phi, theta, window: cfg.window }
    }

    /// The corpus-level topic distribution θ.
    pub fn theta(&self) -> &[f32] {
        &self.theta
    }

    /// `P(w | z=k)` rows.
    pub fn phi(&self) -> &[Vec<f32>] {
        &self.phi
    }

    /// `P(z | b) ∝ θ_z · φ_z,w1 · φ_z,w2`.
    fn topic_given_biterm(&self, w1: TermId, w2: TermId) -> Vec<f32> {
        let mut p: Vec<f32> = self
            .theta
            .iter()
            .enumerate()
            .map(|(t, &th)| {
                th * self.phi[t].get(w1 as usize).copied().unwrap_or(0.0)
                    * self.phi[t].get(w2 as usize).copied().unwrap_or(0.0)
            })
            .collect();
        normalize(&mut p);
        p
    }
}

impl TopicModel for BtmModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    /// BTM document inference is deterministic (no sampling): it averages
    /// `P(z|b)` over the document's biterms. The RNG is unused but kept for
    /// interface uniformity.
    fn infer(&self, doc: &[TermId], _rng: &mut StdRng) -> Vec<f32> {
        let k = self.num_topics();
        // For individual short documents the paper sets the window to the
        // document length; our stored window is an upper bound, so short
        // docs naturally pair all tokens.
        let bs = biterms(doc, self.window.max(doc.len()));
        if bs.is_empty() {
            // Single-word fallback: P(z|w) ∝ θ_z φ_z,w.
            if let Some(&w) = doc.first() {
                let mut p: Vec<f32> = self
                    .theta
                    .iter()
                    .enumerate()
                    .map(|(t, &th)| th * self.phi[t].get(w as usize).copied().unwrap_or(0.0))
                    .collect();
                normalize(&mut p);
                if p.iter().sum::<f32>() > 0.0 {
                    return p;
                }
            }
            return uniform(k);
        }
        let mut acc = vec![0.0f32; k];
        let share = 1.0 / bs.len() as f32;
        for (w1, w2) in bs {
            let p = self.topic_given_biterm(w1, w2);
            for (a, q) in acc.iter_mut().zip(p) {
                *a += q * share;
            }
        }
        normalize(&mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet"]);
            } else {
                docs.push(vec!["rust", "code", "bug"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn biterm_extraction_respects_window() {
        let doc = vec![0u32, 1, 2, 3];
        assert_eq!(biterms(&doc, 1), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(biterms(&doc, 3).len(), 6);
        assert!(biterms(&[0], 5).is_empty());
    }

    #[test]
    fn biterms_are_unordered() {
        let b1 = biterms(&[5, 2], 1);
        let b2 = biterms(&[2, 5], 1);
        assert_eq!(b1, b2);
    }

    #[test]
    fn recovers_two_topics() {
        let corpus = two_cluster_corpus();
        let model = BtmModel::train(&BtmConfig::paper(2, 150, 3), &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let pet = model.infer(&corpus.encode(&["cat", "pet"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "bug"]), &mut rng);
        let pet_top = crate::model::argmax(&pet);
        let code_top = crate::model::argmax(&code);
        assert_ne!(pet_top, code_top);
        assert!(pet[pet_top] > 0.8, "{pet:?}");
        assert!(code[code_top] > 0.8, "{code:?}");
    }

    #[test]
    fn single_word_documents_use_the_fallback() {
        let corpus = two_cluster_corpus();
        let model = BtmModel::train(&BtmConfig::paper(2, 100, 3), &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let p = model.infer(&corpus.encode(&["cat"]), &mut rng);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(p[0] != p[1], "single informative word should not be uniform");
    }

    #[test]
    fn empty_document_is_uniform() {
        let corpus = two_cluster_corpus();
        let model = BtmModel::train(&BtmConfig::paper(3, 50, 3), &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let p = model.infer(&[], &mut rng);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn theta_and_phi_are_distributions() {
        let corpus = two_cluster_corpus();
        let model = BtmModel::train(&BtmConfig::paper(4, 50, 9), &corpus);
        assert!((model.theta().iter().sum::<f32>() - 1.0).abs() < 1e-4);
        for row in model.phi() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = two_cluster_corpus();
        let a = BtmModel::train(&BtmConfig::paper(2, 30, 5), &corpus);
        let b = BtmModel::train(&BtmConfig::paper(2, 30, 5), &corpus);
        assert_eq!(a.theta(), b.theta());
    }
}
