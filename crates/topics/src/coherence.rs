//! Topic coherence — the standard intrinsic quality measure for topic
//! models (UMass coherence, Mimno et al. 2011).
//!
//! The paper evaluates topic models extrinsically (ranking MAP); coherence
//! is the complementary intrinsic view: do a topic's top words actually
//! co-occur in documents? It is used here by the `topic_browser` example
//! and by diagnostics around the pooling ablation — sparse short texts are
//! exactly the regime where coherence collapses, which is the mechanism
//! behind the paper's "NP pooling fails" finding.

use std::collections::{HashMap, HashSet};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;

/// UMass coherence of one topic given its `top_words` (most probable
/// first):
///
/// ```text
/// C = Σ_{i<j} log( (D(w_i, w_j) + 1) / D(w_j) )
/// ```
///
/// where `D(w)` counts documents containing `w` and `D(w_i, w_j)` counts
/// documents containing both. Higher (less negative) is more coherent.
pub fn umass_coherence(corpus: &TopicCorpus, top_words: &[TermId]) -> f64 {
    let mut doc_sets: HashMap<TermId, HashSet<usize>> = HashMap::new();
    for &w in top_words {
        doc_sets.insert(w, HashSet::new());
    }
    for (d, doc) in corpus.docs.iter().enumerate() {
        for w in doc {
            if let Some(set) = doc_sets.get_mut(w) {
                set.insert(d);
            }
        }
    }
    let mut score = 0.0;
    for i in 1..top_words.len() {
        for j in 0..i {
            let wi = &doc_sets[&top_words[i]];
            let wj = &doc_sets[&top_words[j]];
            let d_j = wj.len() as f64;
            if d_j == 0.0 {
                continue;
            }
            let both = wi.intersection(wj).count() as f64;
            score += ((both + 1.0) / d_j).ln();
        }
    }
    score
}

/// The `k` most probable words of a topic row of φ.
pub fn top_words(phi_row: &[f32], k: usize) -> Vec<TermId> {
    let mut idx: Vec<usize> = (0..phi_row.len()).collect();
    idx.sort_by(|&a, &b| phi_row[b].total_cmp(&phi_row[a]));
    idx.into_iter().take(k).map(|i| i as TermId).collect()
}

/// Mean UMass coherence over all topics of a φ matrix.
pub fn mean_coherence(corpus: &TopicCorpus, phi: &[Vec<f32>], top_k: usize) -> f64 {
    if phi.is_empty() {
        return 0.0;
    }
    let total: f64 = phi.iter().map(|row| umass_coherence(corpus, &top_words(row, top_k))).sum();
    total / phi.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{LdaConfig, LdaModel};

    fn clustered_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet"]);
            } else {
                docs.push(vec!["rust", "code", "bug"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn cooccurring_words_are_coherent() {
        let corpus = clustered_corpus();
        let cat = corpus.vocab.get("cat").unwrap();
        let dog = corpus.vocab.get("dog").unwrap();
        let rust = corpus.vocab.get("rust").unwrap();
        let coherent = umass_coherence(&corpus, &[cat, dog]);
        let incoherent = umass_coherence(&corpus, &[cat, rust]);
        assert!(
            coherent > incoherent,
            "co-occurring pair must score higher: {coherent} vs {incoherent}"
        );
    }

    #[test]
    fn top_words_orders_by_probability() {
        let row = vec![0.1f32, 0.5, 0.05, 0.35];
        assert_eq!(top_words(&row, 2), vec![1, 3]);
        assert_eq!(top_words(&row, 10).len(), 4);
    }

    #[test]
    fn trained_lda_topics_are_more_coherent_than_random_word_sets() {
        let corpus = clustered_corpus();
        // Weak α (the paper's 50/|Z| heuristic smears θ on 3-token docs).
        let cfg = LdaConfig { alpha: 0.1, ..LdaConfig::paper(2, 80, 3) };
        let model = LdaModel::train(&cfg, &corpus);
        let trained = mean_coherence(&corpus, model.phi(), 3);
        // A deliberately mixed "topic" spanning both clusters.
        let cat = corpus.vocab.get("cat").unwrap();
        let rust = corpus.vocab.get("rust").unwrap();
        let bug = corpus.vocab.get("bug").unwrap();
        let mixed = umass_coherence(&corpus, &[cat, rust, bug]);
        assert!(trained > mixed, "trained {trained} vs mixed {mixed}");
    }

    #[test]
    fn empty_inputs_are_neutral() {
        let corpus = clustered_corpus();
        assert_eq!(umass_coherence(&corpus, &[]), 0.0);
        assert_eq!(mean_coherence(&corpus, &[], 5), 0.0);
    }
}
