//! Probabilistic Latent Semantic Analysis (Hofmann 1999), trained with
//! Expectation Maximization.
//!
//! PLSA models `P(w, d) = P(d) Σ_z P(z|d) P(w|z)` with no priors on the
//! per-document topic distributions, which makes its parameter count grow
//! linearly with the corpus (`|D|·|Z| + |Z|·|V|`) — the overfitting the
//! paper discusses in §3.2 and the reason every PLSA configuration violated
//! the paper's 32 GB memory constraint on its 2M-tweet corpus. The paper
//! estimates PLSA with EM rather than Gibbs (§3.2); so do we.
//!
//! Unseen documents are folded in by running EM over `θ_d` only, with the
//! topic–word distributions frozen.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::model::{normalize, uniform, TopicModel};

/// PLSA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlsaConfig {
    /// Number of topics `|Z|`.
    pub topics: usize,
    /// EM iterations over the training corpus.
    pub iterations: usize,
    /// Fold-in EM iterations per inferred document.
    pub infer_iterations: usize,
    /// Seed for the random initialization.
    pub seed: u64,
}

impl Default for PlsaConfig {
    fn default() -> Self {
        PlsaConfig { topics: 50, iterations: 50, infer_iterations: 15, seed: 42 }
    }
}

/// A trained PLSA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlsaModel {
    /// `phi[k][w] = P(w | z=k)`.
    phi: Vec<Vec<f32>>,
    infer_iterations: usize,
    theta_train: Vec<Vec<f32>>,
}

impl PlsaModel {
    /// Train with EM.
    pub fn train(cfg: &PlsaConfig, corpus: &TopicCorpus) -> Self {
        assert!(cfg.topics >= 1);
        let k = cfg.topics;
        let v = corpus.vocab_size().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Random stochastic initialization.
        let mut phi: Vec<Vec<f32>> = (0..k)
            .map(|_| {
                let mut row: Vec<f32> = (0..v).map(|_| rng.gen_range(0.1..1.0)).collect();
                normalize(&mut row);
                row
            })
            .collect();
        let mut theta: Vec<Vec<f32>> = (0..corpus.len())
            .map(|_| {
                let mut row: Vec<f32> = (0..k).map(|_| rng.gen_range(0.1..1.0)).collect();
                normalize(&mut row);
                row
            })
            .collect();
        // Per-document word counts (sparse).
        let doc_counts: Vec<Vec<(u32, f32)>> = corpus
            .docs
            .iter()
            .map(|doc| {
                let mut m = std::collections::HashMap::new();
                for &w in doc {
                    *m.entry(w).or_insert(0.0f32) += 1.0;
                }
                let mut pairs: Vec<(u32, f32)> = m.into_iter().collect();
                pairs.sort_by_key(|&(w, _)| w);
                pairs
            })
            .collect();
        let mut posterior = vec![0.0f32; k];
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("em_iter.plsa");
            let mut phi_acc = vec![vec![0.0f32; v]; k];
            let mut theta_acc = vec![vec![0.0f32; k]; corpus.len()];
            for (d, counts) in doc_counts.iter().enumerate() {
                for &(w, c) in counts {
                    // E step: P(z | d, w) ∝ θ_dz φ_zw.
                    for (z, p) in posterior.iter_mut().enumerate() {
                        *p = theta[d][z] * phi[z][w as usize];
                    }
                    normalize(&mut posterior);
                    // M-step accumulators.
                    for (z, &p) in posterior.iter().enumerate() {
                        phi_acc[z][w as usize] += c * p;
                        theta_acc[d][z] += c * p;
                    }
                }
            }
            for (row, acc) in phi.iter_mut().zip(phi_acc) {
                *row = acc;
                normalize(row);
            }
            for (row, acc) in theta.iter_mut().zip(theta_acc) {
                *row = acc;
                normalize(row);
            }
        }
        PlsaModel { phi, infer_iterations: cfg.infer_iterations, theta_train: theta }
    }

    /// `P(w | z=k)` rows.
    pub fn phi(&self) -> &[Vec<f32>] {
        &self.phi
    }

    /// The topic distribution of training document `d`.
    pub fn theta_train(&self, d: usize) -> &[f32] {
        &self.theta_train[d]
    }

    /// Estimated parameter count `|D|·|Z| + |Z|·|V|` — the quantity that
    /// blows past memory constraints on large corpora (§3.2).
    pub fn parameter_count(&self) -> usize {
        self.theta_train.len() * self.phi.len()
            + self.phi.len() * self.phi.first().map_or(0, Vec::len)
    }
}

impl TopicModel for PlsaModel {
    fn num_topics(&self) -> usize {
        self.phi.len()
    }

    fn infer(&self, doc: &[TermId], _rng: &mut StdRng) -> Vec<f32> {
        let k = self.num_topics();
        if doc.is_empty() {
            return uniform(k);
        }
        let mut theta = uniform(k);
        let mut posterior = vec![0.0f32; k];
        for _ in 0..self.infer_iterations.max(1) {
            let mut acc = vec![0.0f32; k];
            for &w in doc {
                for (z, p) in posterior.iter_mut().enumerate() {
                    *p = theta[z] * self.phi[z].get(w as usize).copied().unwrap_or(0.0);
                }
                normalize(&mut posterior);
                for (z, &p) in posterior.iter().enumerate() {
                    acc[z] += p;
                }
            }
            theta = acc;
            normalize(&mut theta);
        }
        theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push(vec!["cat", "dog", "pet", "cat"]);
            } else {
                docs.push(vec!["rust", "code", "bug", "rust"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    #[test]
    fn recovers_two_topics() {
        let corpus = two_cluster_corpus();
        let cfg = PlsaConfig { topics: 2, iterations: 60, infer_iterations: 20, seed: 3 };
        let model = PlsaModel::train(&cfg, &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let pet = model.infer(&corpus.encode(&["cat", "dog"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "bug"]), &mut rng);
        let pt = crate::model::argmax(&pet);
        let ct = crate::model::argmax(&code);
        assert_ne!(pt, ct);
        assert!(pet[pt] > 0.8, "{pet:?}");
        assert!(code[ct] > 0.8, "{code:?}");
    }

    #[test]
    fn theta_and_phi_are_stochastic() {
        let corpus = two_cluster_corpus();
        let model = PlsaModel::train(&PlsaConfig::default(), &corpus);
        for row in model.phi() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
        assert!((model.theta_train(0).iter().sum::<f32>() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn parameter_count_grows_with_corpus() {
        let small = two_cluster_corpus();
        let cfg = PlsaConfig { topics: 2, iterations: 5, infer_iterations: 5, seed: 1 };
        let m_small = PlsaModel::train(&cfg, &small);
        let mut docs: Vec<Vec<&str>> = Vec::new();
        for _ in 0..100 {
            docs.push(vec!["cat", "dog"]);
        }
        let big = TopicCorpus::from_token_docs(docs);
        let m_big = PlsaModel::train(&cfg, &big);
        assert!(m_big.parameter_count() > m_small.parameter_count() / 2);
        assert_eq!(m_small.parameter_count(), 30 * 2 + 2 * small.vocab_size());
    }

    #[test]
    fn empty_doc_is_uniform() {
        let corpus = two_cluster_corpus();
        let model = PlsaModel::train(&PlsaConfig::default(), &corpus);
        let mut rng = StdRng::seed_from_u64(1);
        let th = model.infer(&[], &mut rng);
        assert!(th.iter().all(|&p| (p - 1.0 / th.len() as f32).abs() < 1e-6));
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = two_cluster_corpus();
        let cfg = PlsaConfig { topics: 3, iterations: 10, infer_iterations: 5, seed: 9 };
        let a = PlsaModel::train(&cfg, &corpus);
        let b = PlsaModel::train(&cfg, &corpus);
        assert_eq!(a.phi(), b.phi());
    }
}
