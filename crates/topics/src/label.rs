//! The Labeled-LDA tweet labeler (§4, following Ramage, Dumais & Liebling
//! 2010).
//!
//! Labels assigned to a training tweet:
//!
//! * one label per hashtag that occurs more than `hashtag_min_count` times
//!   across the training tweets (30 in the paper);
//! * a question-mark label if the raw text contains `?`;
//! * one label per emoticon category present (nine categories);
//! * an `@user` label if the tweet mentions a user as its first token.
//!
//! Most labels come in 10 frequency variations (e.g. `frown-0` … `frown-9`);
//! hashtag labels and the emoticons *big grin*, *heart*, *surprise* and
//! *confused* carry no variations (§4). Variations are assigned
//! deterministically by document index.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use pmr_text::token::{Token, TokenKind};
use pmr_text::{classify_emoticon, EmoticonClass};

/// Dense label identifier issued by [`LabelVocabulary::intern`].
pub type LabelId = u32;

/// Number of variations per variated label.
pub const VARIATIONS: usize = 10;

/// A fitted labeler: knows which hashtags are frequent enough to be labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Labeler {
    /// Minimum training-corpus occurrences for a hashtag label.
    pub hashtag_min_count: usize,
    // BTreeSet, not HashSet: the derived `Serialize` must emit the labels
    // in a stable order for snapshot determinism.
    frequent_hashtags: BTreeSet<String>,
}

impl Labeler {
    /// The paper's hashtag threshold.
    pub const PAPER_MIN_COUNT: usize = 30;

    /// Fit the labeler on the training tweets (counts hashtags).
    pub fn fit<'a, I>(token_docs: I, hashtag_min_count: usize) -> Self
    where
        I: IntoIterator<Item = &'a [Token]>,
    {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in token_docs {
            for t in doc {
                if t.kind == TokenKind::Hashtag {
                    *counts.entry(t.text.clone()).or_insert(0) += 1;
                }
            }
        }
        let frequent_hashtags: BTreeSet<String> = counts
            .into_iter()
            .filter(|&(_, c)| c > hashtag_min_count)
            .map(|(tag, _)| tag)
            .collect();
        Labeler { hashtag_min_count, frequent_hashtags }
    }

    /// Number of hashtags that qualified as labels.
    pub fn num_hashtag_labels(&self) -> usize {
        self.frequent_hashtags.len()
    }

    /// Label strings of a tweet. `doc_index` drives the deterministic
    /// variation assignment.
    pub fn label(&self, raw_text: &str, tokens: &[Token], doc_index: usize) -> Vec<String> {
        let variation = doc_index % VARIATIONS;
        let mut labels = Vec::new();
        // Hashtag labels (no variations).
        for t in tokens {
            if t.kind == TokenKind::Hashtag && self.frequent_hashtags.contains(&t.text) {
                labels.push(t.text.clone());
            }
        }
        // Question mark (with variations).
        if raw_text.contains('?') {
            labels.push(format!("?-{variation}"));
        }
        // Emoticon categories.
        let mut classes: Vec<EmoticonClass> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Emoticon)
            .filter_map(|t| classify_emoticon(&t.text))
            .collect();
        classes.sort();
        classes.dedup();
        for c in classes {
            if c.has_variations() {
                labels.push(format!("{}-{variation}", c.name()));
            } else {
                labels.push(c.name().to_owned());
            }
        }
        // Leading @user mention (with variations).
        if tokens.first().is_some_and(|t| t.kind == TokenKind::Mention) {
            labels.push(format!("@user-{variation}"));
        }
        labels.sort();
        labels.dedup();
        labels
    }
}

/// A label vocabulary: string label ↔ dense [`LabelId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelVocabulary {
    map: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelVocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a label string.
    pub fn intern(&mut self, label: &str) -> LabelId {
        match self.map.get(label) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as LabelId;
                self.map.insert(label.to_owned(), id);
                self.names.push(label.to_owned());
                id
            }
        }
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The surface form of a label id.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_text::tokenize;

    fn fit_on(texts: &[&str], min: usize) -> (Labeler, Vec<Vec<Token>>) {
        let docs: Vec<Vec<Token>> = texts.iter().map(|t| tokenize(t)).collect();
        let labeler = Labeler::fit(docs.iter().map(Vec::as_slice), min);
        (labeler, docs)
    }

    #[test]
    fn frequent_hashtags_become_labels() {
        let texts: Vec<String> = (0..40)
            .map(|i| format!("tweet {i} #hot {}", if i < 5 { "#cold" } else { "" }))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (labeler, docs) = fit_on(&refs, 30);
        assert_eq!(labeler.num_hashtag_labels(), 1);
        let labels = labeler.label(refs[0], &docs[0], 0);
        assert!(labels.contains(&"#hot".to_owned()));
        assert!(!labels.iter().any(|l| l == "#cold"));
    }

    #[test]
    fn question_mark_label_with_variation() {
        let (labeler, docs) = fit_on(&["really? wow"], 30);
        let labels = labeler.label("really? wow", &docs[0], 3);
        assert!(labels.contains(&"?-3".to_owned()));
    }

    #[test]
    fn emoticon_labels_follow_variation_rules() {
        let (labeler, docs) = fit_on(&["sad :( but ok <3"], 30);
        let labels = labeler.label("sad :( but ok <3", &docs[0], 7);
        assert!(labels.contains(&"frown-7".to_owned()), "{labels:?}");
        assert!(labels.contains(&"heart".to_owned()), "heart carries no variation: {labels:?}");
    }

    #[test]
    fn leading_mention_yields_user_label() {
        let (labeler, docs) = fit_on(&["@bob thanks!", "thanks @bob"], 30);
        let l0 = labeler.label("@bob thanks!", &docs[0], 0);
        assert!(l0.contains(&"@user-0".to_owned()));
        let l1 = labeler.label("thanks @bob", &docs[1], 0);
        assert!(!l1.iter().any(|l| l.starts_with("@user")), "{l1:?}");
    }

    #[test]
    fn unlabeled_tweets_get_no_labels() {
        let (labeler, docs) = fit_on(&["plain text here"], 30);
        assert!(labeler.label("plain text here", &docs[0], 0).is_empty());
    }

    #[test]
    fn label_vocabulary_roundtrip() {
        let mut v = LabelVocabulary::new();
        let a = v.intern("#x");
        let b = v.intern("frown-1");
        assert_eq!(v.intern("#x"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.name(a), "#x");
        assert_eq!(v.name(b), "frown-1");
    }

    #[test]
    fn variations_cycle_deterministically() {
        let (labeler, docs) = fit_on(&["why?"], 30);
        let l0 = labeler.label("why?", &docs[0], 0);
        let l10 = labeler.label("why?", &docs[0], 10);
        assert_eq!(l0, l10, "doc 0 and doc 10 share variation 0");
    }
}
