//! # pmr-topics
//!
//! Topic models for short multilingual text — the context-agnostic family of
//! the paper's taxonomy (§3).
//!
//! Six models are implemented from their primary sources, all from scratch:
//!
//! | Model | Inference | Reference |
//! |-------|-----------|-----------|
//! | PLSA  | EM        | Hofmann 1999 |
//! | LDA   | collapsed Gibbs | Blei et al. 2003; Griffiths & Steyvers 2004 |
//! | LLDA  | constrained collapsed Gibbs | Ramage et al. 2009 |
//! | HDP   | direct-assignment Gibbs | Teh et al. 2006 §5.3 |
//! | HLDA  | nCRP path Gibbs, fixed depth | Blei et al. 2003 (NIPS) |
//! | BTM   | biterm collapsed Gibbs | Yan et al. 2013; Cheng et al. 2014 |
//!
//! The paper excluded PLSA from its experiments because every configuration
//! violated its 32 GB memory constraint; it is implemented here regardless
//! (the exclusion is a *rule* in `pmr-core`'s configuration grid, and the
//! simulated corpus is small enough to run it for completeness).
//!
//! All models expose the same [`TopicModel`] interface: train once per
//! representation source on pooled pseudo-documents ([`pooling`]), then
//! infer a dense topic distribution for any (training or testing) tweet.
//! User models are centroids of training-tweet distributions and are
//! compared to document models with cosine similarity (§3.2, "Using Topic
//! Models").

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod atm;
pub mod btm;
pub mod coherence;
pub mod corpus;
pub mod dmm;
pub mod hdp;
pub mod hlda;
pub mod label;
pub mod lda;
pub mod llda;
pub mod model;
pub mod online;
pub mod plsa;
pub mod pooling;

pub use atm::{AtmConfig, AtmModel};
pub use btm::{BtmConfig, BtmModel};
pub use coherence::{mean_coherence, umass_coherence};
pub use corpus::TopicCorpus;
pub use dmm::{DmmConfig, DmmModel};
pub use hdp::{HdpConfig, HdpModel};
pub use hlda::{HldaConfig, HldaModel};
pub use label::{LabelId, Labeler};
pub use lda::{LdaConfig, LdaModel};
pub use llda::{LldaConfig, LldaModel};
pub use model::TopicModel;
pub use online::{OnlineTopicConfig, OnlineTopicModel, TopicBackground, TopicDoc, TopicProfile};
pub use plsa::{PlsaConfig, PlsaModel};
pub use pooling::PoolingScheme;
