//! Online topic inference: a periodically retrained *background* model
//! served by deterministic fold-in Gibbs inference.
//!
//! The batch family in this crate refits a topic model per experiment; the
//! serving engine cannot afford that per tweet. The online subsystem splits
//! the work:
//!
//! * **Background** ([`TopicBackground`]): topic–word distributions `φ`
//!   retrained on a cadence with a SparseLDA-style bucketed collapsed Gibbs
//!   sampler (Yao, Mimno & McCallum 2009). The conditional
//!   `P(z=k) ∝ (n_dk+α)(n_kw+β)/(n_k+Vβ)` is decomposed into a smoothing
//!   bucket `s = Σ_k αβ/(n_k+Vβ)` (maintained by exact delta updates), a
//!   document bucket `r = Σ_{n_dk>0} n_dk·β/(n_k+Vβ)` and a topic–word
//!   bucket `q` walked over the word's sparse `(topic, count)` list — so a
//!   sweep costs O(non-zero topics) per token instead of O(K), which is
//!   what makes retraining cheap enough to run periodically.
//! * **Fold-in** ([`TopicBackground::fold_in`]): a new document's `θ` is
//!   inferred against a *frozen* `φ` with a fixed sweep budget, using a
//!   fresh `StdRng` per `(document, sweep)` whose seed is splitmix64-derived
//!   from `(config seed, epoch, document key, sweep index)`. No RNG state
//!   survives between documents or sweeps, so `θ` is a pure function of
//!   `(φ, document, key)` — independent of shard layout, worker count,
//!   scheduler, or the order in which documents are served. That purity is
//!   the whole determinism argument for the topic family in `pmr-serve`.
//!
//! User profiles ([`TopicProfile`]) are exponentially decayed sums of
//! observed `θ`s, compared to candidate `θ`s by cosine — mirroring the
//! batch pipeline's centroid-of-distributions user models (§3.2).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::model::{normalize, sample_discrete, uniform};

/// Seed-stream label for background training draws.
const S_TRAIN: u64 = 1;
/// Seed-stream label for fold-in draws.
const S_FOLDIN: u64 = 2;

/// SplitMix64-style seed derivation (the same mix the simulator's
/// deterministic seed streams use): collision-resistant across
/// `(stream, item)` pairs and free of sequential correlation, so every
/// `(document, sweep)` gets an independent, reproducible RNG.
fn derive_seed(master: u64, stream: u64, item: u64) -> u64 {
    let mut z = master
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ item.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hyperparameters of the online topic subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineTopicConfig {
    /// Number of latent topics `|Z|`.
    pub topics: usize,
    /// Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps per background retrain.
    pub train_iterations: usize,
    /// Fold-in sweeps per served document (the fixed per-doc budget).
    pub foldin_iterations: usize,
    /// Master seed; every training epoch and every fold-in derives its own
    /// stream from it.
    pub seed: u64,
}

impl OnlineTopicConfig {
    /// The paper's tuning for a given topic count: α = 50/|Z|, β = 0.01.
    pub fn paper(topics: usize, train_iterations: usize, seed: u64) -> Self {
        OnlineTopicConfig {
            topics,
            alpha: 50.0 / topics.max(1) as f64,
            beta: 0.01,
            train_iterations,
            foldin_iterations: 8,
            seed,
        }
    }
}

/// Decrement a sparse `(topic, count)` row, dropping the entry at zero.
fn dec_sparse(row: &mut Vec<(u32, u32)>, topic: u32) {
    if let Ok(i) = row.binary_search_by_key(&topic, |&(t, _)| t) {
        if row[i].1 <= 1 {
            row.remove(i);
        } else {
            row[i].1 -= 1;
        }
    }
}

/// Increment a sparse `(topic, count)` row, keeping it sorted by topic.
fn inc_sparse(row: &mut Vec<(u32, u32)>, topic: u32) {
    match row.binary_search_by_key(&topic, |&(t, _)| t) {
        Ok(i) => row[i].1 += 1,
        Err(i) => row.insert(i, (topic, 1)),
    }
}

/// A trained background model: frozen topic–word distributions plus the
/// seed material every fold-in derives from. A background is a pure
/// function of `(config, documents, epoch)` — snapshots only record the
/// epoch and re-derive the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicBackground {
    epoch: u64,
    alpha: f64,
    foldin_iterations: usize,
    seed: u64,
    /// `phi[k][w] = P(w | z=k)`, row-stochastic over the full vocabulary.
    phi: Vec<Vec<f32>>,
}

impl TopicBackground {
    /// Retrain the background on `docs` (token-id slices over a vocabulary
    /// of `vocab` terms) with the bucketed SparseLDA sampler. Pure in
    /// `(cfg, docs, vocab, epoch)`: the sampler is single-threaded and
    /// seeded from `derive_seed(cfg.seed, S_TRAIN, epoch)`.
    pub fn train(cfg: &OnlineTopicConfig, docs: &[&[TermId]], vocab: usize, epoch: u64) -> Self {
        let k = cfg.topics.max(1);
        let v = vocab.max(1);
        let vb = v as f64 * cfg.beta;
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, S_TRAIN, epoch));

        let mut n_k = vec![0u32; k];
        let mut n_kw: Vec<Vec<(u32, u32)>> = vec![Vec::new(); v];
        let mut n_dk: Vec<Vec<u32>> =
            docs.iter().map(|d| vec![0u32; if d.is_empty() { 0 } else { k }]).collect();
        // Random initialization.
        let mut z: Vec<Vec<usize>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..k);
                        n_dk[d][t] += 1;
                        n_k[t] += 1;
                        inc_sparse(&mut n_kw[w as usize], t as u32);
                        t
                    })
                    .collect()
            })
            .collect();

        // The smoothing bucket, maintained by exact delta updates whenever
        // an `n_k` changes.
        let mut s: f64 = n_k.iter().map(|&nk| cfg.alpha * cfg.beta / (nk as f64 + vb)).sum();
        let mut coef = vec![0.0f64; k];
        for _ in 0..cfg.train_iterations {
            let _iter = pmr_obs::timer("gibbs_iter.online_lda");
            for (d, doc) in docs.iter().enumerate() {
                if doc.is_empty() {
                    continue;
                }
                // Entering a document: the topic–word coefficients and the
                // document bucket, refreshed exactly once per (doc, sweep)
                // so floating-point drift cannot accumulate across the run.
                for (t, c) in coef.iter_mut().enumerate() {
                    *c = (n_dk[d][t] as f64 + cfg.alpha) / (n_k[t] as f64 + vb);
                }
                let mut r: f64 = n_dk[d]
                    .iter()
                    .zip(&n_k)
                    .map(|(&c, &nk)| c as f64 * cfg.beta / (nk as f64 + vb))
                    .sum();
                for (i, &w) in doc.iter().enumerate() {
                    let wi = w as usize;
                    let old = z[d][i];
                    s -= cfg.alpha * cfg.beta / (n_k[old] as f64 + vb);
                    r -= n_dk[d][old] as f64 * cfg.beta / (n_k[old] as f64 + vb);
                    n_dk[d][old] -= 1;
                    n_k[old] -= 1;
                    dec_sparse(&mut n_kw[wi], old as u32);
                    s += cfg.alpha * cfg.beta / (n_k[old] as f64 + vb);
                    r += n_dk[d][old] as f64 * cfg.beta / (n_k[old] as f64 + vb);
                    coef[old] = (n_dk[d][old] as f64 + cfg.alpha) / (n_k[old] as f64 + vb);

                    let row = &n_kw[wi];
                    let q: f64 = row.iter().map(|&(t, c)| coef[t as usize] * c as f64).sum();
                    let total = s + r + q;
                    let new = if total > 0.0 && total.is_finite() {
                        let u = rng.gen_range(0.0..total);
                        if u < s {
                            // Smoothing bucket: walk all topics.
                            let mut acc = 0.0;
                            let mut pick = k - 1;
                            for (t, &nk) in n_k.iter().enumerate() {
                                acc += cfg.alpha * cfg.beta / (nk as f64 + vb);
                                if u < acc {
                                    pick = t;
                                    break;
                                }
                            }
                            pick
                        } else if u < s + r {
                            // Document bucket: walk the doc's non-zero topics.
                            let mut acc = s;
                            let mut pick = k - 1;
                            for (t, &c) in n_dk[d].iter().enumerate() {
                                if c == 0 {
                                    continue;
                                }
                                acc += c as f64 * cfg.beta / (n_k[t] as f64 + vb);
                                if u < acc {
                                    pick = t;
                                    break;
                                }
                            }
                            pick
                        } else {
                            // Topic–word bucket: walk the word's sparse row.
                            let mut acc = s + r;
                            let mut pick = row.last().map(|&(t, _)| t as usize).unwrap_or(k - 1);
                            for &(t, c) in row {
                                acc += coef[t as usize] * c as f64;
                                if u < acc {
                                    pick = t as usize;
                                    break;
                                }
                            }
                            pick
                        }
                    } else {
                        rng.gen_range(0..k)
                    };

                    s -= cfg.alpha * cfg.beta / (n_k[new] as f64 + vb);
                    r -= n_dk[d][new] as f64 * cfg.beta / (n_k[new] as f64 + vb);
                    n_dk[d][new] += 1;
                    n_k[new] += 1;
                    inc_sparse(&mut n_kw[wi], new as u32);
                    s += cfg.alpha * cfg.beta / (n_k[new] as f64 + vb);
                    r += n_dk[d][new] as f64 * cfg.beta / (n_k[new] as f64 + vb);
                    coef[new] = (n_dk[d][new] as f64 + cfg.alpha) / (n_k[new] as f64 + vb);
                    z[d][i] = new;
                }
            }
        }

        // Dense, smoothed φ: every absent (topic, word) pair gets the β
        // floor, so fold-in never multiplies by a hard zero.
        let mut phi: Vec<Vec<f32>> =
            n_k.iter().map(|&nk| vec![(cfg.beta / (nk as f64 + vb)) as f32; v]).collect();
        for (w, row) in n_kw.iter().enumerate() {
            for &(t, c) in row {
                phi[t as usize][w] = ((c as f64 + cfg.beta) / (n_k[t as usize] as f64 + vb)) as f32;
            }
        }
        TopicBackground {
            epoch,
            alpha: cfg.alpha,
            foldin_iterations: cfg.foldin_iterations,
            seed: cfg.seed,
            phi,
        }
    }

    /// The retrain generation this background belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of latent topics.
    pub fn topics(&self) -> usize {
        self.phi.len()
    }

    /// `P(w | z=k)` rows.
    pub fn phi(&self) -> &[Vec<f32>] {
        &self.phi
    }

    /// Infer `θ` for a document by fold-in Gibbs against the frozen `φ`.
    ///
    /// Every sweep (and the initial assignment, sweep 0) runs on a fresh
    /// `StdRng` seeded from `(seed, epoch, doc_key, sweep)` — no state
    /// crosses documents or sweeps, so the result is a pure function of
    /// `(self, doc, doc_key)` no matter which thread computes it or in what
    /// order documents arrive.
    pub fn fold_in(&self, doc: &[TermId], doc_key: u64) -> Vec<f32> {
        let k = self.phi.len();
        if doc.is_empty() || k == 0 {
            return uniform(k);
        }
        let master = derive_seed(self.seed, S_FOLDIN, self.epoch);
        let mut n_dk = vec![0u32; k];
        let mut init_rng = StdRng::seed_from_u64(derive_seed(master, doc_key, 0));
        let mut z: Vec<usize> = doc
            .iter()
            .map(|_| {
                let t = init_rng.gen_range(0..k);
                n_dk[t] += 1;
                t
            })
            .collect();
        let mut weights = vec![0.0f64; k];
        for sweep in 1..=self.foldin_iterations.max(1) {
            let mut rng = StdRng::seed_from_u64(derive_seed(master, doc_key, sweep as u64));
            for (i, &w) in doc.iter().enumerate() {
                let old = z[i];
                n_dk[old] -= 1;
                for (t, wt) in weights.iter_mut().enumerate() {
                    *wt = (n_dk[t] as f64 + self.alpha)
                        * self.phi[t].get(w as usize).copied().unwrap_or(0.0) as f64;
                }
                let new = sample_discrete(&mut rng, &weights);
                z[i] = new;
                n_dk[new] += 1;
            }
        }
        let denom = doc.len() as f64 + k as f64 * self.alpha;
        let mut theta: Vec<f32> =
            n_dk.iter().map(|&c| ((c as f64 + self.alpha) / denom) as f32).collect();
        normalize(&mut theta);
        theta
    }
}

/// An exponentially decayed sum of observed topic distributions — the
/// online counterpart of the batch centroid-of-`θ`s user model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicProfile {
    decay: f32,
    accumulated: Vec<f32>,
    documents: usize,
}

impl TopicProfile {
    /// An empty profile over `topics` dimensions. `decay` ∈ (0, 1]; 1.0
    /// means no forgetting (the undecayed sum the batch pin compares to).
    pub fn new(decay: f32, topics: usize) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1], got {decay}");
        TopicProfile { decay, accumulated: vec![0.0; topics], documents: 0 }
    }

    /// Apply one forgetting step without observing anything.
    pub fn decay_step(&mut self) {
        for x in &mut self.accumulated {
            *x *= self.decay;
        }
    }

    /// Decay, then fold a document's `θ` into the profile.
    pub fn observe(&mut self, theta: &[f32]) {
        self.decay_step();
        if self.accumulated.len() < theta.len() {
            self.accumulated.resize(theta.len(), 0.0);
        }
        for (a, &t) in self.accumulated.iter_mut().zip(theta) {
            *a += t;
        }
        self.documents += 1;
    }

    /// Cosine similarity between the profile and a candidate's `θ`,
    /// accumulated in f64 so the result is independent of summation
    /// grouping. 0 when either side is all-zero.
    pub fn score(&self, theta: &[f32]) -> f64 {
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (&a, &b) in self.accumulated.iter().zip(theta) {
            dot += a as f64 * b as f64;
            na += (a as f64) * (a as f64);
            nb += (b as f64) * (b as f64);
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Number of observed documents.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// The forgetting factor.
    pub fn decay(&self) -> f32 {
        self.decay
    }
}

/// A served document: the tweet's token ids plus its stable key (the tweet
/// id), which seeds the deterministic fold-in.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicDoc {
    /// Stable per-document seed key (the tweet id in `pmr-serve`).
    pub key: u64,
    /// Token ids over the background's vocabulary.
    pub tokens: Vec<TermId>,
}

/// The online topic model: a user profile served against a shared (and
/// periodically swapped) background.
#[derive(Debug, Clone)]
pub struct OnlineTopicModel {
    background: Arc<TopicBackground>,
    profile: TopicProfile,
}

impl OnlineTopicModel {
    /// A fresh model over `background` with the given forgetting factor.
    pub fn new(background: Arc<TopicBackground>, decay: f32) -> Self {
        let topics = background.topics();
        OnlineTopicModel { background, profile: TopicProfile::new(decay, topics) }
    }

    /// Rebuild from a snapshotted profile (the background is re-derived
    /// from its epoch by the restoring engine, not serialized).
    pub fn from_profile(profile: TopicProfile, background: Arc<TopicBackground>) -> Self {
        OnlineTopicModel { background, profile }
    }

    /// Swap in a newly retrained background; the profile carries over.
    pub fn set_background(&mut self, background: Arc<TopicBackground>) {
        self.background = background;
    }

    /// The current background.
    pub fn background(&self) -> &Arc<TopicBackground> {
        &self.background
    }

    /// Fold a document into the user profile.
    pub fn observe(&mut self, doc: &TopicDoc) {
        let theta = self.background.fold_in(&doc.tokens, doc.key);
        self.profile.observe(&theta);
    }

    /// Apply one forgetting step.
    pub fn decay_step(&mut self) {
        self.profile.decay_step();
    }

    /// Score a candidate document against the profile.
    pub fn score(&self, doc: &TopicDoc) -> f64 {
        let theta = self.background.fold_in(&doc.tokens, doc.key);
        self.profile.score(&theta)
    }

    /// The user profile.
    pub fn profile(&self) -> &TopicProfile {
        &self.profile
    }

    /// Number of observed documents.
    pub fn documents(&self) -> usize {
        self.profile.documents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::argmax;

    /// Two cleanly separated word communities over an 8-term vocabulary:
    /// terms 0–3 in even docs, 4–7 in odd docs.
    fn two_cluster_docs() -> Vec<Vec<TermId>> {
        (0..30)
            .map(|i| if i % 2 == 0 { vec![0, 1, 2, 3, 0, 1] } else { vec![4, 5, 6, 7, 4, 5] })
            .collect()
    }

    fn slices(docs: &[Vec<TermId>]) -> Vec<&[TermId]> {
        docs.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn bucketed_trainer_recovers_two_topics() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig { alpha: 0.1, ..OnlineTopicConfig::paper(2, 100, 7) };
        let bg = TopicBackground::train(&cfg, &slices(&docs), 8, 0);
        let pet = bg.fold_in(&[0, 1, 2], 1001);
        let code = bg.fold_in(&[4, 5, 6], 1002);
        let pet_top = argmax(&pet);
        let code_top = argmax(&code);
        assert_ne!(pet_top, code_top, "clusters must land in different topics");
        assert!(pet[pet_top] > 0.7, "confident assignment expected: {pet:?}");
        assert!(code[code_top] > 0.7, "confident assignment expected: {code:?}");
    }

    #[test]
    fn training_is_deterministic_in_seed_and_epoch() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(2, 30, 5);
        let a = TopicBackground::train(&cfg, &slices(&docs), 8, 3);
        let b = TopicBackground::train(&cfg, &slices(&docs), 8, 3);
        assert_eq!(a, b);
        let other_epoch = TopicBackground::train(&cfg, &slices(&docs), 8, 4);
        assert_ne!(a.phi(), other_epoch.phi(), "epochs must derive distinct sampler streams");
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(3, 20, 1);
        let bg = TopicBackground::train(&cfg, &slices(&docs), 8, 0);
        for row in bg.phi() {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "phi row sums to {s}");
        }
    }

    #[test]
    fn fold_in_is_a_pure_function_of_doc_and_key() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(2, 30, 5);
        let bg = TopicBackground::train(&cfg, &slices(&docs), 8, 0);
        let doc = [0u32, 1, 4, 2];
        let first = bg.fold_in(&doc, 77);
        // Interleave unrelated fold-ins: the result must not depend on
        // call order or history.
        let _ = bg.fold_in(&[4, 5], 12);
        let _ = bg.fold_in(&[1], 99);
        assert_eq!(bg.fold_in(&doc, 77), first);
        // Different keys derive independent sweep streams but may still
        // converge to the same θ on a well-separated background, so purity
        // (not inequality) is the pinned property.
    }

    #[test]
    fn fold_in_yields_valid_distributions() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(4, 20, 2);
        let bg = TopicBackground::train(&cfg, &slices(&docs), 8, 0);
        let theta = bg.fold_in(&[0, 5, 3, 600], 5);
        assert_eq!(theta.len(), 4);
        assert!((theta.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(theta.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn empty_document_folds_to_uniform() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(3, 10, 2);
        let bg = TopicBackground::train(&cfg, &slices(&docs), 8, 0);
        let theta = bg.fold_in(&[], 1);
        assert!(theta.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn profile_decay_forgets_and_decay_one_accumulates() {
        let mut decayed = TopicProfile::new(0.5, 2);
        decayed.observe(&[1.0, 0.0]);
        decayed.observe(&[0.0, 1.0]);
        // First θ halved once, second fresh.
        assert!((decayed.score(&[0.0, 1.0]) - (1.0 / (0.25f64 + 1.0).sqrt())).abs() < 1e-6);

        let mut sum = TopicProfile::new(1.0, 2);
        sum.observe(&[1.0, 0.0]);
        sum.observe(&[0.0, 1.0]);
        let s = sum.score(&[1.0, 0.0]);
        assert!((s - 1.0 / 2.0f64.sqrt()).abs() < 1e-6, "undecayed sum is symmetric: {s}");
    }

    #[test]
    fn empty_profile_scores_zero() {
        let profile = TopicProfile::new(1.0, 3);
        assert_eq!(profile.score(&[0.5, 0.3, 0.2]), 0.0);
    }

    #[test]
    fn online_model_round_trips_profile_through_serde() {
        let docs = two_cluster_docs();
        let cfg = OnlineTopicConfig::paper(2, 20, 3);
        let bg = Arc::new(TopicBackground::train(&cfg, &slices(&docs), 8, 0));
        let mut model = OnlineTopicModel::new(Arc::clone(&bg), 0.9);
        model.observe(&TopicDoc { key: 1, tokens: vec![0, 1, 2] });
        model.observe(&TopicDoc { key: 2, tokens: vec![0, 3] });
        let wire = serde_json::to_string(model.profile()).expect("profile serializes");
        let profile: TopicProfile = serde_json::from_str(&wire).expect("profile parses");
        let restored = OnlineTopicModel::from_profile(profile, bg);
        let probe = TopicDoc { key: 9, tokens: vec![0, 1] };
        assert_eq!(model.score(&probe), restored.score(&probe));
        assert_eq!(restored.documents(), 2);
    }
}
