//! The common topic-model interface plus shared sampling utilities.

use rand::rngs::StdRng;
use rand::Rng;

use pmr_text::vocab::TermId;

/// Anything that can turn a (test or training) tweet into a dense topic
/// distribution. Training happens in each model's `train` constructor; this
/// trait only covers what the recommendation framework needs afterwards.
pub trait TopicModel: Send + Sync {
    /// Dimensionality of the inferred distributions.
    fn num_topics(&self) -> usize;

    /// Infer the topic distribution `θ_d` of a document given the trained
    /// model. Deterministic given the RNG state. Returns a distribution
    /// (non-negative, sums to 1); an empty or fully out-of-vocabulary
    /// document yields the uniform distribution.
    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32>;
}

/// Sample an index from unnormalized non-negative weights.
///
/// Falls back to the last index on floating-point underflow and to a
/// uniform draw when all weights are zero.
pub(crate) fn sample_discrete(rng: &mut StdRng, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.gen_range(0..weights.len());
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// The uniform distribution over `k` topics.
pub(crate) fn uniform(k: usize) -> Vec<f32> {
    vec![1.0 / k as f32; k.max(1)]
}

/// Normalize a non-negative vector into a distribution in place (uniform if
/// the sum is zero).
pub(crate) fn normalize(v: &mut [f32]) {
    let sum: f32 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f32;
        v.iter_mut().for_each(|x| *x = u);
    }
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7).
/// Accurate to ~1e-13 for x > 0, which is far beyond what Gibbs likelihood
/// ratios need.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Argmax helper shared by the model test suites.
#[cfg(test)]
pub(crate) fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_discrete_respects_point_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(sample_discrete(&mut rng, &[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn sample_discrete_handles_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = sample_discrete(&mut rng, &[0.0, 0.0]);
        assert!(idx < 2);
    }

    #[test]
    fn sample_discrete_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_discrete(&mut rng, &[1.0, 1.0, 1.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normalize_makes_distributions() {
        let mut v = vec![1.0, 3.0];
        normalize(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.5, 0.5]);
    }

    #[test]
    fn uniform_sums_to_one() {
        let u = uniform(7);
        assert!((u.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence() {
        for x in [0.3, 1.7, 4.2, 11.0, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::btm::{BtmConfig, BtmModel};
    use crate::corpus::TopicCorpus;
    use crate::lda::{LdaConfig, LdaModel};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn arb_corpus() -> impl Strategy<Value = Vec<Vec<String>>> {
        proptest::collection::vec(proptest::collection::vec("[a-f]{1,3}", 0..10), 1..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// LDA inference yields a valid distribution on any corpus and any
        /// (possibly out-of-vocabulary) query document.
        #[test]
        fn lda_inference_is_a_distribution(docs in arb_corpus(), query in proptest::collection::vec("[a-h]{1,3}", 0..8)) {
            let corpus = TopicCorpus::from_token_docs(&docs);
            let model = LdaModel::train(&LdaConfig::paper(3, 10, 1), &corpus);
            let mut rng = StdRng::seed_from_u64(2);
            let theta = model.infer(&corpus.encode(&query), &mut rng);
            prop_assert_eq!(theta.len(), 3);
            prop_assert!((theta.iter().sum::<f32>() - 1.0).abs() < 1e-3);
            prop_assert!(theta.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        /// Same for BTM.
        #[test]
        fn btm_inference_is_a_distribution(docs in arb_corpus(), query in proptest::collection::vec("[a-h]{1,3}", 0..8)) {
            let corpus = TopicCorpus::from_token_docs(&docs);
            let model = BtmModel::train(&BtmConfig::paper(3, 10, 1), &corpus);
            let mut rng = StdRng::seed_from_u64(2);
            let theta = model.infer(&corpus.encode(&query), &mut rng);
            prop_assert_eq!(theta.len(), 3);
            prop_assert!((theta.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
    }
}
