//! The training corpus for topic models: interned pseudo-documents.

use serde::{Deserialize, Serialize};

use pmr_text::vocab::{TermId, Vocabulary};

/// A topic-model training corpus: documents as interned token-id sequences
/// over a shared vocabulary, with optional per-document label sets (used by
/// Labeled LDA).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TopicCorpus {
    /// Shared vocabulary over all documents.
    pub vocab: Vocabulary,
    /// Documents as token-id sequences.
    pub docs: Vec<Vec<TermId>>,
    /// Per-document label sets (parallel to `docs`), if labeling was run.
    pub labels: Vec<Vec<crate::label::LabelId>>,
}

impl TopicCorpus {
    /// Build a corpus from tokenized documents, interning the vocabulary.
    /// Empty documents are kept (they simply contribute nothing), so that
    /// indexes into `docs` remain aligned with the caller's document list.
    pub fn from_token_docs<D, S>(docs: D) -> Self
    where
        D: IntoIterator,
        D::Item: AsRef<[S]>,
        S: AsRef<str>,
    {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Vec<TermId>> = docs
            .into_iter()
            .map(|d| d.as_ref().iter().map(|t| vocab.add(t.as_ref())).collect())
            .collect();
        TopicCorpus { vocab, docs, labels: Vec::new() }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Vocabulary size `|V|`.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Total number of tokens across all documents.
    pub fn total_tokens(&self) -> usize {
        self.docs.iter().map(Vec::len).sum()
    }

    /// Map a tokenized document onto this corpus's vocabulary, dropping
    /// out-of-vocabulary tokens (used at inference time for test tweets).
    pub fn encode<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<TermId> {
        tokens.iter().filter_map(|t| self.vocab.get(t.as_ref())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_interns() {
        let c = TopicCorpus::from_token_docs(vec![vec!["a", "b", "a"], vec!["b", "c"], vec![]]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.vocab_size(), 3);
        assert_eq!(c.total_tokens(), 5);
        assert_eq!(c.docs[0], vec![0, 1, 0]);
        assert!(c.docs[2].is_empty());
    }

    #[test]
    fn encode_drops_oov() {
        let c = TopicCorpus::from_token_docs(vec![vec!["a", "b"]]);
        assert_eq!(c.encode(&["a", "zzz", "b"]), vec![0, 1]);
        assert!(c.encode(&["zzz"]).is_empty());
    }
}
