//! Hierarchical LDA over the nested Chinese Restaurant Process (Blei,
//! Griffiths, Jordan & Tenenbaum 2003).
//!
//! Topics are organized in an `L`-level tree; every document lives on a
//! single root-to-leaf path and draws each word from one of the `L` topics
//! on that path. The tree's branching is nonparametric: when a document
//! resamples its path it may open a new branch at any level with
//! probability governed by the nCRP concentration `γ`.
//!
//! The Gibbs sampler alternates the two standard moves:
//!
//! 1. **Path resampling** — detach the document, score every candidate path
//!    (existing paths plus one "new child" branch at each internal node) by
//!    nCRP prior × Dirichlet-multinomial likelihood of the document's
//!    per-level words, sample, and re-attach.
//! 2. **Level resampling** — per token, `P(l) ∝ (n_dl + α) ·
//!    (n_{c_l,w} + η) / (n_{c_l} + V·η)`, matching the paper's fixed-depth
//!    variant with a `Dir(α)` prior over levels.
//!
//! The paper runs HLDA only with user pooling and 3 levels (its other
//! configurations violated the 5-day training cap — Table 4).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::corpus::TopicCorpus;
use crate::model::{ln_gamma, normalize, sample_discrete, uniform, TopicModel};

/// HLDA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HldaConfig {
    /// Tree depth (the paper fixes 3).
    pub levels: usize,
    /// Dirichlet prior over levels (Table 4 uses {10, 20}).
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions (Table 4: {0.1, 0.5}).
    pub eta: f64,
    /// nCRP concentration (Table 4: {0.5, 1.0}).
    pub gamma: f64,
    /// Gibbs sweeps over the training corpus.
    pub iterations: usize,
    /// Path/level sweeps per inferred document.
    pub infer_iterations: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl HldaConfig {
    /// The paper's fixed-depth configuration.
    pub fn paper(alpha: f64, eta: f64, gamma: f64, iterations: usize, seed: u64) -> Self {
        HldaConfig { levels: 3, alpha, eta, gamma, iterations, infer_iterations: 10, seed }
    }
}

/// A tree node: one topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    parent: usize,
    children: Vec<usize>,
    level: usize,
    /// Word counts of tokens assigned to this node.
    counts: HashMap<TermId, u32>,
    /// Total tokens at this node.
    total: u32,
    /// Documents whose path passes through this node.
    docs: u32,
    alive: bool,
}

impl Node {
    fn new(parent: usize, level: usize) -> Self {
        Node {
            parent,
            children: Vec::new(),
            level,
            counts: HashMap::new(),
            total: 0,
            docs: 0,
            alive: true,
        }
    }
}

/// A trained HLDA model: the frozen topic tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HldaModel {
    nodes: Vec<Node>,
    /// Live node ids in stable order; distributions index into this list.
    live: Vec<usize>,
    levels: usize,
    alpha: f64,
    eta: f64,
    gamma: f64,
    vocab_size: usize,
    infer_iterations: usize,
    theta_train: Vec<Vec<f32>>,
}

/// Mutable training state.
struct Sampler<'a> {
    cfg: &'a HldaConfig,
    corpus: &'a TopicCorpus,
    nodes: Vec<Node>,
    root: usize,
    /// Per-document path (node id per level).
    paths: Vec<Vec<usize>>,
    /// Per-token level assignments.
    levels_z: Vec<Vec<usize>>,
    rng: StdRng,
}

impl<'a> Sampler<'a> {
    fn new(cfg: &'a HldaConfig, corpus: &'a TopicCorpus) -> Self {
        let mut nodes = vec![Node::new(usize::MAX, 0)];
        let root = 0;
        // Initial shared path root → c1 → … → c_{L-1}.
        let mut prev = root;
        for l in 1..cfg.levels {
            let id = nodes.len();
            nodes.push(Node::new(prev, l));
            nodes[prev].children.push(id);
            prev = id;
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        let shared_path: Vec<usize> = {
            let mut p = vec![root];
            let mut cur = root;
            for _ in 1..cfg.levels {
                cur = nodes[cur].children[0];
                p.push(cur);
            }
            p
        };
        let mut s = Sampler {
            cfg,
            corpus,
            nodes,
            root,
            paths: vec![shared_path; corpus.len()],
            levels_z: Vec::with_capacity(corpus.len()),
            rng,
        };
        for d in 0..corpus.len() {
            let z: Vec<usize> =
                corpus.docs[d].iter().map(|_| s.rng.gen_range(0..cfg.levels)).collect();
            s.levels_z.push(z);
            s.attach(d);
        }
        s
    }

    /// Add document `d`'s counts and path membership to the tree.
    fn attach(&mut self, d: usize) {
        let path = self.paths[d].clone();
        for &n in &path {
            self.nodes[n].docs += 1;
        }
        for (i, &w) in self.corpus.docs[d].iter().enumerate() {
            let node = path[self.levels_z[d][i]];
            *self.nodes[node].counts.entry(w).or_insert(0) += 1;
            self.nodes[node].total += 1;
        }
    }

    /// Remove document `d` from the tree, pruning emptied branches.
    fn detach(&mut self, d: usize) {
        let path = self.paths[d].clone();
        for (i, &w) in self.corpus.docs[d].iter().enumerate() {
            let node = path[self.levels_z[d][i]];
            // pmr-lint: allow(lib-unwrap): attach/detach are strictly paired; a missing count means corrupted sampler state, which must crash rather than silently skew the posterior
            let c = self.nodes[node].counts.get_mut(&w).expect("count was added at attach");
            *c -= 1;
            if *c == 0 {
                self.nodes[node].counts.remove(&w);
            }
            self.nodes[node].total -= 1;
        }
        for &n in path.iter().rev() {
            self.nodes[n].docs -= 1;
            if self.nodes[n].docs == 0 && n != self.root {
                // Prune: unlink from parent.
                let p = self.nodes[n].parent;
                self.nodes[p].children.retain(|&c| c != n);
                self.nodes[n].alive = false;
            }
        }
    }

    /// Enumerate candidate paths from `node` down to depth `levels`.
    /// `usize::MAX` marks "new node here and below".
    fn candidate_paths(
        &self,
        node: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<(Vec<usize>, f64)>,
        log_prior: f64,
    ) {
        if prefix.len() == self.cfg.levels {
            out.push((prefix.clone(), log_prior));
            return;
        }
        let denom = (self.nodes[node].docs as f64 + self.cfg.gamma).ln();
        for &c in &self.nodes[node].children {
            let lp = (self.nodes[c].docs as f64).ln() - denom;
            prefix.push(c);
            self.candidate_paths(c, prefix, out, log_prior + lp);
            prefix.pop();
        }
        // New branch: everything below is new too (prior mass of the whole
        // new subtree is just the first γ step — deeper new nodes are
        // certain).
        let lp = self.cfg.gamma.ln() - denom;
        let remaining = self.cfg.levels - prefix.len();
        let mut p = prefix.clone();
        p.extend(std::iter::repeat_n(usize::MAX, remaining));
        out.push((p, log_prior + lp));
    }

    /// Dirichlet-multinomial log likelihood of the document's level-`l`
    /// words under `node` (or an empty new node for `usize::MAX`).
    fn level_likelihood(&self, d: usize, l: usize, node: usize) -> f64 {
        // Gather the document's level-l word counts.
        let mut local: HashMap<TermId, u32> = HashMap::new();
        let mut n_dl = 0u32;
        for (i, &w) in self.corpus.docs[d].iter().enumerate() {
            if self.levels_z[d][i] == l {
                *local.entry(w).or_insert(0) += 1;
                n_dl += 1;
            }
        }
        if n_dl == 0 {
            return 0.0;
        }
        let v = self.corpus.vocab_size() as f64;
        let eta = self.cfg.eta;
        let (node_total, node_count): (u32, Option<&HashMap<TermId, u32>>) = if node == usize::MAX {
            (0, None)
        } else {
            (self.nodes[node].total, Some(&self.nodes[node].counts))
        };
        let mut ll = ln_gamma(node_total as f64 + v * eta)
            - ln_gamma(node_total as f64 + n_dl as f64 + v * eta);
        for (&w, &c) in &local {
            let base = node_count.and_then(|m| m.get(&w)).copied().unwrap_or(0) as f64;
            ll += ln_gamma(base + c as f64 + eta) - ln_gamma(base + eta);
        }
        ll
    }

    /// One full Gibbs sweep: path then levels, per document.
    fn sweep(&mut self) {
        for d in 0..self.corpus.len() {
            self.resample_path(d);
            self.resample_levels(d);
        }
    }

    fn resample_path(&mut self, d: usize) {
        self.detach(d);
        let mut cands = Vec::new();
        self.candidate_paths(self.root, &mut vec![self.root], &mut cands, 0.0);
        let scores: Vec<f64> = cands
            .iter()
            .map(|(path, log_prior)| {
                let mut s = *log_prior;
                for (l, &node) in path.iter().enumerate().skip(1) {
                    s += self.level_likelihood(d, l, node);
                }
                // Level-0 words always live at the shared root; their
                // likelihood is path-independent and cancels.
                s
            })
            .collect();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let choice = sample_discrete(&mut self.rng, &weights);
        let mut new_path = cands[choice].0.clone();
        // Materialize new nodes.
        for l in 1..self.cfg.levels {
            if new_path[l] == usize::MAX {
                let parent = new_path[l - 1];
                let id = self.nodes.len();
                self.nodes.push(Node::new(parent, l));
                self.nodes[parent].children.push(id);
                new_path[l] = id;
            }
        }
        self.paths[d] = new_path;
        self.attach(d);
    }

    fn resample_levels(&mut self, d: usize) {
        let path = self.paths[d].clone();
        let v = self.corpus.vocab_size() as f64;
        let eta = self.cfg.eta;
        // Per-level token counts of this document.
        let mut n_dl = vec![0u32; self.cfg.levels];
        for &z in &self.levels_z[d] {
            n_dl[z] += 1;
        }
        let doc = self.corpus.docs[d].clone();
        for (i, &w) in doc.iter().enumerate() {
            let old = self.levels_z[d][i];
            // Remove token.
            n_dl[old] -= 1;
            let node = path[old];
            // pmr-lint: allow(lib-unwrap): the token was counted when its level was assigned; absence means corrupted sampler state, which must crash loudly
            let c = self.nodes[node].counts.get_mut(&w).expect("token present");
            *c -= 1;
            if *c == 0 {
                self.nodes[node].counts.remove(&w);
            }
            self.nodes[node].total -= 1;
            // Sample level.
            let weights: Vec<f64> = (0..self.cfg.levels)
                .map(|l| {
                    let n = path[l];
                    (n_dl[l] as f64 + self.cfg.alpha)
                        * (self.nodes[n].counts.get(&w).copied().unwrap_or(0) as f64 + eta)
                        / (self.nodes[n].total as f64 + v * eta)
                })
                .collect();
            let new = sample_discrete(&mut self.rng, &weights);
            self.levels_z[d][i] = new;
            n_dl[new] += 1;
            let node = path[new];
            *self.nodes[node].counts.entry(w).or_insert(0) += 1;
            self.nodes[node].total += 1;
        }
    }
}

impl HldaModel {
    /// Train with nCRP path + level Gibbs sampling.
    pub fn train(cfg: &HldaConfig, corpus: &TopicCorpus) -> Self {
        assert!(cfg.levels >= 2, "a hierarchy needs at least two levels");
        let mut s = Sampler::new(cfg, corpus);
        for _ in 0..cfg.iterations {
            let _iter = pmr_obs::timer("gibbs_iter.hlda");
            s.sweep();
        }
        let live: Vec<usize> =
            (0..s.nodes.len()).filter(|&n| s.nodes[n].alive && s.nodes[n].docs > 0).collect();
        let index_of: HashMap<usize, usize> =
            live.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // Training θ over live nodes: per-document level counts mapped to
        // the document's path.
        let theta_train: Vec<Vec<f32>> = (0..corpus.len())
            .map(|d| {
                let mut th = vec![0.0f32; live.len()];
                let denom = corpus.docs[d].len() as f64 + cfg.levels as f64 * cfg.alpha;
                let mut n_dl = vec![0u32; cfg.levels];
                for &z in &s.levels_z[d] {
                    n_dl[z] += 1;
                }
                for (l, &node) in s.paths[d].iter().enumerate() {
                    if let Some(&i) = index_of.get(&node) {
                        th[i] = ((n_dl[l] as f64 + cfg.alpha) / denom) as f32;
                    }
                }
                normalize(&mut th);
                th
            })
            .collect();
        HldaModel {
            nodes: s.nodes,
            live,
            levels: cfg.levels,
            alpha: cfg.alpha,
            eta: cfg.eta,
            gamma: cfg.gamma,
            vocab_size: corpus.vocab_size(),
            infer_iterations: cfg.infer_iterations,
            theta_train,
        }
    }

    /// Number of live topics (tree nodes) discovered.
    pub fn num_nodes(&self) -> usize {
        self.live.len()
    }

    /// Depth of the trained tree.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The topic distribution of training document `d`.
    pub fn theta_train(&self, d: usize) -> &[f32] {
        &self.theta_train[d]
    }

    /// Live root-to-leaf paths of the frozen tree.
    fn frozen_paths(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut stack = vec![vec![0usize]];
        while let Some(p) = stack.pop() {
            // pmr-lint: allow(lib-unwrap): the stack is seeded with vec![0] and only ever grows paths by one node
            let last = *p.last().expect("paths are never empty");
            if p.len() == self.levels {
                out.push(p);
                continue;
            }
            let kids: Vec<usize> = self.nodes[last]
                .children
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].alive && self.nodes[c].docs > 0)
                .collect();
            if kids.is_empty() {
                // Dead-end (shouldn't happen on live trees): pad with last.
                let mut q = p.clone();
                while q.len() < self.levels {
                    q.push(last);
                }
                out.push(q);
                continue;
            }
            for c in kids {
                let mut q = p.clone();
                q.push(c);
                stack.push(q);
            }
        }
        out
    }
}

impl TopicModel for HldaModel {
    fn num_topics(&self) -> usize {
        self.live.len()
    }

    /// Inference against the frozen tree: pick the MAP path among live
    /// paths, Gibbs-resample levels along it, and read θ off the path's
    /// nodes.
    fn infer(&self, doc: &[TermId], rng: &mut StdRng) -> Vec<f32> {
        let k = self.live.len();
        if doc.is_empty() || k == 0 {
            return uniform(k);
        }
        let paths = self.frozen_paths();
        let v = self.vocab_size as f64;
        // Initial levels: uniform random.
        let mut z: Vec<usize> = doc.iter().map(|_| rng.gen_range(0..self.levels)).collect();
        let mut best_path = paths[0].clone();
        for _ in 0..self.infer_iterations.max(1) {
            // Path by prior × likelihood with the frozen counts.
            let scores: Vec<f64> = paths
                .iter()
                .map(|p| {
                    let mut s = 0.0;
                    for (l, &node_id) in p.iter().enumerate().skip(1) {
                        let node = &self.nodes[node_id];
                        s += (node.docs as f64 + self.gamma).ln();
                        for (i, &w) in doc.iter().enumerate() {
                            if z[i] == l {
                                s += ((node.counts.get(&w).copied().unwrap_or(0) as f64
                                    + self.eta)
                                    / (node.total as f64 + v * self.eta))
                                    .ln();
                            }
                        }
                    }
                    s
                })
                .collect();
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
            best_path = paths[sample_discrete(rng, &weights)].clone();
            // Levels along the chosen path.
            let mut n_dl = vec![0u32; self.levels];
            for &l in &z {
                n_dl[l] += 1;
            }
            for (i, &w) in doc.iter().enumerate() {
                n_dl[z[i]] -= 1;
                let weights: Vec<f64> = (0..self.levels)
                    .map(|l| {
                        let node = &self.nodes[best_path[l]];
                        (n_dl[l] as f64 + self.alpha)
                            * (node.counts.get(&w).copied().unwrap_or(0) as f64 + self.eta)
                            / (node.total as f64 + v * self.eta)
                    })
                    .collect();
                z[i] = sample_discrete(rng, &weights);
                n_dl[z[i]] += 1;
            }
        }
        let index_of: HashMap<usize, usize> =
            self.live.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut th = vec![0.0f32; k];
        let denom = doc.len() as f64 + self.levels as f64 * self.alpha;
        let mut n_dl = vec![0u32; self.levels];
        for &l in &z {
            n_dl[l] += 1;
        }
        for (l, &node) in best_path.iter().enumerate() {
            if let Some(&i) = index_of.get(&node) {
                th[i] += ((n_dl[l] as f64 + self.alpha) / denom) as f32;
            }
        }
        normalize(&mut th);
        th
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_corpus() -> TopicCorpus {
        let mut docs = Vec::new();
        for i in 0..24 {
            if i % 2 == 0 {
                docs.push(vec!["the", "cat", "dog", "pet", "cat", "dog"]);
            } else {
                docs.push(vec!["the", "rust", "code", "bug", "rust", "code"]);
            }
        }
        TopicCorpus::from_token_docs(docs)
    }

    fn paper_cfg(iterations: usize, seed: u64) -> HldaConfig {
        HldaConfig::paper(10.0, 0.1, 0.5, iterations, seed)
    }

    #[test]
    fn grows_a_tree_with_multiple_paths() {
        let corpus = two_cluster_corpus();
        let model = HldaModel::train(&paper_cfg(60, 3), &corpus);
        assert!(model.num_nodes() >= 3, "tree too small: {} nodes", model.num_nodes());
        assert!(model.frozen_paths().len() >= 2, "expected at least two leaf paths");
    }

    #[test]
    fn clusters_separate_into_different_paths() {
        let corpus = two_cluster_corpus();
        let model = HldaModel::train(&paper_cfg(60, 3), &corpus);
        let mut rng = StdRng::seed_from_u64(8);
        let pets = model.infer(&corpus.encode(&["cat", "dog", "pet", "cat"]), &mut rng);
        let code = model.infer(&corpus.encode(&["rust", "code", "bug", "rust"]), &mut rng);
        // The distributions should disagree on at least the leaf topic.
        let cos: f32 = {
            let dot: f32 = pets.iter().zip(&code).map(|(a, b)| a * b).sum();
            let na: f32 = pets.iter().map(|a| a * a).sum::<f32>().sqrt();
            let nb: f32 = code.iter().map(|a| a * a).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        assert!(cos < 0.9, "cluster distributions too similar: cos={cos}");
    }

    #[test]
    fn distributions_are_normalized_over_nodes() {
        let corpus = two_cluster_corpus();
        let model = HldaModel::train(&paper_cfg(30, 5), &corpus);
        let mut rng = StdRng::seed_from_u64(8);
        let th = model.infer(&corpus.docs[0], &mut rng);
        assert_eq!(th.len(), model.num_topics());
        assert!((th.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let train = model.theta_train(0);
        assert!((train.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_doc_is_uniform() {
        let corpus = two_cluster_corpus();
        let model = HldaModel::train(&paper_cfg(20, 5), &corpus);
        let mut rng = StdRng::seed_from_u64(8);
        let th = model.infer(&[], &mut rng);
        assert!((th.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tree_respects_depth() {
        let corpus = two_cluster_corpus();
        let model = HldaModel::train(&paper_cfg(30, 7), &corpus);
        for p in model.frozen_paths() {
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = two_cluster_corpus();
        let a = HldaModel::train(&paper_cfg(20, 9), &corpus);
        let b = HldaModel::train(&paper_cfg(20, 9), &corpus);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.theta_train(0), b.theta_train(0));
    }
}
