//! The feature cache must make repeated feature access allocation-free:
//! lowercasing and gram extraction happen once per corpus, and every later
//! lookup is a borrow. Guarded with a counting global allocator — the old
//! hot path re-ran `raw_text(id).to_lowercase()` and rebuilt `Vec<String>`
//! grams on every call, which this test would catch immediately.
//!
//! This is an integration test (its own crate), so the library's
//! `#![forbid(unsafe_code)]` does not apply to the allocator shim below.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pmr_core::{GramKind, PreparedCorpus, SplitConfig};
use pmr_sim::{generate_corpus, ScalePreset, SimConfig, TweetId};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One test (so no parallel test thread allocates mid-measurement).
#[test]
fn cached_feature_access_does_not_allocate() {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 7));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("smoke corpus is well-formed");
    let probe: Vec<TweetId> = (0..200u32).map(TweetId).collect();

    // Sanity: the counter sees the old per-call pattern allocating.
    let before = allocations();
    let mut old_path_grams = 0usize;
    for &id in &probe {
        old_path_grams += pmr_text::char_ngrams(&prepared.raw_text(id).to_lowercase(), 3).len();
    }
    assert!(allocations() > before, "counting allocator must observe the uncached path");

    // Warm the cache: one lowercase pass + one table build per key.
    let table = prepared.gram_table(GramKind::Char, 3);
    let _ = prepared.lowercased_text(TweetId(0));

    // Repeated access afterwards must not allocate at all: texts and gram
    // id sequences come back as borrows, and a second `gram_table` lookup
    // is a mutex-guarded map read plus an `Arc` clone.
    let before = allocations();
    let mut cached_grams = 0usize;
    let mut text_bytes = 0usize;
    for _ in 0..3 {
        for &id in &probe {
            cached_grams += table.doc(id).len();
            text_bytes += prepared.lowercased_text(id).len();
        }
    }
    let again = prepared.gram_table(GramKind::Char, 3);
    assert_eq!(allocations(), before, "cached feature access must be allocation-free");
    assert!(text_bytes > 0, "lowercased texts must be non-trivial");

    assert!(std::sync::Arc::ptr_eq(&table, &again), "repeat lookups share one table");
    assert_eq!(cached_grams, 3 * old_path_grams, "cached grams must match the uncached ones");
}
