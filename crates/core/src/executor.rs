//! Parallel sweep execution: a work-distributing thread pool for fanning
//! independent `(configuration, source)` runs across CPU cores.
//!
//! # Design
//!
//! [`run_tasks`] pushes every index-tagged task into an unbounded
//! [`crossbeam::channel`], spawns `jobs` scoped workers that each pull the
//! next task the moment they finish the previous one (natural load
//! balancing — a cheap TN run never waits behind an HDP run), and sorts the
//! index-tagged results back into input order. Because each run derives all
//! of its randomness from fixed seeds (see the audit below), the output is
//! **byte-identical regardless of `jobs` or scheduling**, except for the
//! wall-clock `train_time`/`test_time` fields of each measurement.
//!
//! # Send/Sync audit
//!
//! The sweep closure captures `&ExperimentRunner` (which borrows
//! [`crate::prepare::PreparedCorpus`]) plus `&RunnerOptions`. All of these
//! are plain owned data — `Vec`s, `HashMap`s, strings, numbers — with no
//! interior mutability (`Cell`/`RefCell`) and no `Rc`, so they are `Sync`
//! and shared freely across workers. Every random decision inside a run
//! seeds a fresh `StdRng` from per-(user, document, configuration)
//! constants: per-document topic inference uses
//! `opts.seed ^ id.0 * 0x2545_F491_4F6C_DD1D`, per-user splits were fixed
//! at corpus preparation, and the random baseline seeds per user. Nothing
//! reads global mutable state, so concurrent runs cannot perturb each
//! other's scores.
//!
//! # Nested parallelism
//!
//! Individual runs also parallelize internally (per-document inference in
//! `recommender::parallel_map`). To avoid `jobs × n_cpu` oversubscription
//! the pool publishes an *inner-thread hint* ([`set_inner_threads`]) that
//! `parallel_map` consults; [`inner_threads_for_jobs`] installs
//! `max(1, n_cpu / jobs)` for the duration of a sweep and restores the
//! previous hint on drop.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// 0 = unset (fall back to [`default_jobs`]).
static INNER_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Publish a hint for how many threads *nested* parallel sections (e.g.
/// per-document inference) should use. `0` resets to the default.
pub fn set_inner_threads(n: usize) {
    INNER_THREADS.store(n, Ordering::Relaxed);
}

/// The current inner-thread hint, defaulting to [`default_jobs`].
pub fn inner_threads() -> usize {
    match INNER_THREADS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// Scoped inner-thread override: holds `max(1, n_cpu / jobs)` until dropped.
#[derive(Debug)]
pub struct InnerThreadsGuard {
    prev: usize,
}

/// Install the inner-thread hint appropriate for an outer pool of `jobs`
/// workers. Restores the previous hint when the guard drops.
pub fn inner_threads_for_jobs(jobs: usize) -> InnerThreadsGuard {
    let hint = (default_jobs() / jobs.max(1)).max(1);
    let prev = INNER_THREADS.swap(hint, Ordering::Relaxed);
    InnerThreadsGuard { prev }
}

impl Drop for InnerThreadsGuard {
    fn drop(&mut self) {
        INNER_THREADS.store(self.prev, Ordering::Relaxed);
    }
}

/// A shared atomic progress counter that reports to stderr every `every`
/// completions (and on the final one). Safe to tick from any worker.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    every: usize,
    done: AtomicUsize,
    printed: AtomicBool,
    finished: AtomicBool,
    started: Instant,
}

impl Progress {
    /// A counter over `total` tasks reporting every `every` ticks.
    pub fn new(total: usize, every: usize) -> Progress {
        Progress {
            total,
            every: every.max(1),
            done: AtomicUsize::new(0),
            printed: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            // pmr-lint: allow(wall-clock): feeds the stderr progress line only, never a result artifact
            started: Instant::now(),
        }
    }

    /// Record one completed task; prints a carriage-return status line at
    /// the reporting interval. Returns the new completion count.
    pub fn tick(&self) -> usize {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.every) || done == self.total {
            self.printed.store(true, Ordering::Relaxed);
            eprint!(
                "\r  {done}/{} runs ({:.0}s elapsed)   ",
                self.total,
                self.started.elapsed().as_secs_f64()
            );
            let _ = std::io::stderr().flush();
        }
        done
    }

    /// Completed count so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Terminate the carriage-return status line. Idempotent, and a no-op
    /// when no status line was ever printed — a zero-task or
    /// silent-interval sweep must not emit a stray blank line.
    pub fn finish(&self) {
        if self.printed.load(Ordering::Relaxed) && !self.finished.swap(true, Ordering::Relaxed) {
            eprintln!();
            let _ = std::io::stderr().flush();
        }
    }
}

impl Drop for Progress {
    /// Terminate the status line even when the sweep unwinds mid-run, so a
    /// panic message never lands on the tail of a carriage-return line.
    fn drop(&mut self) {
        self.finish();
    }
}

/// Run `f(index, task)` for every task on a pool of `jobs` workers and
/// return the results **in input order**, regardless of which worker
/// finished which task when.
///
/// Workers pull tasks from a shared channel as they become free, so
/// heterogeneous task costs balance automatically. With `jobs <= 1` (or a
/// single task) the tasks run inline on the caller's thread — same results,
/// no pool.
pub fn run_tasks<T, R, F>(tasks: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let jobs = jobs.clamp(1, n.max(1));
    // Observability (no-ops unless a recorder is installed): publish the
    // pool shape and measure per-task / per-worker time on the injected
    // obs clock, never on wall-clock reads of our own.
    pmr_obs::gauge_set("executor.jobs", jobs as f64);
    pmr_obs::gauge_set("executor.inner_threads_hint", inner_threads() as f64);
    pmr_obs::counter_add("executor.tasks_submitted", n as u64);
    let pool_start = pmr_obs::now();
    if jobs <= 1 {
        let out = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let _timer = pmr_obs::timer("executor.task");
                f(i, t)
            })
            .collect();
        if let (Some(t0), Some(t1)) = (pool_start, pmr_obs::now()) {
            pmr_obs::observe_duration("executor.pool_wall", t1.saturating_sub(t0));
        }
        return out;
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    for pair in tasks.into_iter().enumerate() {
        if task_tx.send(pair).is_err() {
            unreachable!("task receiver is still alive");
        }
    }
    // Close the task queue: workers drain it and exit on disconnect.
    drop(task_tx);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                let mut completed = 0u64;
                while let Ok((i, task)) = task_rx.recv() {
                    let picked = pmr_obs::now();
                    if let (Some(t0), Some(t1)) = (pool_start, picked) {
                        // Every task is enqueued before the pool starts, so
                        // pickup − pool start is its queue wait.
                        pmr_obs::observe_duration("executor.queue_wait", t1.saturating_sub(t0));
                    }
                    pmr_obs::event(
                        "executor",
                        "task_start",
                        &[("task", i.into()), ("worker", worker.into())],
                    );
                    let out = f(i, task);
                    if let (Some(t1), Some(t2)) = (picked, pmr_obs::now()) {
                        let took = t2.saturating_sub(t1);
                        busy += took;
                        pmr_obs::observe_duration("executor.task", took);
                    }
                    completed += 1;
                    pmr_obs::event(
                        "executor",
                        "task_end",
                        &[("task", i.into()), ("worker", worker.into())],
                    );
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                }
                // Per-worker utilization: busy time over the pool's wall
                // time (compared offline against `executor.pool_wall`).
                pmr_obs::observe_duration("executor.worker_busy", busy);
                pmr_obs::event(
                    "executor",
                    "worker_done",
                    &[("worker", worker.into()), ("tasks", completed.into())],
                );
            });
        }
        drop(task_rx);
        drop(result_tx);
        // Collect on the caller's thread while workers run; the channel
        // disconnects once the last worker drops its sender.
        while let Ok(pair) = result_rx.recv() {
            tagged.push(pair);
        }
    });
    if let (Some(t0), Some(t1)) = (pool_start, pmr_obs::now()) {
        pmr_obs::observe_duration("executor.pool_wall", t1.saturating_sub(t0));
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n, "every task produces exactly one result");
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let tasks: Vec<u64> = (0..97).collect();
        // Uneven task costs: make early tasks slow so a naive
        // completion-order collect would scramble the output.
        let out = run_tasks(tasks.clone(), 4, |i, t| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            t * 2
        });
        assert_eq!(out, tasks.iter().map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_matches_parallel() {
        let tasks: Vec<u64> = (0..40).collect();
        let seq = run_tasks(tasks.clone(), 1, |i, t| t.wrapping_mul(i as u64 + 7));
        let par = run_tasks(tasks, 8, |i, t| t.wrapping_mul(i as u64 + 7));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out = run_tasks(Vec::<u32>::new(), 4, |_, t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn progress_counts_every_tick() {
        let p = Progress::new(100, 1000); // interval > total: stays silent
        let ticks: Vec<u32> = (0..100).collect();
        run_tasks(ticks, 4, |_, _| {
            p.tick();
        });
        assert_eq!(p.done(), 100);
    }

    /// Serializes the tests that mutate the global inner-thread hint.
    fn hint_lock() -> &'static parking_lot::Mutex<()> {
        static LOCK: std::sync::OnceLock<parking_lot::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| parking_lot::Mutex::new(()))
    }

    #[test]
    fn inner_thread_hint_round_trips() {
        let _lock = hint_lock().lock();
        set_inner_threads(0);
        let default = inner_threads();
        assert_eq!(default, default_jobs());
        {
            let _guard = inner_threads_for_jobs(default_jobs());
            assert_eq!(inner_threads(), 1);
        }
        assert_eq!(inner_threads(), default);
    }

    #[test]
    fn inner_thread_hint_restored_when_worker_panics() {
        let _lock = hint_lock().lock();
        set_inner_threads(0);
        let before = inner_threads();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner_threads_for_jobs(4);
            // pmr-lint: allow(blocking-under-lock): run_tasks' workers never take hint_lock, and the lock exists to serialize exactly this kind of test
            run_tasks(vec![0u32, 1, 2, 3, 4, 5], 2, |i, t| {
                if i == 3 {
                    panic!("worker closure dies");
                }
                t
            });
        }));
        assert!(caught.is_err(), "the worker panic propagates out of the scope");
        assert_eq!(inner_threads(), before, "the drop guard restores the hint on unwind");
    }

    #[test]
    fn progress_finish_is_silent_and_idempotent_without_output() {
        // A zero-task sweep never prints a status line, so finish() (and
        // the Drop impl after it) must not emit a stray newline. We cannot
        // capture stderr here, but we can at least assert this path does
        // not panic and stays idempotent.
        let p = Progress::new(0, 25);
        p.finish();
        p.finish();
        drop(p);
    }
}
