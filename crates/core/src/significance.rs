//! Paired significance tests for model comparisons.
//!
//! The paper reports statements like "the dominance of TNG over TN is
//! statistically significant (p < 0.05)". Model MAPs are paired by user
//! (both models rank the same users' test sets), so the appropriate tests
//! are paired ones. Two standard choices are implemented:
//!
//! * a **paired randomization (sign-flip permutation) test** on the mean
//!   AP difference — exact in distribution, no normality assumption;
//! * the **Wilcoxon signed-rank test** with a normal approximation, the
//!   classic nonparametric paired test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of a paired comparison of per-user APs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedComparison {
    /// Mean of `a − b` over users.
    pub mean_difference: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of pairs that entered the test.
    pub pairs: usize,
}

impl PairedComparison {
    /// Whether the difference is significant at the paper's α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Paired randomization test: under H₀ (no difference), each per-user
/// difference is symmetric around 0, so its sign may be flipped freely.
/// The p-value is the share of `iterations` random sign assignments whose
/// |mean| reaches the observed |mean| (add-one smoothed).
pub fn paired_randomization_test(
    a: &[f64],
    b: &[f64],
    iterations: usize,
    seed: u64,
) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    if n == 0 {
        return PairedComparison { mean_difference: 0.0, p_value: 1.0, pairs: 0 };
    }
    let observed = diffs.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..iterations.max(1) {
        let mut sum = 0.0;
        for &d in &diffs {
            sum += if rng.gen_bool(0.5) { d } else { -d };
        }
        if (sum / n as f64).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    PairedComparison {
        mean_difference: observed,
        p_value: (extreme + 1) as f64 / (iterations.max(1) + 1) as f64,
        pairs: n,
    }
}

/// Wilcoxon signed-rank test with the normal approximation (suitable for
/// n ≳ 20, which holds for every user group but IP; use the randomization
/// test for small groups).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let mut diffs: Vec<f64> =
        a.iter().zip(b).map(|(x, y)| x - y).filter(|d| d.abs() > 1e-12).collect();
    let mean_difference = if a.is_empty() {
        0.0
    } else {
        a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len() as f64
    };
    let n = diffs.len();
    if n == 0 {
        return PairedComparison { mean_difference, p_value: 1.0, pairs: 0 };
    }
    diffs.sort_by(|x, y| x.abs().total_cmp(&y.abs()));
    // Ranks with midrank ties.
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[j + 1].abs() - diffs[i].abs()).abs() < 1e-12 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs.iter().zip(&ranks).filter(|(d, _)| **d > 0.0).map(|(_, r)| *r).sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let sd = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0).sqrt();
    if sd == 0.0 {
        return PairedComparison { mean_difference, p_value: 1.0, pairs: n };
    }
    // Continuity-corrected z.
    let z = (w_plus - mean - 0.5 * (w_plus - mean).signum()) / sd;
    let p = 2.0 * normal_sf(z.abs());
    PairedComparison { mean_difference, p_value: p.min(1.0), pairs: n }
}

/// Standard normal survival function via the complementary error function
/// (Abramowitz & Stegun 7.1.26 approximation, |error| < 1.5e-7).
fn normal_sf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * erfc(x)
}

fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x * x).exp();
    if x >= 0.0 {
        result
    } else {
        2.0 - result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_insignificant() {
        let a = vec![0.5, 0.6, 0.7, 0.4];
        let r = paired_randomization_test(&a, &a, 500, 1);
        assert_eq!(r.mean_difference, 0.0);
        assert!(!r.significant(), "p = {}", r.p_value);
        let w = wilcoxon_signed_rank(&a, &a);
        assert_eq!(w.p_value, 1.0);
    }

    #[test]
    fn consistent_dominance_is_significant() {
        let a: Vec<f64> = (0..30).map(|i| 0.6 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.1).collect();
        let r = paired_randomization_test(&a, &b, 2_000, 1);
        assert!(r.significant(), "randomization p = {}", r.p_value);
        assert!((r.mean_difference - 0.1).abs() < 1e-9);
        let w = wilcoxon_signed_rank(&a, &b);
        assert!(w.significant(), "wilcoxon p = {}", w.p_value);
    }

    #[test]
    fn noise_is_insignificant() {
        // Alternating small differences with zero mean.
        let a: Vec<f64> = (0..24).map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 }).collect();
        let b = vec![0.5; 24];
        let r = paired_randomization_test(&a, &b, 2_000, 2);
        assert!(!r.significant(), "p = {}", r.p_value);
        let w = wilcoxon_signed_rank(&a, &b);
        assert!(!w.significant(), "p = {}", w.p_value);
    }

    #[test]
    fn empty_input_is_neutral() {
        let r = paired_randomization_test(&[], &[], 100, 1);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.pairs, 0);
    }

    #[test]
    fn normal_sf_matches_known_quantiles() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-3);
        assert!((normal_sf(2.58) - 0.005).abs() < 1e-3);
    }

    #[test]
    fn randomization_p_is_deterministic_in_seed() {
        let a = vec![0.6, 0.7, 0.65, 0.62];
        let b = vec![0.5, 0.55, 0.6, 0.58];
        let r1 = paired_randomization_test(&a, &b, 1_000, 7);
        let r2 = paired_randomization_test(&a, &b, 1_000, 7);
        assert_eq!(r1.p_value, r2.p_value);
    }

    #[test]
    fn wilcoxon_handles_ties_with_midranks() {
        let a = vec![0.5, 0.5, 0.5, 0.8, 0.8];
        let b = vec![0.4, 0.4, 0.4, 0.7, 0.7];
        let w = wilcoxon_signed_rank(&a, &b);
        assert!(w.mean_difference > 0.0);
        assert!(w.p_value < 0.2, "uniform positive shifts rank strongly: {}", w.p_value);
    }
}
