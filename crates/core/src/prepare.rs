//! Corpus preprocessing (§4).
//!
//! All tweets are lower-cased and tokenized on white space and punctuation,
//! keeping URLs, hashtags, mentions and emoticons together and squeezing
//! repeated letters. The 100 most frequent tokens across all *training*
//! tweets are removed as corpus-level stop words. No language-specific
//! processing is applied (the corpus is multilingual — challenge C3).
//!
//! [`PreparedCorpus`] computes all of this once and serves every
//! representation model: token-based models read the stop-filtered
//! [`PreparedCorpus::content`], character-based models read the raw
//! lower-cased text, and the Labeled-LDA labeler reads the full token
//! stream with lexical classes.

use std::sync::Arc;

use pmr_sim::{Corpus, TweetId};
use pmr_text::token::{Token, TokenKind};
use pmr_text::vocab::Vocabulary;
use pmr_text::{char_ngrams, token_ngrams, StopWords, Tokenizer};

use crate::config::ModelConfiguration;
use crate::error::PmrResult;
use crate::features::{FeatureCache, GramKind, GramTable};
use crate::split::{SplitConfig, TrainTestSplit};

/// A corpus with its split and all per-tweet preprocessing artifacts.
pub struct PreparedCorpus {
    /// The underlying simulated corpus.
    pub corpus: Corpus,
    /// The train/test split.
    pub split: TrainTestSplit,
    /// Full token stream per tweet (parallel to `corpus.tweets`).
    tokens: Vec<Vec<Token>>,
    /// Stop-filtered token texts per tweet.
    content: Vec<Vec<String>>,
    /// Hashtag tokens per tweet.
    hashtags: Vec<Vec<String>>,
    /// The fitted stop-word filter.
    stopwords: StopWords,
    /// Sweep-scoped feature cache (interned gram sequences, lowercased
    /// texts) — built lazily, shared across configurations and threads.
    features: FeatureCache,
}

impl PreparedCorpus {
    /// Tokenize everything, fit the stop-word filter on the training
    /// tweets, and precompute the filtered content.
    ///
    /// Fails only when the corpus itself is structurally broken (see
    /// [`TrainTestSplit::compute`]).
    pub fn new(corpus: Corpus, split_config: SplitConfig) -> PmrResult<Self> {
        let split = TrainTestSplit::compute(&corpus, split_config)?;
        let tokenizer = Tokenizer::default();
        let tokens: Vec<Vec<Token>> =
            corpus.tweets.iter().map(|t| tokenizer.tokenize(&t.text)).collect();
        // "Training tweets" = everything that is not a test document of any
        // user.
        let mut is_test = vec![false; corpus.tweets.len()];
        for (_, user_split) in split.iter() {
            for id in user_split.test_docs() {
                is_test[id.index()] = true;
            }
        }
        let mut vocab = Vocabulary::new();
        for (i, toks) in tokens.iter().enumerate() {
            if !is_test[i] {
                for t in toks {
                    vocab.add(&t.text);
                }
            }
        }
        let stopwords = StopWords::from_vocabulary(&vocab, StopWords::PAPER_K);
        let content: Vec<Vec<String>> = tokens
            .iter()
            .map(|toks| {
                toks.iter()
                    .filter(|t| !stopwords.contains(&t.text))
                    .map(|t| t.text.clone())
                    .collect()
            })
            .collect();
        let hashtags: Vec<Vec<String>> = tokens
            .iter()
            .map(|toks| {
                toks.iter()
                    .filter(|t| t.kind == TokenKind::Hashtag)
                    .map(|t| t.text.clone())
                    .collect()
            })
            .collect();
        Ok(PreparedCorpus {
            corpus,
            split,
            tokens,
            content,
            hashtags,
            stopwords,
            features: FeatureCache::new(),
        })
    }

    /// Stop-filtered token texts of a tweet — the input of all token-based
    /// models.
    pub fn content(&self, id: TweetId) -> &[String] {
        &self.content[id.index()]
    }

    /// Raw (original-case) text of a tweet — the input of character-based
    /// models, which lower-case internally via the tokenizer's convention.
    pub fn raw_text(&self, id: TweetId) -> &str {
        &self.corpus.tweet(id).text
    }

    /// Full token stream of a tweet (for the Labeled-LDA labeler).
    pub fn tokens(&self, id: TweetId) -> &[Token] {
        &self.tokens[id.index()]
    }

    /// Hashtags of a tweet (for hashtag pooling).
    pub fn hashtags(&self, id: TweetId) -> &[String] {
        &self.hashtags[id.index()]
    }

    /// The fitted stop-word filter.
    pub fn stopwords(&self) -> &StopWords {
        &self.stopwords
    }

    /// The sweep-scoped feature cache.
    pub fn features(&self) -> &FeatureCache {
        &self.features
    }

    /// Lowercased raw text of a tweet, computed once per corpus for all
    /// tweets (the character-gram input; previously re-lowercased on every
    /// `gramify` call of every configuration).
    pub fn lowercased_text(&self, id: TweetId) -> &str {
        &self.lowercased_texts()[id.index()]
    }

    fn lowercased_texts(&self) -> &[String] {
        self.features
            .lowercased(|| self.corpus.tweets.iter().map(|t| t.text.to_lowercase()).collect())
    }

    /// The shared gram table for `(kind, n)`, building it on first demand
    /// and returning the cached [`Arc`] afterwards.
    pub fn gram_table(&self, kind: GramKind, n: usize) -> Arc<GramTable> {
        self.features.table((kind, n), || match kind {
            GramKind::Token => GramTable::from_docs(
                kind,
                n,
                self.content.iter().map(|tokens| token_ngrams(tokens, n)),
            ),
            GramKind::Char => GramTable::from_docs(
                kind,
                n,
                self.lowercased_texts().iter().map(|text| char_ngrams(text, n)),
            ),
        })
    }

    /// Build every gram table the given configurations will need, before
    /// fanning out to worker threads. Purely an ergonomics/latency win:
    /// lazily built tables are identical, but prewarming keeps the first
    /// worker of each key from paying the build while others wait.
    pub fn prewarm_features<'a, I>(&self, configs: I)
    where
        I: IntoIterator<Item = &'a ModelConfiguration>,
    {
        let keys: std::collections::BTreeSet<(GramKind, usize)> =
            configs.into_iter().filter_map(|c| c.feature_key()).collect();
        for (kind, n) in keys {
            self.gram_table(kind, n);
        }
    }
}

impl std::fmt::Debug for PreparedCorpus {
    /// A summary — the full token streams would swamp any log line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedCorpus")
            .field("tweets", &self.corpus.tweets.len())
            .field("split_users", &self.split.len())
            .field("stopwords", &self.stopwords.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

    fn prepared() -> PreparedCorpus {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99));
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("smoke corpus is well-formed")
    }

    #[test]
    fn stopwords_are_fitted_to_one_hundred() {
        let p = prepared();
        assert_eq!(p.stopwords().len(), 100);
    }

    #[test]
    fn content_is_stop_filtered_and_lowercased() {
        let p = prepared();
        for id in (0..p.corpus.len() as u32).map(pmr_sim::TweetId).take(200) {
            for tok in p.content(id) {
                assert!(!p.stopwords().contains(tok), "stop word {tok} survived");
                assert_eq!(tok, &tok.to_lowercase());
            }
        }
    }

    #[test]
    fn hashtags_carry_the_marker() {
        let p = prepared();
        let mut seen = 0;
        for id in (0..p.corpus.len() as u32).map(pmr_sim::TweetId) {
            for h in p.hashtags(id) {
                assert!(h.starts_with('#'));
                seen += 1;
            }
        }
        assert!(seen > 100, "the simulator injects hashtags: saw {seen}");
    }

    #[test]
    fn tokens_align_with_tweets() {
        let p = prepared();
        let id = pmr_sim::TweetId(0);
        assert!(!p.tokens(id).is_empty());
        assert!(!p.raw_text(id).is_empty());
    }
}
