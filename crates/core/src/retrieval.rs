//! Candidate retrieval: impact-ordered inverted index with WAND/max-score
//! pruning, ahead of exact rescoring.
//!
//! The paper scores every candidate in a user's pool exactly; that
//! exhaustive pass is the wall for both the sweep and `pmr-serve`. This
//! module adds the standard production move — a cheap shortlist ahead of
//! exact ranking — while keeping the repo's bit-for-bit discipline:
//!
//! * [`ImpactIndex`] holds one posting list per term over a fixed candidate
//!   pool, each list in document order, with the term's *max impact* (the
//!   largest |weight| it carries in any document) alongside.
//! * [`ImpactIndex::query`] runs document-at-a-time max-score/WAND: query
//!   terms are ordered by their upper bound (|model weight| × max impact),
//!   a shared [`ThresholdHeap`] supplies the pruning threshold, and the
//!   suffix of terms whose summed upper bounds fall strictly below the
//!   threshold stops driving iteration — documents found only in those
//!   lists cannot enter the heap.
//! * The shortlist is then rescored **exactly** by the existing
//!   [`ScoringKernel`]; every document outside it is assigned exactly
//!   `0.0`, which is the exact score of any candidate sharing no term with
//!   the model under all of CS/JS/GJS (zero overlap ⇒ zero numerator /
//!   zero intersection — the proptests below pin this).
//!
//! With [`Budget::Full`] the heap never fills, nothing is pruned, and every
//! overlapping document is rescored — output is byte-identical to the
//! exhaustive pass by construction. With [`Budget::TopK`] the surrogate
//! ordering decides which overlapping documents are rescored; recall@k is
//! measured, not assumed (`bench_retrieval`). The surrogate itself is the
//! model·document dot product accumulated in f64 over the document's
//! entries in term order — a fixed association order, so results never
//! depend on which posting list surfaced the candidate.
//!
//! [`WindowPostings`] is the incremental sibling for `pmr-serve`: per-shard
//! postings over a user's candidate window, updated on ingest/evict, used
//! as an exact overlap gate (score only matched candidates, zero-fill the
//! rest) rather than a heuristic shortlist — serving output stays
//! byte-identical to the exhaustive path for any window content, which is
//! what lets the knob live in mechanical `RuntimeOptions`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use pmr_bag::{ScoringKernel, SparseVector};
use pmr_text::vocab::TermId;

use crate::ranking::ThresholdHeap;

/// How a consumer retrieves candidates before scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Score every candidate exactly — the proptest-pinned reference.
    #[default]
    Exhaustive,
    /// Impact-ordered index + WAND/max-score shortlist, exact rescore.
    Wand,
}

impl RetrievalMode {
    /// Short name, as accepted by `--retrieval` and stored in cache keys.
    pub fn name(self) -> &'static str {
        match self {
            RetrievalMode::Exhaustive => "exhaustive",
            RetrievalMode::Wand => "wand",
        }
    }
}

impl fmt::Display for RetrievalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RetrievalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<RetrievalMode, String> {
        match s {
            "exhaustive" => Ok(RetrievalMode::Exhaustive),
            "wand" => Ok(RetrievalMode::Wand),
            other => Err(format!("unknown retrieval mode {other:?} (exhaustive|wand)")),
        }
    }
}

/// Shortlist budget for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Keep every visited candidate: full coverage, byte-identical output.
    Full,
    /// Keep at most `shortlist` candidates by surrogate score.
    TopK {
        /// Maximum shortlist size.
        shortlist: usize,
    },
}

/// Outcome of one [`ImpactIndex::query`].
#[derive(Debug, Clone)]
pub struct Shortlist {
    /// Candidate positions to rescore exactly, ascending.
    pub positions: Vec<u32>,
    /// Candidates whose surrogate was evaluated.
    pub visited: u64,
    /// Candidates never visited (zero model overlap or pruned by
    /// max-score) out of the pool.
    pub pruned: u64,
}

/// An impact-ordered inverted index over a fixed candidate pool.
///
/// Built once from the pool's (already transformed) sparse vectors; the
/// grams behind those vectors come from the shared [`crate::FeatureCache`]
/// tables, so building an index never re-tokenizes or re-interns anything
/// (the no-allocation-growth test below pins this).
#[derive(Debug, Clone)]
pub struct ImpactIndex {
    /// Distinct terms of the pool, ascending.
    terms: Vec<TermId>,
    /// Parallel to `terms`: (candidate position, stored weight) in
    /// ascending position order.
    postings: Vec<Vec<(u32, f32)>>,
    /// Parallel to `terms`: max |weight| across the list — the impact
    /// bound that orders and prunes query terms.
    max_impact: Vec<f32>,
    /// Pool size.
    docs: usize,
}

impl ImpactIndex {
    /// Build over a candidate pool; position `i` refers to `pool[i]`.
    pub fn build(pool: &[SparseVector]) -> ImpactIndex {
        let _timer = pmr_obs::timer("retrieval.index_build");
        let mut lists: BTreeMap<TermId, Vec<(u32, f32)>> = BTreeMap::new();
        for (pos, doc) in pool.iter().enumerate() {
            for &(term, weight) in doc.entries() {
                lists.entry(term).or_default().push((pos as u32, weight));
            }
        }
        let mut terms = Vec::with_capacity(lists.len());
        let mut postings = Vec::with_capacity(lists.len());
        let mut max_impact = Vec::with_capacity(lists.len());
        for (term, list) in lists {
            let max = list.iter().map(|&(_, w)| w.abs()).fold(0.0f32, f32::max);
            terms.push(term);
            postings.push(list);
            max_impact.push(max);
        }
        pmr_obs::counter_add("retrieval.index_builds", 1);
        ImpactIndex { terms, postings, max_impact, docs: pool.len() }
    }

    /// Pool size.
    pub fn docs(&self) -> usize {
        self.docs
    }

    /// Number of distinct terms indexed.
    pub fn terms(&self) -> usize {
        self.terms.len()
    }

    /// Shortlist the pool for `model` under `budget`.
    ///
    /// `pool` must be the slice the index was built from (surrogates read
    /// the document entries directly); `keys` supplies each position's tie
    /// key under the shared ranking contract. Deterministic: candidates
    /// are visited in ascending position order and surrogate sums use a
    /// fixed association order, so the shortlist is a pure function of
    /// `(pool, model, keys, budget)`.
    pub fn query<K: Ord + Clone>(
        &self,
        model: &SparseVector,
        pool: &[SparseVector],
        keys: &[K],
        budget: Budget,
    ) -> Shortlist {
        assert_eq!(pool.len(), self.docs, "index was built over a different pool");
        assert_eq!(keys.len(), self.docs, "one tie key per pool position");
        let _timer = pmr_obs::timer("retrieval.query");
        // Dense model lookup for O(nnz(doc)) surrogate dots.
        let dense = dense_of(model);
        // Query terms present in the pool, with their impact upper bounds.
        let mut qterms: Vec<(f64, usize)> = model
            .entries()
            .iter()
            .filter_map(|&(term, w)| {
                self.terms
                    .binary_search(&term)
                    .ok()
                    .map(|i| (w.abs() as f64 * self.max_impact[i] as f64, i))
            })
            .collect();
        // Upper bound descending, term id ascending on ties — a fixed
        // driver order regardless of model entry layout.
        qterms.sort_by(|a, b| b.0.total_cmp(&a.0).then(self.terms[a.1].cmp(&self.terms[b.1])));
        // suffix[i] = Σ upper bounds of qterms[i..]; the tail starting at i
        // may stop driving once suffix[i] < threshold. Each partial sum is
        // inflated by 1e-12 relative — orders of magnitude above the f64
        // rounding of either sum — so a surrogate can never exceed its
        // bound through rounding alone and pruning stays conservative.
        let mut suffix = vec![0.0f64; qterms.len() + 1];
        for i in (0..qterms.len()).rev() {
            suffix[i] = (suffix[i + 1] + qterms[i].0) * (1.0 + 1e-12);
        }
        let capacity = match budget {
            Budget::Full => self.docs,
            Budget::TopK { shortlist } => shortlist,
        };
        let mut heap: ThresholdHeap<(K, u32)> = ThresholdHeap::new(capacity);
        let mut cursors = vec![0usize; qterms.len()];
        let mut essential = qterms.len();
        let mut visited = 0u64;
        // Document-at-a-time frontier: one (next position, driver) pair per
        // query term in a min-heap, so each step costs O(log t) rather than
        // a scan over every driver's cursor.
        let mut frontier: BinaryHeap<Reverse<(u32, u32)>> = qterms
            .iter()
            .enumerate()
            .filter_map(|(qi, &(_, ti))| {
                self.postings[ti].first().map(|&(pos, _)| Reverse((pos, qi as u32)))
            })
            .collect();
        while let Some(&Reverse((pos, _))) = frontier.peek() {
            // Shrink the essential prefix as the threshold grows. Strict
            // comparison: a document worth exactly the threshold could
            // still win on its tie key, so only a strictly-smaller tail
            // bound justifies dropping a driver.
            if let Some(threshold) = heap.threshold() {
                while essential > 0 && suffix[essential - 1] < threshold {
                    essential -= 1;
                }
            }
            if essential == 0 {
                break;
            }
            // Advance every driver sitting on this candidate. Drivers that
            // fell out of the essential prefix are dropped from the
            // frontier for good: the prefix only ever shrinks (the
            // threshold is monotone), and a document appearing in no
            // essential list cannot beat the threshold.
            let mut is_essential = false;
            loop {
                let Some(mut top) = frontier.peek_mut() else { break };
                let Reverse((p, qi)) = *top;
                if p != pos {
                    break;
                }
                let qi = qi as usize;
                if qi < essential {
                    is_essential = true;
                    cursors[qi] += 1;
                    if let Some(&(np, _)) = self.postings[qterms[qi].1].get(cursors[qi]) {
                        // Replace in place: one sift instead of pop + push.
                        *top = Reverse((np, qi as u32));
                        continue;
                    }
                }
                std::collections::binary_heap::PeekMut::pop(top);
            }
            if !is_essential {
                continue;
            }
            visited += 1;
            let surrogate = surrogate_dot(&dense, &pool[pos as usize]);
            heap.offer(surrogate, (keys[pos as usize].clone(), pos));
        }
        let mut positions: Vec<u32> = heap.into_sorted().into_iter().map(|(_, (_, p))| p).collect();
        positions.sort_unstable();
        pmr_obs::counter_add("retrieval.candidates", visited);
        pmr_obs::counter_add("retrieval.pruned", self.docs as u64 - visited);
        Shortlist { positions, visited, pruned: self.docs as u64 - visited }
    }
}

/// Dense lookup table of a model's weights (index = term id).
fn dense_of(model: &SparseVector) -> Vec<f32> {
    let size = model.entries().last().map_or(0, |&(t, _)| t as usize + 1);
    let mut dense = vec![0.0f32; size];
    for &(t, w) in model.entries() {
        dense[t as usize] = w;
    }
    dense
}

/// The surrogate: model·doc accumulated in f64 over the document's entries
/// in term order — one fixed association order per document.
fn surrogate_dot(dense: &[f32], doc: &SparseVector) -> f64 {
    let mut acc = 0.0f64;
    for &(t, w) in doc.entries() {
        let wm = dense.get(t as usize).copied().unwrap_or(0.0);
        if wm != 0.0 {
            acc += wm as f64 * w as f64;
        }
    }
    acc
}

/// Shortlist `pool` for `kernel`'s model and return the full score vector:
/// exact kernel scores for shortlisted positions, exactly `0.0` elsewhere.
///
/// Under [`Budget::Full`] this is byte-identical to scoring every document
/// with the kernel (the proptests pin it for all three bag similarities):
/// every document sharing a term with the model is visited and rescored
/// exactly, and a zero-overlap document scores exactly `0.0` under
/// CS/JS/GJS.
pub fn retrieve_and_rescore<K: Ord + Clone>(
    index: &ImpactIndex,
    kernel: &ScoringKernel,
    model: &SparseVector,
    pool: &[SparseVector],
    keys: &[K],
    budget: Budget,
) -> Vec<f64> {
    let shortlist = index.query(model, pool, keys, budget);
    let mut scores = vec![0.0f64; pool.len()];
    {
        let _timer = pmr_obs::timer("retrieval.rescore");
        kernel.score_positions(pool, &shortlist.positions, &mut scores);
    }
    pmr_obs::counter_add("retrieval.rescored", shortlist.positions.len() as u64);
    scores
}

/// Incremental postings over a serving window: key → sorted candidate ids.
///
/// The serving engine inserts a candidate's keys on ingest and removes
/// them on window eviction; at query time [`WindowPostings::matched`]
/// returns exactly the candidates sharing at least one key with the model,
/// and the shard scores only those (zero-filling the rest). `BTreeMap`
/// keeps every traversal in key order — nothing here depends on hash
/// iteration order.
#[derive(Debug, Clone, Default)]
pub struct WindowPostings<K: Ord> {
    lists: BTreeMap<K, Vec<u32>>,
}

impl<K: Ord + Clone> WindowPostings<K> {
    /// An empty postings map.
    pub fn new() -> WindowPostings<K> {
        WindowPostings { lists: BTreeMap::new() }
    }

    /// Number of distinct keys currently posted.
    pub fn keys(&self) -> usize {
        self.lists.len()
    }

    /// Post `doc` under each of `keys` (duplicates are deduplicated).
    pub fn insert<I: IntoIterator<Item = K>>(&mut self, doc: u32, keys: I) {
        for key in keys {
            let list = self.lists.entry(key).or_default();
            if let Err(at) = list.binary_search(&doc) {
                list.insert(at, doc);
            }
        }
    }

    /// Remove `doc` from each of `keys`' lists, dropping emptied lists.
    pub fn remove<'a, I: IntoIterator<Item = &'a K>>(&mut self, doc: u32, keys: I)
    where
        K: 'a,
    {
        for key in keys {
            if let Some(list) = self.lists.get_mut(key) {
                if let Ok(at) = list.binary_search(&doc) {
                    list.remove(at);
                }
                if list.is_empty() {
                    self.lists.remove(key);
                }
            }
        }
    }

    /// The ascending, deduplicated union of candidates posted under any of
    /// `keys`.
    pub fn matched<'a, I: IntoIterator<Item = &'a K>>(&self, keys: I) -> Vec<u32>
    where
        K: 'a,
    {
        let mut out: Vec<u32> = Vec::new();
        for key in keys {
            if let Some(list) = self.lists.get(key) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tie_break_key;
    use pmr_bag::BagSimilarity;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn exhaustive(kernel: &ScoringKernel, pool: &[SparseVector]) -> Vec<f64> {
        pool.iter().map(|d| kernel.score(d)).collect()
    }

    fn keys_for(pool: &[SparseVector]) -> Vec<u32> {
        (0..pool.len()).map(|i| tie_break_key(i as u32)).collect()
    }

    #[test]
    fn full_budget_matches_exhaustive_bit_for_bit() {
        let model = v(&[(0, 0.5), (2, 1.5), (7, 0.25)]);
        let pool = vec![
            v(&[(2, 1.0), (3, 4.0)]),
            v(&[(9, 1.0)]), // zero overlap: never visited, zero-filled
            v(&[(0, 0.5), (7, 2.0)]),
            v(&[]),
            v(&[(7, 0.1)]),
        ];
        let index = ImpactIndex::build(&pool);
        let keys = keys_for(&pool);
        for sim in
            [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard]
        {
            let kernel = ScoringKernel::new(sim, &model);
            let wand = retrieve_and_rescore(&index, &kernel, &model, &pool, &keys, Budget::Full);
            let exact = exhaustive(&kernel, &pool);
            assert_eq!(
                wand.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                exact.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{}: full-budget retrieval must be byte-identical",
                sim.name()
            );
        }
    }

    #[test]
    fn zero_overlap_docs_are_pruned_without_a_visit() {
        let model = v(&[(1, 1.0)]);
        let pool = vec![v(&[(1, 2.0)]), v(&[(5, 1.0)]), v(&[(6, 1.0)])];
        let index = ImpactIndex::build(&pool);
        let keys = keys_for(&pool);
        let shortlist = index.query(&model, &pool, &keys, Budget::Full);
        assert_eq!(shortlist.positions, vec![0]);
        assert_eq!(shortlist.visited, 1);
        assert_eq!(shortlist.pruned, 2);
    }

    #[test]
    fn empty_model_shortlists_nothing() {
        let pool = vec![v(&[(1, 1.0)]), v(&[(2, 1.0)])];
        let index = ImpactIndex::build(&pool);
        let keys = keys_for(&pool);
        let shortlist = index.query(&v(&[]), &pool, &keys, Budget::Full);
        assert!(shortlist.positions.is_empty());
        assert_eq!(shortlist.pruned, 2);
    }

    #[test]
    fn topk_budget_keeps_the_surrogate_top_k() {
        let model = v(&[(0, 1.0)]);
        // Surrogates: 3.0, 1.0, 2.0 — top-2 are positions 0 and 2.
        let pool = vec![v(&[(0, 3.0)]), v(&[(0, 1.0)]), v(&[(0, 2.0)])];
        let index = ImpactIndex::build(&pool);
        let keys = keys_for(&pool);
        let shortlist = index.query(&model, &pool, &keys, Budget::TopK { shortlist: 2 });
        assert_eq!(shortlist.positions, vec![0, 2]);
    }

    #[test]
    fn negative_model_weights_stay_exact_under_full_budget() {
        // Rocchio models carry negative weights: overlapping documents can
        // score *below* the 0.0 assigned to zero-overlap ones, which is
        // exactly what the exhaustive pass produces too.
        let model = v(&[(0, -1.0), (3, 0.5)]);
        let pool = vec![v(&[(0, 2.0)]), v(&[(9, 1.0)]), v(&[(0, 1.0), (3, 1.0)])];
        let index = ImpactIndex::build(&pool);
        let keys = keys_for(&pool);
        let kernel = ScoringKernel::new(BagSimilarity::Cosine, &model);
        let wand = retrieve_and_rescore(&index, &kernel, &model, &pool, &keys, Budget::Full);
        let exact = exhaustive(&kernel, &pool);
        assert!(wand[0] < 0.0, "negative-overlap doc must keep its exact negative score");
        assert_eq!(
            wand.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            exact.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retrieval_mode_parses_and_prints() {
        assert_eq!("exhaustive".parse::<RetrievalMode>(), Ok(RetrievalMode::Exhaustive));
        assert_eq!("wand".parse::<RetrievalMode>(), Ok(RetrievalMode::Wand));
        assert!("fts".parse::<RetrievalMode>().is_err());
        assert_eq!(RetrievalMode::Wand.to_string(), "wand");
        assert_eq!(RetrievalMode::default(), RetrievalMode::Exhaustive);
    }

    #[test]
    fn window_postings_track_insert_and_evict() {
        let mut postings: WindowPostings<u32> = WindowPostings::new();
        postings.insert(10, [1, 2, 2]); // duplicate key deduplicated
        postings.insert(11, [2, 3]);
        assert_eq!(postings.matched([1, 2, 9].iter()), vec![10, 11]);
        assert_eq!(postings.matched([3].iter()), vec![11]);
        assert_eq!(postings.matched([9].iter()), Vec::<u32>::new());
        postings.remove(10, [1, 2].iter());
        assert_eq!(postings.matched([1, 2].iter()), vec![11]);
        assert_eq!(postings.keys(), 2, "emptied lists are dropped");
    }

    #[test]
    fn window_postings_string_keys_for_graph_features() {
        let mut postings: WindowPostings<String> = WindowPostings::new();
        postings.insert(5, ["cats".to_owned(), "purr".to_owned()]);
        postings.insert(6, ["rust".to_owned()]);
        let model_keys = ["cats".to_owned(), "code".to_owned()];
        assert_eq!(postings.matched(model_keys.iter()), vec![5]);
    }

    #[test]
    fn index_build_reuses_cached_gram_tables_without_growth() {
        // The prewarm-dedup contract: building an index over vectors from a
        // cached gram table must not re-tokenize or re-intern anything. A
        // second build keyed off the same (kind, n) table leaves the cache
        // byte count and vocabulary untouched and shares the same Arc.
        use crate::features::{FeatureCache, GramKind, GramTable};
        use pmr_bag::{IndexedVectorizer, WeightingScheme};
        use pmr_sim::TweetId;

        let cache = FeatureCache::new();
        let key = (GramKind::Token, 1);
        let docs: Vec<Vec<&str>> =
            vec![vec!["cats", "purr"], vec!["cats", "nap"], vec!["rust", "code"]];
        let build = || GramTable::from_docs(GramKind::Token, 1, docs.clone());

        let build_index = |table: &std::sync::Arc<GramTable>| {
            let ids: Vec<TweetId> = (0..table.num_docs() as u32).map(TweetId).collect();
            let vectorizer =
                IndexedVectorizer::fit(WeightingScheme::TF, ids.iter().map(|&id| table.doc(id)));
            let pool: Vec<SparseVector> =
                ids.iter().map(|&id| vectorizer.transform(table.doc(id))).collect();
            ImpactIndex::build(&pool)
        };

        let first_table = cache.table(key, build);
        let first = build_index(&first_table);
        let bytes_after_first = cache.bytes();
        let vocab_after_first = first_table.vocab_len();

        let second_table = cache.table(key, build);
        let second = build_index(&second_table);
        assert!(
            std::sync::Arc::ptr_eq(&first_table, &second_table),
            "second build must reuse the cached table, not re-intern"
        );
        assert_eq!(cache.bytes(), bytes_after_first, "no cache allocation growth");
        assert_eq!(second_table.vocab_len(), vocab_after_first, "no new interned grams");
        assert_eq!(first.terms(), second.terms());
        assert_eq!(first.docs(), second.docs());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::eval::tie_break_key;
    use pmr_bag::BagSimilarity;
    use proptest::prelude::*;

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..40, -4.0f32..4.0), 0..20)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        /// The tentpole pin: with pruning disabled (full budget) the
        /// retrieval path is byte-identical to the exhaustive kernel pass
        /// for all three bag similarities, for any model (negative Rocchio
        /// weights included) and any pool.
        #[test]
        fn full_budget_is_byte_identical_to_exhaustive(
            model in arb_vec(),
            pool in proptest::collection::vec(arb_vec(), 0..16),
        ) {
            let index = ImpactIndex::build(&pool);
            let keys: Vec<u32> = (0..pool.len()).map(|i| tie_break_key(i as u32)).collect();
            for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                let kernel = ScoringKernel::new(sim, &model);
                let wand = retrieve_and_rescore(&index, &kernel, &model, &pool, &keys, Budget::Full);
                let exact: Vec<f64> = pool.iter().map(|d| kernel.score(d)).collect();
                prop_assert_eq!(
                    wand.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    exact.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    "{} diverged", sim.name()
                );
            }
        }

        /// Zero-overlap candidates score exactly 0.0 under every bag
        /// similarity — the invariant that makes zero-filling unvisited
        /// candidates exact rather than approximate.
        #[test]
        fn zero_overlap_scores_exactly_zero(
            model_pairs in proptest::collection::vec((0u32..20, -4.0f32..4.0), 0..12),
            doc_pairs in proptest::collection::vec((20u32..40, -4.0f32..4.0), 0..12),
        ) {
            let model = SparseVector::from_pairs(model_pairs);
            let doc = SparseVector::from_pairs(doc_pairs);
            for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                let kernel = ScoringKernel::new(sim, &model);
                prop_assert_eq!(kernel.score(&doc).to_bits(), 0.0f64.to_bits(), "{}", sim.name());
            }
        }

        /// The shortlist is a pure function of the pool — feeding the heap
        /// from a pool in any candidate order keeps budgeted results
        /// consistent with a direct surrogate sort.
        #[test]
        fn topk_equals_surrogate_sort(
            model in arb_vec(),
            pool in proptest::collection::vec(arb_vec(), 0..16),
            shortlist in 0usize..8,
        ) {
            let index = ImpactIndex::build(&pool);
            let keys: Vec<u32> = (0..pool.len()).map(|i| tie_break_key(i as u32)).collect();
            let got = index.query(&model, &pool, &keys, Budget::TopK { shortlist });
            // Reference: surrogate-score every overlapping candidate, rank
            // under the shared contract, truncate.
            let dense = super::dense_of(&model);
            let mut overlapping: Vec<(f64, (u32, u32))> = pool
                .iter()
                .enumerate()
                .filter(|(_, d)| {
                    d.entries().iter().any(|&(t, _)| model.entries().iter().any(|&(mt, _)| mt == t))
                })
                .map(|(i, d)| (super::surrogate_dot(&dense, d), (keys[i], i as u32)))
                .collect();
            overlapping.sort_by(|a, b| crate::ranking::rank_cmp(a.0, &a.1, b.0, &b.1));
            overlapping.truncate(shortlist);
            let mut expected: Vec<u32> = overlapping.into_iter().map(|(_, (_, p))| p).collect();
            expected.sort_unstable();
            prop_assert_eq!(got.positions, expected);
        }
    }
}
