//! # pmr-core
//!
//! The content-based personalized microblog recommendation framework of the
//! EDBT 2019 study: representation sources, user/document model building,
//! ranking-based recommendation (Definition 2.1), evaluation measures,
//! baselines, the 223-configuration grid of Tables 4–5, and the experiment
//! runner that regenerates the paper's figures and tables.
//!
//! The flow mirrors §2 and §4 of the paper:
//!
//! 1. [`split`] derives each user's train/test split: the 20% most recent
//!    feed-retweets are the positive test documents, joined by 4 sampled
//!    negatives each from the testing phase.
//! 2. [`prepare`] runs the language-agnostic preprocessing (lower-casing,
//!    tokenization, elongation squeezing, corpus-level top-100 stop words).
//! 3. [`source`] materializes the 13 representation sources (R, T, E, F, C
//!    and their 8 pairwise combinations) as per-user training document sets.
//! 4. [`config`] enumerates the 223 valid model configurations.
//! 5. [`recommender`] builds user and document models for any configuration
//!    and scores test documents (bag, graph and topic models behind one
//!    interface).
//! 6. [`eval`] computes AP / MAP / MAP deviation; [`baseline`] provides the
//!    chronological and random baselines; [`experiment`] sweeps and times
//!    everything ([`timing`]).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod config;
pub mod error;
pub mod eval;
pub mod executor;
pub mod experiment;
pub mod features;
pub mod incremental;
pub mod online;
pub mod prepare;
pub mod ranking;
pub mod recommender;
pub mod retrieval;
pub mod significance;
pub mod source;
pub mod split;
pub mod taxonomy;
pub mod timing;

pub use baseline::{chronological_ap, random_ap};
pub use config::{AggKind, ConfigGrid, ModelConfiguration, ModelFamily};
pub use error::{PmrError, PmrResult};
pub use eval::{average_precision, map_deviation, mean_average_precision};
pub use experiment::{ExperimentRunner, RunnerOptions, SweepResult};
pub use features::{FeatureCache, GramKind, GramTable};
pub use incremental::IncrementalModel;
pub use online::{OnlineBagModel, OnlineGraphModel, OnlineProfile};
pub use prepare::PreparedCorpus;
pub use ranking::{rank_cmp, ThresholdHeap};
pub use recommender::score_configuration;
pub use retrieval::{Budget, ImpactIndex, RetrievalMode, WindowPostings};
pub use significance::{paired_randomization_test, wilcoxon_signed_rank, PairedComparison};
pub use source::RepresentationSource;
pub use split::{SplitConfig, TrainTestSplit, UserSplit};
pub use taxonomy::TaxonomyClass;
