//! Unified model building and scoring — Definition 2.1 made executable.
//!
//! For a `(configuration, representation source)` pair and a set of users,
//! this module builds the user models, scores every user's test documents
//! and returns per-user Average Precision plus the two timing measures of
//! §4: training time (TTime — building all user models, including the
//! one-off topic-model training `M(s)`) and testing time (ETime — scoring
//! and ranking the test sets).
//!
//! The two model-family regimes follow the paper exactly:
//!
//! * **context-based models** (TN, CN, TNG, CNG) fit a separate model per
//!   `(user, source)` on that user's train set;
//! * **topic models** train one `M(s)` per source on the train sets of all
//!   users (pooled per the configuration's scheme), then infer
//!   distributions for each user's training tweets (centroid/Rocchio →
//!   user model) and testing tweets (document models), compared by cosine.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pmr_bag::{AggregationFunction, IndexedVectorizer, RocchioParams, ScoringKernel, SparseVector};
use pmr_graph::{GraphSpace, NGramGraph};
use pmr_sim::{TweetId, UserId};
use pmr_topics::pooling::{pool_indexed, PoolInput};
use pmr_topics::{
    BtmConfig, BtmModel, HdpConfig, HdpModel, HldaConfig, HldaModel, Labeler, LdaConfig, LdaModel,
    LldaConfig, LldaModel, PlsaConfig, PlsaModel, PoolingScheme, TopicCorpus, TopicModel,
};

use crate::config::{AggKind, ModelConfiguration};
use crate::eval::{average_precision, ScoredDoc};
use crate::features::GramKind;
use crate::prepare::PreparedCorpus;
use crate::retrieval::{retrieve_and_rescore, Budget, ImpactIndex, RetrievalMode};
use crate::source::RepresentationSource;

/// Per-user outcome of one scored configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserResult {
    /// The user.
    pub user: UserId,
    /// Her Average Precision.
    pub ap: f64,
}

/// Outcome of scoring one `(configuration, source)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreOutcome {
    /// Per-user APs (only users with a valid split).
    pub per_user: Vec<UserResult>,
    /// Aggregate model-building time (TTime contribution).
    pub train_time: Duration,
    /// Aggregate scoring/ranking time (ETime contribution).
    pub test_time: Duration,
}

/// Knobs for scaled-down (or scaled-up) runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoringOptions {
    /// Multiplier on the configuration's Gibbs/EM iteration counts
    /// (1.0 = the paper's counts; experiment harnesses use much less).
    pub iteration_scale: f64,
    /// Fold-in sweeps per inferred document (topic models).
    pub infer_iterations: usize,
    /// Base seed for all stochastic steps.
    pub seed: u64,
    /// Candidate retrieval for the bag and graph scoring arms. The sweep's
    /// WAND path runs at full coverage (every overlapping candidate is
    /// rescored exactly), so either mode produces byte-identical rankings;
    /// `wand` only skips work that provably cannot change a score.
    pub retrieval: RetrievalMode,
}

impl Default for ScoringOptions {
    fn default() -> Self {
        ScoringOptions {
            iteration_scale: 0.02,
            infer_iterations: 10,
            seed: 13,
            retrieval: RetrievalMode::Exhaustive,
        }
    }
}

impl ScoringOptions {
    /// The paper's full iteration counts.
    pub fn paper() -> Self {
        ScoringOptions { iteration_scale: 1.0, infer_iterations: 20, ..ScoringOptions::default() }
    }

    fn scale(&self, iterations: usize) -> usize {
        ((iterations as f64 * self.iteration_scale).round() as usize).max(5)
    }
}

/// Score a configuration on a source for the given users.
pub fn score_configuration(
    prepared: &PreparedCorpus,
    config: &ModelConfiguration,
    source: RepresentationSource,
    users: &[UserId],
    opts: &ScoringOptions,
) -> ScoreOutcome {
    assert!(
        config.valid_for_source(source),
        "{} is invalid for source {source} (Rocchio needs negatives)",
        config.describe()
    );
    match config {
        ModelConfiguration::Bag { char_grams, n, weighting, aggregation, similarity } => {
            // One shared gram table per (kind, n) serves every user of every
            // configuration; per-user work is reduced to remapping global
            // gram ids into the user's local vector space.
            let table = prepared.gram_table(GramKind::of(*char_grams), *n);
            context_scores(prepared, source, users, |train, test, pos_flags| {
                let t0 = Instant::now();
                let vectorizer = {
                    let _t = pmr_obs::timer("bag.fit");
                    IndexedVectorizer::fit(*weighting, train.iter().map(|&id| table.doc(id)))
                };
                let vectors: Vec<SparseVector> = {
                    let _t = pmr_obs::timer("bag.transform");
                    train.iter().map(|&id| vectorizer.transform(table.doc(id))).collect()
                };
                let user_model = {
                    let _t = pmr_obs::timer("bag.aggregate");
                    match aggregation {
                        AggKind::Sum => AggregationFunction::Sum.aggregate(&vectors, &[]),
                        AggKind::Centroid => AggregationFunction::Centroid.aggregate(&vectors, &[]),
                        AggKind::Rocchio => {
                            // Only Rocchio needs the positive/negative split;
                            // cloning it for Sum/Centroid was wasted work.
                            let (pos, neg): (Vec<_>, Vec<_>) =
                                vectors.iter().zip(pos_flags).partition(|(_, &p)| p);
                            let positives: Vec<SparseVector> =
                                pos.into_iter().map(|(v, _)| v.clone()).collect();
                            let negatives: Vec<SparseVector> =
                                neg.into_iter().map(|(v, _)| v.clone()).collect();
                            AggregationFunction::Rocchio(RocchioParams::PAPER)
                                .aggregate(&positives, &negatives)
                        }
                    }
                };
                let kernel = {
                    let _t = pmr_obs::timer("bag.kernel_build");
                    ScoringKernel::new(*similarity, &user_model)
                };
                let train_time = t0.elapsed();
                let t1 = Instant::now();
                let scores: Vec<f64> = match opts.retrieval {
                    RetrievalMode::Exhaustive => {
                        let _timer = pmr_obs::timer("kernel.score");
                        test.iter()
                            .map(|&id| kernel.score(&vectorizer.transform(table.doc(id))))
                            .collect()
                    }
                    RetrievalMode::Wand => {
                        // Shortlist at full coverage, then rescore with the
                        // same kernel: byte-identical to the exhaustive arm,
                        // skipping only candidates that provably score 0.0.
                        let pool: Vec<SparseVector> = {
                            let _t = pmr_obs::timer("bag.transform");
                            test.iter().map(|&id| vectorizer.transform(table.doc(id))).collect()
                        };
                        let index = ImpactIndex::build(&pool);
                        let keys: Vec<u32> =
                            test.iter().map(|&id| crate::eval::tie_break_key(id.0)).collect();
                        let _timer = pmr_obs::timer("kernel.score");
                        retrieve_and_rescore(
                            &index,
                            &kernel,
                            &user_model,
                            &pool,
                            &keys,
                            Budget::Full,
                        )
                    }
                };
                (scores, train_time, t1.elapsed())
            })
        }
        ModelConfiguration::Graph { char_grams, n, similarity } => {
            let table = prepared.gram_table(GramKind::of(*char_grams), *n);
            context_scores(prepared, source, users, |train, test, _pos_flags| {
                let t0 = Instant::now();
                let mut space = GraphSpace::new();
                let mut user_model = NGramGraph::new();
                for &id in train {
                    let g = space.graph_from_grams(&table.doc_terms(id), *n);
                    user_model.merge(&g);
                }
                // WAND-mode overlap gate: a test document sharing no gram
                // with the train union shares no graph edge either, so its
                // comparison is exactly 0.0 and can be skipped. The
                // document graph is still built so the shared space's
                // interning sequence — and every later comparison's bits —
                // matches the exhaustive path.
                let gate: Option<Vec<pmr_text::vocab::TermId>> = match opts.retrieval {
                    RetrievalMode::Exhaustive => None,
                    RetrievalMode::Wand => {
                        let mut ids: Vec<pmr_text::vocab::TermId> =
                            train.iter().flat_map(|&id| table.doc(id).iter().copied()).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        Some(ids)
                    }
                };
                let train_time = t0.elapsed();
                let t1 = Instant::now();
                let mut pruned = 0u64;
                let scores: Vec<f64> = test
                    .iter()
                    .map(|&id| {
                        let matched = match &gate {
                            None => true,
                            Some(g) => table.doc(id).iter().any(|t| g.binary_search(t).is_ok()),
                        };
                        let g = space.graph_from_grams(&table.doc_terms(id), *n);
                        if matched {
                            similarity.compare(&user_model, &g)
                        } else {
                            pruned += 1;
                            0.0
                        }
                    })
                    .collect();
                if gate.is_some() {
                    pmr_obs::counter_add("retrieval.candidates", test.len() as u64 - pruned);
                    pmr_obs::counter_add("retrieval.pruned", pruned);
                }
                (scores, train_time, t1.elapsed())
            })
        }
        ModelConfiguration::Lda { topics, iterations, pooling, aggregation } => {
            topic_scores(prepared, source, users, *pooling, *aggregation, opts, |corpus| {
                let mut cfg = LdaConfig::paper(*topics, opts.scale(*iterations), opts.seed);
                cfg.infer_iterations = opts.infer_iterations;
                Box::new(LdaModel::train(&cfg, corpus))
            })
        }
        ModelConfiguration::Llda { topics, iterations, pooling, aggregation } => {
            topic_scores(prepared, source, users, *pooling, *aggregation, opts, |corpus| {
                let mut cfg = LldaConfig::paper(*topics, opts.scale(*iterations), opts.seed);
                cfg.infer_iterations = opts.infer_iterations;
                Box::new(LldaModel::train(&cfg, corpus))
            })
        }
        ModelConfiguration::Btm { topics, pooling, aggregation } => {
            let window = if *pooling == PoolingScheme::NP {
                // Individual tweets: the window is the tweet itself (§4).
                10_000
            } else {
                30
            };
            topic_scores(prepared, source, users, *pooling, *aggregation, opts, move |corpus| {
                let mut cfg = BtmConfig::paper(*topics, opts.scale(1_000), opts.seed);
                cfg.window = window;
                Box::new(BtmModel::train(&cfg, corpus))
            })
        }
        ModelConfiguration::Hdp { beta, pooling, aggregation } => {
            topic_scores(prepared, source, users, *pooling, *aggregation, opts, |corpus| {
                let mut cfg = HdpConfig::paper(*beta, opts.scale(1_000), opts.seed);
                cfg.infer_iterations = opts.infer_iterations;
                Box::new(HdpModel::train(&cfg, corpus))
            })
        }
        ModelConfiguration::Hlda { alpha, beta, gamma, aggregation } => {
            topic_scores(prepared, source, users, PoolingScheme::UP, *aggregation, opts, |corpus| {
                let mut cfg =
                    HldaConfig::paper(*alpha, *beta, *gamma, opts.scale(1_000), opts.seed);
                cfg.infer_iterations = opts.infer_iterations.min(10);
                Box::new(HldaModel::train(&cfg, corpus))
            })
        }
        ModelConfiguration::Plsa { topics, iterations, pooling, aggregation } => {
            topic_scores(prepared, source, users, *pooling, *aggregation, opts, |corpus| {
                let cfg = PlsaConfig {
                    topics: *topics,
                    iterations: opts.scale(*iterations),
                    infer_iterations: opts.infer_iterations,
                    seed: opts.seed,
                };
                Box::new(PlsaModel::train(&cfg, corpus))
            })
        }
    }
}

/// Shared driver for the per-user context-based models. The closure gets
/// `(train ids, test ids, positivity flags of train ids)` and returns the
/// test scores plus its own train/test timing.
fn context_scores<F>(
    prepared: &PreparedCorpus,
    source: RepresentationSource,
    users: &[UserId],
    per_user: F,
) -> ScoreOutcome
where
    F: Fn(&[TweetId], &[TweetId], &[bool]) -> (Vec<f64>, Duration, Duration) + Sync,
{
    let split = &prepared.split;
    let corpus = &prepared.corpus;
    let mut per_user_results = Vec::with_capacity(users.len());
    let mut train_time = Duration::ZERO;
    let mut test_time = Duration::ZERO;
    // Work items are independent; run them on scoped threads and collect
    // deterministically by index.
    let results: Vec<Option<(UserResult, Duration, Duration)>> = parallel_map(users, |&user| {
        let user_split = split.user(user)?;
        let train = split.train_ids(corpus, user, source);
        let test = user_split.test_docs();
        let flags: Vec<bool> =
            train.iter().map(|&id| split.is_positive_train_doc(corpus, user, id)).collect();
        let (scores, tt, et) = per_user(&train, &test, &flags);
        let docs: Vec<ScoredDoc> = test
            .iter()
            .zip(&scores)
            .map(|(&id, &score)| ScoredDoc {
                score,
                relevant: user_split.is_positive(id),
                tie_break: crate::eval::tie_break_key(id.0),
            })
            .collect();
        Some((UserResult { user, ap: average_precision(&docs) }, tt, et))
    });
    for r in results.into_iter().flatten() {
        per_user_results.push(r.0);
        train_time += r.1;
        test_time += r.2;
    }
    ScoreOutcome { per_user: per_user_results, train_time, test_time }
}

/// Run `f` over `items` on scoped threads, preserving order. Respects the
/// executor's inner-thread hint so that a parallel sweep of runs does not
/// oversubscribe the machine with `jobs × n_cpu` threads.
fn parallel_map<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R + Sync,
{
    let threads = crate::executor::inner_threads();
    let chunk = items.len().div_ceil(threads.max(1)).max(1);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, items_chunk) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push((ci, scope.spawn(move || items_chunk.iter().map(f).collect::<Vec<R>>())));
        }
        for (ci, h) in handles {
            // pmr-lint: allow(lib-unwrap): re-raises a worker panic on the coordinating thread
            let results = h.join().expect("worker panicked");
            for (i, r) in results.into_iter().enumerate() {
                out[ci * chunk + i] = Some(r);
            }
        }
    });
    // pmr-lint: allow(lib-unwrap): every index is written exactly once by the chunk loop above
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Topic-model regime: train one `M(s)`, infer distributions, aggregate,
/// score with cosine.
#[allow(clippy::too_many_arguments)]
fn topic_scores<F>(
    prepared: &PreparedCorpus,
    source: RepresentationSource,
    users: &[UserId],
    pooling: PoolingScheme,
    aggregation: AggKind,
    opts: &ScoringOptions,
    train_model: F,
) -> ScoreOutcome
where
    F: FnOnce(&TopicCorpus) -> Box<dyn TopicModel>,
{
    let split = &prepared.split;
    let corpus = &prepared.corpus;
    let t0 = Instant::now();
    // Union of all users' train sets for this source.
    let mut train_union: Vec<TweetId> =
        users.iter().flat_map(|&u| split.train_ids(corpus, u, source)).collect();
    train_union.sort();
    train_union.dedup();
    // Pool into pseudo-documents.
    let inputs: Vec<PoolInput<'_>> = train_union
        .iter()
        .map(|&id| PoolInput {
            tokens: prepared.content(id),
            author: corpus.tweet(id).author.0,
            hashtags: prepared.hashtags(id),
        })
        .collect();
    let pooled = pool_indexed(pooling, &inputs);
    let mut topic_corpus =
        TopicCorpus::from_token_docs(pooled.iter().map(|(doc, _)| doc.as_slice()));
    // Labels for Labeled LDA: union of the member tweets' labels.
    let labeler =
        Labeler::fit(train_union.iter().map(|&id| prepared.tokens(id)), Labeler::PAPER_MIN_COUNT);
    let mut label_vocab = pmr_topics::label::LabelVocabulary::new();
    topic_corpus.labels = pooled
        .iter()
        .map(|(_, members)| {
            let mut ids: Vec<u32> = members
                .iter()
                .flat_map(|&m| {
                    let id = train_union[m];
                    labeler.label(prepared.raw_text(id), prepared.tokens(id), m)
                })
                .map(|l| label_vocab.intern(&l))
                .collect();
            ids.sort();
            ids.dedup();
            ids
        })
        .collect();
    let model = train_model(&topic_corpus);
    // Inference cache over every tweet we will need (train + test).
    let mut needed: Vec<TweetId> = train_union.clone();
    for &u in users {
        if let Some(s) = split.user(u) {
            needed.extend(s.test_docs());
        }
    }
    needed.sort();
    needed.dedup();
    let model_ref: &dyn TopicModel = model.as_ref();
    let thetas: Vec<Vec<f32>> = parallel_map(&needed, |&id| {
        let encoded = topic_corpus.encode(prepared.content(id));
        let mut rng =
            StdRng::seed_from_u64(opts.seed ^ (id.0 as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        model_ref.infer(&encoded, &mut rng)
    });
    let theta_of: HashMap<TweetId, usize> =
        needed.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    // User models.
    let mut per_user = Vec::with_capacity(users.len());
    let mut train_time = t0.elapsed();
    let mut test_time = Duration::ZERO;
    for &user in users {
        let Some(user_split) = split.user(user) else { continue };
        let tm = Instant::now();
        let train = split.train_ids(corpus, user, source);
        let mut pos: Vec<&[f32]> = Vec::new();
        let mut neg: Vec<&[f32]> = Vec::new();
        for &id in &train {
            let th = thetas[theta_of[&id]].as_slice();
            if aggregation != AggKind::Rocchio || split.is_positive_train_doc(corpus, user, id) {
                pos.push(th);
            } else {
                neg.push(th);
            }
        }
        let user_model = match aggregation {
            // The paper builds topic user models as the centroid of the
            // training distributions; Sum differs from Centroid only by a
            // scale factor, which cosine ignores.
            AggKind::Sum | AggKind::Centroid => dense_centroid(&pos, model.num_topics()),
            AggKind::Rocchio => dense_rocchio(&pos, &neg, model.num_topics()),
        };
        train_time += tm.elapsed();
        let te = Instant::now();
        let docs: Vec<ScoredDoc> = user_split
            .test_docs()
            .into_iter()
            .map(|id| ScoredDoc {
                score: dense_cosine(&user_model, &thetas[theta_of[&id]]),
                relevant: user_split.is_positive(id),
                tie_break: crate::eval::tie_break_key(id.0),
            })
            .collect();
        per_user.push(UserResult { user, ap: average_precision(&docs) });
        test_time += te.elapsed();
    }
    ScoreOutcome { per_user, train_time, test_time }
}

/// Mean of L2-normalized dense vectors.
fn dense_centroid(docs: &[&[f32]], k: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; k];
    if docs.is_empty() {
        return acc;
    }
    for d in docs {
        let n: f32 = d.iter().map(|x| x * x).sum::<f32>().sqrt();
        if n > 0.0 {
            for (a, x) in acc.iter_mut().zip(*d) {
                *a += x / n;
            }
        }
    }
    let inv = 1.0 / docs.len() as f32;
    acc.iter_mut().for_each(|a| *a *= inv);
    acc
}

/// Rocchio over dense distributions with the paper's α = 0.8, β = 0.2.
fn dense_rocchio(pos: &[&[f32]], neg: &[&[f32]], k: usize) -> Vec<f32> {
    let p = dense_centroid(pos, k);
    let n = dense_centroid(neg, k);
    p.iter().zip(&n).map(|(a, b)| 0.8 * a - 0.2 * b).collect()
}

/// Cosine similarity of dense vectors (0 when either is zero).
fn dense_cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_centroid_averages_unit_vectors() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 2.0];
        let c = dense_centroid(&[&a, &b], 2);
        assert!((c[0] - 0.5).abs() < 1e-6);
        assert!((c[1] - 0.5).abs() < 1e-6, "magnitude must not matter: {c:?}");
    }

    #[test]
    fn dense_centroid_of_nothing_is_zero() {
        assert_eq!(dense_centroid(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn dense_rocchio_weights_pos_and_neg() {
        let pos = [1.0f32, 0.0];
        let neg = [0.0f32, 1.0];
        let m = dense_rocchio(&[&pos], &[&neg], 2);
        assert!((m[0] - 0.8).abs() < 1e-6);
        assert!((m[1] + 0.2).abs() < 1e-6);
    }

    #[test]
    fn dense_cosine_basics() {
        assert!((dense_cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert_eq!(dense_cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(dense_cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, |&x: &usize| x).is_empty());
        assert_eq!(parallel_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn scoring_options_scale_floors_at_five() {
        let opts = ScoringOptions {
            iteration_scale: 0.001,
            infer_iterations: 5,
            seed: 1,
            ..ScoringOptions::default()
        };
        assert_eq!(opts.scale(1_000), 5);
        let opts = ScoringOptions::paper();
        assert_eq!(opts.scale(1_000), 1_000);
    }
}
