//! Sweep-scoped feature cache.
//!
//! The sweep's hot path used to re-extract every tweet's n-gram strings
//! (`gramify → Vec<String>`) for *each* of the 223 configurations — the
//! same redundant profile-construction cost that dominates content-based
//! Twitter profiling in general. [`FeatureCache`] removes that redundancy:
//! for every `(gram kind, n)` the interned [`TermId`] gram sequence of each
//! tweet (and the lowercased raw text feeding character grams) is computed
//! exactly once per prepared corpus and then shared — across
//! configurations, users and worker threads — as an immutable
//! [`Arc<GramTable>`].
//!
//! Determinism: a table is built by a single thread (losers of the
//! build race block on [`OnceLock::get_or_init`] and receive the winner's
//! table), gram ids are assigned in tweet-id order, and consumers only read
//! the finished immutable table, so every access pattern observes the same
//! ids regardless of thread count or scheduling.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use pmr_sim::TweetId;
use pmr_text::vocab::{TermId, Vocabulary};

/// Which alphabet a gram table is built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GramKind {
    /// Token n-grams over the stop-filtered content.
    Token,
    /// Character n-grams over the lowercased raw text.
    Char,
}

impl GramKind {
    /// The kind selected by a configuration's `char_grams` flag.
    pub fn of(char_grams: bool) -> GramKind {
        if char_grams {
            GramKind::Char
        } else {
            GramKind::Token
        }
    }

    /// Short name for metrics and journal events.
    pub fn name(self) -> &'static str {
        match self {
            GramKind::Token => "token",
            GramKind::Char => "char",
        }
    }
}

/// The cache key: gram alphabet and n-gram size.
pub type FeatureKey = (GramKind, usize);

/// One fully built feature table: the interned gram sequence of every tweet
/// of the corpus, in tweet-id order, over a table-local vocabulary.
///
/// Gram ids are *global* to the table (corpus-wide, first-seen in tweet-id
/// order); per-user vectorizers remap them to their own dense local spaces
/// (`pmr_bag::IndexedVectorizer`), reproducing the exact ids a per-user
/// string interner would have assigned.
pub struct GramTable {
    kind: GramKind,
    n: usize,
    /// All gram ids, concatenated; tweet `i` owns `ids[offsets[i]..offsets[i + 1]]`.
    ids: Vec<TermId>,
    /// One past-the-end offset per tweet (`len = docs + 1`).
    offsets: Vec<usize>,
    /// Gram id ↔ surface form (the graph models need the strings back).
    vocab: Vocabulary,
}

impl GramTable {
    /// Build from each tweet's extracted gram strings, in tweet-id order.
    pub fn from_docs<I, D, S>(kind: GramKind, n: usize, docs: I) -> GramTable
    where
        I: IntoIterator<Item = D>,
        D: AsRef<[S]>,
        S: AsRef<str>,
    {
        let mut vocab = Vocabulary::new();
        let mut ids: Vec<TermId> = Vec::new();
        let mut offsets: Vec<usize> = vec![0];
        for doc in docs {
            for gram in doc.as_ref() {
                ids.push(vocab.intern(gram.as_ref()));
            }
            offsets.push(ids.len());
        }
        GramTable { kind, n, ids, offsets, vocab }
    }

    /// The gram alphabet.
    pub fn kind(&self) -> GramKind {
        self.kind
    }

    /// The n-gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of tweets covered.
    pub fn num_docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct grams across the corpus.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// A tweet's gram id sequence, in order of appearance.
    pub fn doc(&self, id: TweetId) -> &[TermId] {
        &self.ids[self.offsets[id.index()]..self.offsets[id.index() + 1]]
    }

    /// The surface form of a gram id.
    pub fn term(&self, id: TermId) -> &str {
        self.vocab.term(id)
    }

    /// A tweet's gram surface forms (allocates the `Vec` of borrowed
    /// strings only; the strings themselves live in the table).
    pub fn doc_terms(&self, id: TweetId) -> Vec<&str> {
        self.doc(id).iter().map(|&g| self.vocab.term(g)).collect()
    }

    /// Approximate resident size, for the `features.bytes` gauge.
    pub fn bytes(&self) -> usize {
        let ids = self.ids.len() * std::mem::size_of::<TermId>();
        let offsets = self.offsets.len() * std::mem::size_of::<usize>();
        // Each distinct term is stored twice (map key + terms table) plus
        // map/Vec bookkeeping; 2× content + a flat per-term estimate.
        let terms: usize = self.vocab.iter().map(|(_, t, _)| 2 * t.len() + 64).sum();
        ids + offsets + terms
    }
}

impl std::fmt::Debug for GramTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramTable")
            .field("kind", &self.kind)
            .field("n", &self.n)
            .field("docs", &self.num_docs())
            .field("grams", &self.ids.len())
            .field("vocab", &self.vocab.len())
            .finish()
    }
}

/// The sweep-scoped cache: lazily built, immutable-once-built feature
/// tables plus the shared lowercased raw texts.
///
/// Lives inside [`crate::PreparedCorpus`] (which builds the tables, since
/// only it holds the token/raw-text inputs) and hands out `Arc` clones that
/// worker threads keep for the duration of a run.
#[derive(Default)]
pub struct FeatureCache {
    /// Lowercased raw text per tweet, computed once on first demand.
    lower: OnceLock<Vec<String>>,
    /// Per-key build cells. The outer lock is only held to look up or
    /// insert a cell — never while building — so builds of different keys
    /// proceed in parallel while duplicate requests for the same key block
    /// on the cell and share the winner's table.
    tables: Mutex<BTreeMap<FeatureKey, Arc<OnceLock<Arc<GramTable>>>>>,
    /// Total bytes across built tables (feeds the `features.bytes` gauge).
    bytes: AtomicU64,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> FeatureCache {
        FeatureCache::default()
    }

    /// The lowercased texts, building them with `build` exactly once.
    pub fn lowercased(&self, build: impl FnOnce() -> Vec<String>) -> &[String] {
        self.lower
            .get_or_init(|| {
                pmr_obs::counter_add("features.lowercase_builds", 1);
                build()
            })
            .as_slice()
    }

    /// The table for `key`, building it with `build` exactly once.
    pub fn table(&self, key: FeatureKey, build: impl FnOnce() -> GramTable) -> Arc<GramTable> {
        let cell = Arc::clone(self.tables.lock().entry(key).or_default());
        let mut built = false;
        let table = cell.get_or_init(|| {
            built = true;
            pmr_obs::counter_add("features.miss", 1);
            let _timer = pmr_obs::timer("features.build");
            let table = Arc::new(build());
            let bytes = table.bytes() as u64;
            let total = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
            pmr_obs::gauge_set("features.bytes", total as f64);
            pmr_obs::event(
                "features",
                "table_built",
                &[
                    ("kind", table.kind().name().into()),
                    ("n", table.n().into()),
                    ("docs", table.num_docs().into()),
                    ("grams", table.ids.len().into()),
                    ("vocab", table.vocab_len().into()),
                    ("bytes", table.bytes().into()),
                ],
            );
            table
        });
        if !built {
            pmr_obs::counter_add("features.hit", 1);
        }
        Arc::clone(table)
    }

    /// Keys of the tables built so far.
    pub fn built_keys(&self) -> Vec<FeatureKey> {
        self.tables
            .lock()
            .iter()
            .filter(|(_, cell)| cell.get().is_some())
            .map(|(&key, _)| key)
            .collect()
    }

    /// Total estimated bytes across built tables.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for FeatureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureCache")
            .field("tables", &self.built_keys())
            .field("lowercased", &self.lower.get().is_some())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> GramTable {
        GramTable::from_docs(GramKind::Token, 1, [&["a", "b", "a"][..], &[][..], &["b", "c"][..]])
    }

    #[test]
    fn gram_ids_are_first_seen_in_doc_order() {
        let t = table();
        assert_eq!(t.num_docs(), 3);
        assert_eq!(t.vocab_len(), 3);
        assert_eq!(t.doc(TweetId(0)), &[0, 1, 0]);
        assert_eq!(t.doc(TweetId(1)), &[] as &[TermId]);
        assert_eq!(t.doc(TweetId(2)), &[1, 2]);
        assert_eq!(t.doc_terms(TweetId(2)), vec!["b", "c"]);
    }

    #[test]
    fn cache_builds_each_key_once_and_shares_the_arc() {
        let cache = FeatureCache::new();
        let mut builds = 0;
        let a = cache.table((GramKind::Token, 1), || {
            builds += 1;
            table()
        });
        let b = cache.table((GramKind::Token, 1), || {
            builds += 1;
            table()
        });
        assert_eq!(builds, 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.built_keys(), vec![(GramKind::Token, 1)]);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn distinct_keys_build_distinct_tables() {
        let cache = FeatureCache::new();
        let a = cache.table((GramKind::Token, 1), table);
        let b = cache.table((GramKind::Char, 2), || {
            GramTable::from_docs(GramKind::Char, 2, [&["ab", "bc"][..]])
        });
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.built_keys().len(), 2);
    }

    #[test]
    fn lowercased_is_computed_once() {
        let cache = FeatureCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let texts = cache.lowercased(|| {
                builds += 1;
                vec!["abc".to_owned()]
            });
            assert_eq!(texts, ["abc".to_owned()]);
        }
        assert_eq!(builds, 1);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_table() {
        let cache = FeatureCache::new();
        let tables: Vec<Arc<GramTable>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..8).map(|_| scope.spawn(|| cache.table((GramKind::Token, 1), table))).collect();
            // pmr-lint: allow(lib-unwrap): test threads must not panic
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        for t in &tables[1..] {
            assert!(Arc::ptr_eq(&tables[0], t), "all threads must share one table");
        }
    }
}
